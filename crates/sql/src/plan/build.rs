//! The physical planner: AST → [`PlanKind`].
//!
//! Planning makes exactly the decisions the interpreter
//! (`crate::exec::from` / `crate::exec::dml`) makes per execution — which
//! access path serves each table reference, which join strategy connects
//! each pair of relations, which conjunct is consumed where — but makes
//! them **once**, producing pre-bound [`PExpr`]s with fixed column
//! offsets. The decision logic is shared with the interpreter
//! (`find_const_equalities`, `choose_access_path`, `find_join_pairs`, the
//! aggregate/window rewrites), so a prepared plan chooses the same shape
//! the interpreter would.

use super::{
    AggPlan, DeletePlan, FromPlan, InputPlan, InsertPlan, InsertSourcePlan, JoinPlan, MergePlan,
    PExpr, PlanKind, RightPlan, SelectPlan, SourcePlan, SubPlan, UpdateKind, UpdatePlan,
    WindowPlan,
};
use crate::ast::{
    AggFunc, Delete, Expr, Insert, InsertSource, Merge, OrderKey, Select, SelectItem, Stmt,
    TableRef, Update,
};
use crate::catalog::Catalog;
use crate::error::{Result, SqlError};
use crate::exec::agg::{collect_aggs, rewrite as agg_rewrite};
use crate::exec::eval::{binds_in, is_row_independent, split_conjuncts, Schema, SchemaCol};
use crate::exec::from::{choose_access_path, find_const_equalities, find_join_pairs};
use crate::exec::select::{expand_items, OutItem};
use crate::exec::window::{collect_windows, rewrite as win_rewrite, WinSpec};

/// Plans one statement against the current catalog.
pub(crate) fn build_plan(catalog: &Catalog, stmt: &Stmt) -> Result<PlanKind> {
    Ok(match stmt {
        Stmt::Select(sel) => PlanKind::Select(plan_select(catalog, sel)?),
        Stmt::Insert(ins) => PlanKind::Insert(plan_insert(catalog, ins)?),
        Stmt::Update(upd) => PlanKind::Update(plan_update(catalog, upd)?),
        Stmt::Delete(del) => PlanKind::Delete(plan_delete(catalog, del)?),
        Stmt::Merge(m) => PlanKind::Merge(plan_merge(catalog, m)?),
        other => PlanKind::Fallback(other.clone()),
    })
}

/// Expression binder for one statement plan: resolves columns against a
/// schema, leaves `?` parameters as slots, and compiles subqueries into
/// [`SubPlan`]s evaluated once per execution.
struct Binder<'a> {
    catalog: &'a Catalog,
    subplans: Vec<SubPlan>,
}

impl<'a> Binder<'a> {
    fn new(catalog: &'a Catalog) -> Binder<'a> {
        Binder {
            catalog,
            subplans: Vec::new(),
        }
    }

    fn bind(&mut self, schema: &Schema, expr: &Expr) -> Result<PExpr> {
        Ok(match expr {
            Expr::Literal(v) => PExpr::Const(v.clone()),
            Expr::Param(i) => PExpr::Param(*i),
            Expr::Column { table, name } => PExpr::Col(schema.resolve(table.as_deref(), name)?),
            Expr::Unary { op, expr } => PExpr::Unary {
                op: *op,
                e: Box::new(self.bind(schema, expr)?),
            },
            Expr::Binary { left, op, right } => PExpr::Binary {
                l: Box::new(self.bind(schema, left)?),
                op: *op,
                r: Box::new(self.bind(schema, right)?),
            },
            Expr::IsNull { expr, negated } => PExpr::IsNull {
                e: Box::new(self.bind(schema, expr)?),
                negated: *negated,
            },
            Expr::Subquery(q) => {
                let sub = plan_select(self.catalog, q)?;
                self.subplans.push(SubPlan::Scalar(sub));
                PExpr::Sub(self.subplans.len() - 1)
            }
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => {
                let sub = plan_select(self.catalog, query)?;
                self.subplans.push(SubPlan::List(sub));
                PExpr::InSub {
                    e: Box::new(self.bind(schema, expr)?),
                    sub: self.subplans.len() - 1,
                    negated: *negated,
                }
            }
            Expr::Exists { query, negated } => {
                let sub = plan_select(self.catalog, query)?;
                self.subplans.push(SubPlan::Exists(sub));
                PExpr::ExistsSub {
                    sub: self.subplans.len() - 1,
                    negated: *negated,
                }
            }
            Expr::Aggregate { .. } => {
                return Err(SqlError::Bind(
                    "aggregate function not allowed in this context".into(),
                ))
            }
            Expr::Window { .. } => {
                return Err(SqlError::Bind(
                    "window function not allowed in this context".into(),
                ))
            }
        })
    }
}

fn remove_conjuncts(conjuncts: &mut Vec<Expr>, consumed: &[usize]) {
    let mut keep = Vec::with_capacity(conjuncts.len());
    for (i, c) in conjuncts.drain(..).enumerate() {
        if !consumed.contains(&i) {
            keep.push(c);
        }
    }
    *conjuncts = keep;
}

/// Plans a full SELECT (recursively used for subqueries, derived tables
/// and views).
pub(crate) fn plan_select(catalog: &Catalog, sel: &Select) -> Result<SelectPlan> {
    let mut b = Binder::new(catalog);

    // FROM + WHERE: the streaming pipeline.
    let mut conjuncts: Vec<Expr> = sel.filter.as_ref().map(split_conjuncts).unwrap_or_default();
    let (source, mut schema) = if sel.from.is_empty() {
        (
            SourcePlan {
                input: InputPlan::Nothing,
                filter: Vec::new(),
            },
            Schema::empty(),
        )
    } else {
        plan_base(&mut b, &sel.from[0], &mut conjuncts)?
    };
    let mut joins = Vec::new();
    for tref in sel.from.get(1..).unwrap_or(&[]) {
        let (jp, combined) = plan_join(&mut b, &schema, tref, &mut conjuncts)?;
        joins.push(jp);
        schema = combined;
    }
    let residual: Vec<PExpr> = conjuncts
        .iter()
        .map(|c| b.bind(&schema, c))
        .collect::<Result<_>>()?;
    let from = FromPlan {
        source,
        joins,
        residual,
    };

    // Post-pipeline stages, mirroring `exec::select::execute_select`.
    let mut items: Vec<OutItem> = expand_items(sel, &schema)?;
    let needs_agg = !sel.group_by.is_empty()
        || items.iter().any(|i| i.expr.contains_aggregate())
        || sel.having.as_ref().is_some_and(|h| h.contains_aggregate());

    let mut agg = None;
    let mut windows: Vec<WindowPlan> = Vec::new();
    let mut having_ast = sel.having.clone();
    let mut post_schema = schema;
    // Rewrite context for ORDER BY keys in the aggregate case: the GROUP
    // BY expressions plus the collected aggregate specs.
    type AggRewrite = (Vec<Expr>, Vec<(AggFunc, Option<Expr>)>);
    let mut agg_rw: Option<AggRewrite> = None;

    if needs_agg {
        if items.iter().any(|i| i.expr.contains_window()) {
            return Err(SqlError::Bind(
                "window functions cannot be combined with GROUP BY/aggregates".into(),
            ));
        }
        let group: Vec<PExpr> = sel
            .group_by
            .iter()
            .map(|g| b.bind(&post_schema, g))
            .collect::<Result<_>>()?;
        let mut agg_specs: Vec<(AggFunc, Option<Expr>)> = Vec::new();
        for item in &items {
            collect_aggs(&item.expr, &mut agg_specs);
        }
        if let Some(h) = &having_ast {
            collect_aggs(h, &mut agg_specs);
        }
        for k in &sel.order_by {
            collect_aggs(&k.expr, &mut agg_specs);
        }
        let aggs: Vec<(AggFunc, Option<PExpr>)> = agg_specs
            .iter()
            .map(|(f, arg)| {
                Ok((
                    *f,
                    arg.as_ref().map(|a| b.bind(&post_schema, a)).transpose()?,
                ))
            })
            .collect::<Result<_>>()?;
        items = items
            .into_iter()
            .map(|i| {
                Ok(OutItem {
                    name: i.name,
                    expr: agg_rewrite(&i.expr, &sel.group_by, &agg_specs)?,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        having_ast = having_ast
            .map(|h| agg_rewrite(&h, &sel.group_by, &agg_specs))
            .transpose()?;
        let mut cols = Vec::new();
        for i in 0..group.len() {
            cols.push(SchemaCol {
                binding: Some("#agg".into()),
                name: format!("g{i}"),
            });
        }
        for j in 0..agg_specs.len() {
            cols.push(SchemaCol {
                binding: Some("#agg".into()),
                name: format!("a{j}"),
            });
        }
        post_schema = Schema { cols };
        agg = Some(AggPlan { group, aggs });
        agg_rw = Some((sel.group_by.clone(), agg_specs));
    } else if items.iter().any(|i| i.expr.contains_window()) {
        let mut specs: Vec<WinSpec> = Vec::new();
        for item in &items {
            collect_windows(&item.expr, &mut specs);
        }
        // Each spec binds against the schema extended by the previous
        // specs' output columns, exactly as `run_windows` does.
        for (si, spec) in specs.iter().enumerate() {
            windows.push(WindowPlan {
                func: spec.func,
                partition: spec
                    .partition_by
                    .iter()
                    .map(|e| b.bind(&post_schema, e))
                    .collect::<Result<_>>()?,
                order: spec
                    .order_by
                    .iter()
                    .map(|k| Ok((b.bind(&post_schema, &k.expr)?, k.asc)))
                    .collect::<Result<_>>()?,
            });
            post_schema.cols.push(SchemaCol {
                binding: Some("#win".into()),
                name: format!("w{si}"),
            });
        }
        items = items
            .into_iter()
            .map(|i| {
                Ok(OutItem {
                    name: i.name,
                    expr: win_rewrite(&i.expr, &specs)?,
                })
            })
            .collect::<Result<_>>()?;
    }

    let having = having_ast
        .as_ref()
        .map(|h| b.bind(&post_schema, h))
        .transpose()?;

    // ORDER BY: keys may reference output aliases or input columns.
    let order_by: Vec<(PExpr, bool)> = sel
        .order_by
        .iter()
        .map(|k: &OrderKey| {
            let alias_target = match &k.expr {
                Expr::Column { table: None, name } => items
                    .iter()
                    .find(|i| i.name.eq_ignore_ascii_case(name))
                    .map(|i| i.expr.clone()),
                _ => None,
            };
            let target = match alias_target {
                Some(t) => t,
                None => match &agg_rw {
                    Some((gb, specs)) => agg_rewrite(&k.expr, gb, specs)?,
                    None => k.expr.clone(),
                },
            };
            Ok((b.bind(&post_schema, &target)?, k.asc))
        })
        .collect::<Result<_>>()?;

    let items_p: Vec<PExpr> = items
        .iter()
        .map(|i| b.bind(&post_schema, &i.expr))
        .collect::<Result<_>>()?;
    let out_names = items.into_iter().map(|i| i.name).collect();
    let cap = match (sel.top, sel.limit) {
        (Some(t), Some(l)) => Some(t.min(l)),
        (Some(t), None) => Some(t),
        (None, Some(l)) => Some(l),
        (None, None) => None,
    };

    Ok(SelectPlan {
        from,
        agg,
        windows,
        having,
        order_by,
        items: items_p,
        out_names,
        distinct: sel.distinct,
        cap,
        subplans: b.subplans,
    })
}

/// Binds and removes the conjuncts fully resolvable in `schema` (the
/// pushed-down filters of a materialized source).
fn consume_single_rel_filters(
    b: &mut Binder<'_>,
    schema: &Schema,
    conjuncts: &mut Vec<Expr>,
) -> Result<Vec<PExpr>> {
    let mine_idx: Vec<usize> = conjuncts
        .iter()
        .enumerate()
        .filter(|(_, c)| binds_in(c, schema))
        .map(|(i, _)| i)
        .collect();
    let filter: Vec<PExpr> = mine_idx
        .iter()
        .map(|&i| b.bind(schema, &conjuncts[i]))
        .collect::<Result<_>>()?;
    remove_conjuncts(conjuncts, &mine_idx);
    Ok(filter)
}

/// Plans the first FROM item: chooses the access path for a base table,
/// or compiles a view/derived table into a materialized sub-plan.
fn plan_base(
    b: &mut Binder<'_>,
    tref: &TableRef,
    conjuncts: &mut Vec<Expr>,
) -> Result<(SourcePlan, Schema)> {
    match tref {
        TableRef::Named { name, alias } => {
            let binding = alias.as_deref().unwrap_or(name).to_string();
            if b.catalog.has_table(name) {
                return plan_scan_table(b, name, &binding, conjuncts);
            }
            if let Some(view) = b.catalog.view(name) {
                let view = view.clone();
                let sub = plan_select(b.catalog, &view)?;
                let schema = sub.out_schema(&binding);
                let filter = consume_single_rel_filters(b, &schema, conjuncts)?;
                return Ok((
                    SourcePlan {
                        input: InputPlan::Derived(Box::new(sub)),
                        filter,
                    },
                    schema,
                ));
            }
            Err(SqlError::Catalog(format!("no such table or view {name}")))
        }
        TableRef::Derived {
            query,
            alias,
            columns,
        } => {
            let sub = plan_select(b.catalog, query)?;
            let mut schema = sub.out_schema(alias);
            if let Some(cols) = columns {
                if cols.len() != schema.cols.len() {
                    return Err(SqlError::Bind(format!(
                        "derived table {alias} lists {} columns but query returns {}",
                        cols.len(),
                        schema.cols.len()
                    )));
                }
                for (c, name) in schema.cols.iter_mut().zip(cols) {
                    c.name = name.clone();
                }
            }
            let filter = consume_single_rel_filters(b, &schema, conjuncts)?;
            Ok((
                SourcePlan {
                    input: InputPlan::Derived(Box::new(sub)),
                    filter,
                },
                schema,
            ))
        }
    }
}

/// Chooses the access path for one base table, consuming its pushable
/// conjuncts (mirrors `exec::from::scan_table`).
fn plan_scan_table(
    b: &mut Binder<'_>,
    name: &str,
    binding: &str,
    conjuncts: &mut Vec<Expr>,
) -> Result<(SourcePlan, Schema)> {
    let table = b.catalog.table(name)?;
    let schema = Schema::from_table(binding, &table.schema);
    let mine_idx: Vec<usize> = conjuncts
        .iter()
        .enumerate()
        .filter(|(_, c)| binds_in(c, &schema))
        .map(|(i, _)| i)
        .collect();
    let mine: Vec<Expr> = mine_idx.iter().map(|&i| conjuncts[i].clone()).collect();
    let eqs = find_const_equalities(&schema, &mine);
    let access = choose_access_path(table, &eqs);
    let (input, filter) = match access {
        Some((cols, eq_positions)) => {
            let consumed_local: Vec<usize> =
                eq_positions.iter().map(|&p| eqs[p].conjunct_idx).collect();
            let keys: Vec<PExpr> = eq_positions
                .iter()
                .map(|&p| b.bind(&Schema::empty(), &eqs[p].value_expr))
                .collect::<Result<_>>()?;
            let filter: Vec<PExpr> = mine
                .iter()
                .enumerate()
                .filter(|(i, _)| !consumed_local.contains(i))
                .map(|(_, c)| b.bind(&schema, c))
                .collect::<Result<_>>()?;
            (
                InputPlan::Lookup {
                    table: name.to_string(),
                    binding: binding.to_string(),
                    cols,
                    keys,
                },
                filter,
            )
        }
        None => {
            let filter: Vec<PExpr> = mine
                .iter()
                .map(|c| b.bind(&schema, c))
                .collect::<Result<_>>()?;
            (
                InputPlan::Scan {
                    table: name.to_string(),
                    binding: binding.to_string(),
                },
                filter,
            )
        }
    };
    remove_conjuncts(conjuncts, &mine_idx);
    Ok((SourcePlan { input, filter }, schema))
}

/// Plans one join stage (mirrors `exec::from::join`): index nested loop
/// when the inner table has a usable index on the join columns, hash join
/// otherwise, nested loop as the last resort.
fn plan_join(
    b: &mut Binder<'_>,
    left: &Schema,
    tref: &TableRef,
    conjuncts: &mut Vec<Expr>,
) -> Result<(JoinPlan, Schema)> {
    match tref {
        TableRef::Named { name, alias } => {
            let binding = alias.as_deref().unwrap_or(name).to_string();
            if b.catalog.has_table(name) {
                let table = b.catalog.table(name)?;
                let right_schema = Schema::from_table(&binding, &table.schema);
                let pairs = find_join_pairs(left, &right_schema, conjuncts);

                // Longest index prefix covered by the join columns.
                let path = {
                    let pair_cols: Vec<usize> = pairs.iter().map(|p| p.right_col).collect();
                    let mut best: Option<Vec<usize>> = None;
                    let mut consider = |cols: &[usize]| {
                        let mut n = 0;
                        for &c in cols {
                            if pair_cols.contains(&c) {
                                n += 1;
                            } else {
                                break;
                            }
                        }
                        if n > 0 && best.as_ref().is_none_or(|b| b.len() < n) {
                            best = Some(cols[..n].to_vec());
                        }
                    };
                    if let Some(key_cols) = table.clustered_key_cols() {
                        consider(key_cols);
                    }
                    for idx in &table.indexes {
                        consider(&idx.cols);
                    }
                    best
                };

                if let Some(path_cols) = path {
                    let mut used_pairs: Vec<(usize, usize)> = Vec::new();
                    for &pc in &path_cols {
                        let p = pairs
                            .iter()
                            .position(|p| {
                                p.right_col == pc
                                    && !used_pairs.iter().any(|&(u, _)| u == p.conjunct_idx)
                            })
                            .ok_or_else(|| {
                                SqlError::Eval("index path column has no matching join pair".into())
                            })?;
                        used_pairs.push((pairs[p].conjunct_idx, p));
                    }
                    let keys: Vec<PExpr> = used_pairs
                        .iter()
                        .map(|&(_, p)| b.bind(left, &pairs[p].left_expr))
                        .collect::<Result<_>>()?;
                    let combined = left.concat(&right_schema);
                    let consumed: Vec<usize> = used_pairs.iter().map(|&(ci, _)| ci).collect();
                    let residual_idx: Vec<usize> = conjuncts
                        .iter()
                        .enumerate()
                        .filter(|(i, c)| !consumed.contains(i) && binds_in(c, &combined))
                        .map(|(i, _)| i)
                        .collect();
                    let residual: Vec<PExpr> = residual_idx
                        .iter()
                        .map(|&i| b.bind(&combined, &conjuncts[i]))
                        .collect::<Result<_>>()?;
                    let mut all_consumed = consumed;
                    all_consumed.extend(&residual_idx);
                    remove_conjuncts(conjuncts, &all_consumed);
                    return Ok((
                        JoinPlan::IndexLoop {
                            table: name.clone(),
                            binding,
                            path_cols,
                            keys,
                            residual,
                            left_width: left.cols.len(),
                        },
                        combined,
                    ));
                }
                return plan_join_mat(
                    b,
                    left,
                    RightPlan::Table { name: name.clone() },
                    right_schema,
                    conjuncts,
                );
            }
            if let Some(view) = b.catalog.view(name) {
                let view = view.clone();
                let sub = plan_select(b.catalog, &view)?;
                let right_schema = sub.out_schema(&binding);
                return plan_join_mat(
                    b,
                    left,
                    RightPlan::Derived(Box::new(sub)),
                    right_schema,
                    conjuncts,
                );
            }
            Err(SqlError::Catalog(format!("no such table or view {name}")))
        }
        TableRef::Derived {
            query,
            alias,
            columns,
        } => {
            let sub = plan_select(b.catalog, query)?;
            let mut right_schema = sub.out_schema(alias);
            if let Some(cols) = columns {
                if cols.len() != right_schema.cols.len() {
                    return Err(SqlError::Bind(format!(
                        "derived table {alias} lists {} columns but query returns {}",
                        cols.len(),
                        right_schema.cols.len()
                    )));
                }
                for (c, name) in right_schema.cols.iter_mut().zip(cols) {
                    c.name = name.clone();
                }
            }
            plan_join_mat(
                b,
                left,
                RightPlan::Derived(Box::new(sub)),
                right_schema,
                conjuncts,
            )
        }
    }
}

/// Hash join (on equi-pairs) or nested loop over a materialized right
/// side (mirrors `exec::from::join_materialized`).
fn plan_join_mat(
    b: &mut Binder<'_>,
    left: &Schema,
    right: RightPlan,
    right_schema: Schema,
    conjuncts: &mut Vec<Expr>,
) -> Result<(JoinPlan, Schema)> {
    let pairs = find_join_pairs(left, &right_schema, conjuncts);
    let combined = left.concat(&right_schema);
    let residual_idx: Vec<usize> = conjuncts
        .iter()
        .enumerate()
        .filter(|(i, c)| !pairs.iter().any(|p| p.conjunct_idx == *i) && binds_in(c, &combined))
        .map(|(i, _)| i)
        .collect();
    let residual: Vec<PExpr> = residual_idx
        .iter()
        .map(|&i| b.bind(&combined, &conjuncts[i]))
        .collect::<Result<_>>()?;
    let left_width = left.cols.len();
    let jp = if pairs.is_empty() {
        JoinPlan::Loop {
            right,
            residual,
            left_width,
        }
    } else {
        let left_keys: Vec<PExpr> = pairs
            .iter()
            .map(|p| b.bind(left, &p.left_expr))
            .collect::<Result<_>>()?;
        let right_cols: Vec<usize> = pairs.iter().map(|p| p.right_col).collect();
        JoinPlan::Hash {
            right,
            left_keys,
            right_cols,
            residual,
            left_width,
        }
    };
    let mut consumed: Vec<usize> = pairs.iter().map(|p| p.conjunct_idx).collect();
    consumed.extend(&residual_idx);
    remove_conjuncts(conjuncts, &consumed);
    Ok((jp, combined))
}

/// Plans a table reference used as a DML source (mirrors
/// `exec::dml::materialize_ref`: no access-path selection, the source is
/// materialized per execution).
fn plan_source_ref(b: &mut Binder<'_>, tref: &TableRef) -> Result<(SourcePlan, Schema)> {
    match tref {
        TableRef::Named { name, alias } => {
            let binding = alias.as_deref().unwrap_or(name);
            if b.catalog.has_table(name) {
                let table = b.catalog.table(name)?;
                let schema = Schema::from_table(binding, &table.schema);
                Ok((
                    SourcePlan {
                        input: InputPlan::Scan {
                            table: name.clone(),
                            binding: binding.to_string(),
                        },
                        filter: Vec::new(),
                    },
                    schema,
                ))
            } else if let Some(view) = b.catalog.view(name) {
                let view = view.clone();
                let sub = plan_select(b.catalog, &view)?;
                let schema = sub.out_schema(binding);
                Ok((
                    SourcePlan {
                        input: InputPlan::Derived(Box::new(sub)),
                        filter: Vec::new(),
                    },
                    schema,
                ))
            } else {
                Err(SqlError::Catalog(format!("no such table or view {name}")))
            }
        }
        TableRef::Derived {
            query,
            alias,
            columns,
        } => {
            let sub = plan_select(b.catalog, query)?;
            let mut schema = sub.out_schema(alias);
            if let Some(cols) = columns {
                if cols.len() != schema.cols.len() {
                    return Err(SqlError::Bind(format!(
                        "derived table {alias} lists {} columns but query returns {}",
                        cols.len(),
                        schema.cols.len()
                    )));
                }
                for (c, name) in schema.cols.iter_mut().zip(cols) {
                    c.name = name.clone();
                }
            }
            Ok((
                SourcePlan {
                    input: InputPlan::Derived(Box::new(sub)),
                    filter: Vec::new(),
                },
                schema,
            ))
        }
    }
}

/// From join conjuncts, extracts equalities `target.col = <source expr>`
/// usable to probe the target (mirrors `exec::dml::equi_probe_plan`).
/// Returns (probe columns, probe key expressions over the source row,
/// residual predicates over the combined row).
#[allow(clippy::type_complexity)]
fn plan_equi_probe(
    b: &mut Binder<'_>,
    target_table: &str,
    target: &Schema,
    source: &Schema,
    combined: &Schema,
    conjuncts: &[Expr],
) -> Result<(Vec<usize>, Vec<PExpr>, Vec<PExpr>)> {
    let mut cands: Vec<(usize, &Expr)> = Vec::new();
    let mut cand_conjunct: Vec<usize> = Vec::new();
    let mut residual_ast: Vec<&Expr> = Vec::new();
    for (ci, c) in conjuncts.iter().enumerate() {
        let mut used = false;
        if let Expr::Binary {
            left,
            op: crate::ast::BinaryOp::Eq,
            right,
        } = c
        {
            for (tcol_side, sexpr_side) in [(left, right), (right, left)] {
                if let Expr::Column { table, name } = tcol_side.as_ref() {
                    if target.can_resolve(table.as_deref(), name)
                        && !source.can_resolve(table.as_deref(), name)
                        && (binds_in(sexpr_side, source) || is_row_independent(sexpr_side))
                    {
                        let col = target.resolve(table.as_deref(), name)?;
                        cands.push((col, sexpr_side.as_ref()));
                        cand_conjunct.push(ci);
                        used = true;
                        break;
                    }
                }
            }
        }
        if !used {
            residual_ast.push(c);
        }
    }
    if cands.is_empty() {
        return Err(SqlError::Bind(
            "MERGE/UPDATE-FROM requires at least one `target.col = source-expr` equality".into(),
        ));
    }

    // Prefer the longest index prefix covered by the candidates.
    let tbl = b.catalog.table(target_table)?;
    let cand_cols: Vec<usize> = cands.iter().map(|(c, _)| *c).collect();
    let mut chosen: Vec<usize> = (0..cands.len()).collect();
    {
        let mut best: Option<Vec<usize>> = None;
        let mut consider = |path: &[usize]| {
            let mut picks = Vec::new();
            for &pc in path {
                match cand_cols.iter().position(|&c| c == pc) {
                    Some(i) => picks.push(i),
                    None => break,
                }
            }
            if !picks.is_empty() && best.as_ref().is_none_or(|b| b.len() < picks.len()) {
                best = Some(picks);
            }
        };
        if let Some(key_cols) = tbl.clustered_key_cols() {
            consider(key_cols);
        }
        for idx in &tbl.indexes {
            consider(&idx.cols);
        }
        if let Some(best) = best {
            chosen = best;
        }
    }

    let mut probe_cols = Vec::with_capacity(chosen.len());
    let mut probe_keys = Vec::with_capacity(chosen.len());
    for &i in &chosen {
        probe_cols.push(cands[i].0);
        probe_keys.push(b.bind(source, cands[i].1)?);
    }
    let mut residual = Vec::new();
    for (i, &ci) in cand_conjunct.iter().enumerate() {
        if !chosen.contains(&i) {
            residual.push(b.bind(combined, &conjuncts[ci])?);
        }
    }
    for c in residual_ast {
        residual.push(b.bind(combined, c)?);
    }
    Ok((probe_cols, probe_keys, residual))
}

/// Plans an UPDATE (plain or `UPDATE … FROM`).
fn plan_update(catalog: &Catalog, upd: &Update) -> Result<UpdatePlan> {
    let mut b = Binder::new(catalog);
    let binding = upd.alias.as_deref().unwrap_or(&upd.table);
    let table = catalog.table(&upd.table)?;
    let tschema = Schema::from_table(binding, &table.schema);
    let assign_cols: Vec<usize> = upd
        .assignments
        .iter()
        .map(|(name, _)| {
            table
                .schema
                .col_index(name)
                .ok_or_else(|| SqlError::Bind(format!("no column {name} in {}", upd.table)))
        })
        .collect::<Result<_>>()?;

    let kind = match &upd.from {
        None => {
            let pred = upd
                .filter
                .as_ref()
                .map(|f| b.bind(&tschema, f))
                .transpose()?;
            let assigns: Vec<PExpr> = upd
                .assignments
                .iter()
                .map(|(_, e)| b.bind(&tschema, e))
                .collect::<Result<_>>()?;
            UpdateKind::Plain { pred, assigns }
        }
        Some(source_ref) => {
            let mut conjuncts: Vec<Expr> =
                upd.filter.as_ref().map(split_conjuncts).unwrap_or_default();
            let (mut source, source_schema) = plan_source_ref(&mut b, source_ref)?;
            // Consume source-only conjuncts as pre-probe source filters
            // (mirrors `materialize_ref_filtered`).
            let mine_idx: Vec<usize> = conjuncts
                .iter()
                .enumerate()
                .filter(|(_, c)| binds_in(c, &source_schema) && !binds_in(c, &tschema))
                .map(|(i, _)| i)
                .collect();
            source.filter = mine_idx
                .iter()
                .map(|&i| b.bind(&source_schema, &conjuncts[i]))
                .collect::<Result<_>>()?;
            remove_conjuncts(&mut conjuncts, &mine_idx);

            let combined = tschema.concat(&source_schema);
            let (probe_cols, probe_keys, residual) = plan_equi_probe(
                &mut b,
                &upd.table,
                &tschema,
                &source_schema,
                &combined,
                &conjuncts,
            )?;
            let target_width = tschema.cols.len();
            let (target_residual, mixed_residual): (Vec<PExpr>, Vec<PExpr>) = residual
                .into_iter()
                .partition(|p| super::max_pexpr_col(p).is_none_or(|c| c < target_width));
            let assigns: Vec<PExpr> = upd
                .assignments
                .iter()
                .map(|(_, e)| b.bind(&combined, e))
                .collect::<Result<_>>()?;
            UpdateKind::From {
                source,
                probe_cols,
                probe_keys,
                target_residual,
                mixed_residual,
                assigns,
            }
        }
    };
    Ok(UpdatePlan {
        table: upd.table.clone(),
        assign_cols,
        kind,
        subplans: b.subplans,
    })
}

/// Plans a DELETE.
fn plan_delete(catalog: &Catalog, del: &Delete) -> Result<DeletePlan> {
    let mut b = Binder::new(catalog);
    let table = catalog.table(&del.table)?;
    let schema = Schema::from_table(&del.table, &table.schema);
    let pred = del
        .filter
        .as_ref()
        .map(|f| b.bind(&schema, f))
        .transpose()?;
    Ok(DeletePlan {
        table: del.table.clone(),
        pred,
        subplans: b.subplans,
    })
}

/// Plans an INSERT (literal rows or `INSERT … SELECT`).
fn plan_insert(catalog: &Catalog, ins: &Insert) -> Result<InsertPlan> {
    let mut b = Binder::new(catalog);
    let source = match &ins.source {
        InsertSource::Values(rows) => {
            let empty = Schema::empty();
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let vals: Vec<PExpr> = row
                    .iter()
                    .map(|e| b.bind(&empty, e))
                    .collect::<Result<_>>()?;
                out.push(vals);
            }
            InsertSourcePlan::Values(out)
        }
        InsertSource::Query(q) => InsertSourcePlan::Query(Box::new(plan_select(catalog, q)?)),
    };
    let table = catalog.table(&ins.table)?;
    let col_positions: Option<Vec<usize>> = match &ins.columns {
        Some(names) => Some(
            names
                .iter()
                .map(|n| {
                    table
                        .schema
                        .col_index(n)
                        .ok_or_else(|| SqlError::Bind(format!("no column {n} in {}", ins.table)))
                })
                .collect::<Result<_>>()?,
        ),
        None => None,
    };
    Ok(InsertPlan {
        table: ins.table.clone(),
        col_positions,
        source,
        subplans: b.subplans,
    })
}

/// Plans a MERGE.
fn plan_merge(catalog: &Catalog, m: &Merge) -> Result<MergePlan> {
    let mut b = Binder::new(catalog);
    let target_binding = m.target_alias.as_deref().unwrap_or(&m.target);
    let (source, source_schema) = plan_source_ref(&mut b, &m.source)?;
    let table = catalog.table(&m.target)?;
    let tschema = Schema::from_table(target_binding, &table.schema);
    let combined = tschema.concat(&source_schema);

    let on_conjuncts = split_conjuncts(&m.on);
    let (probe_cols, probe_keys, residual) = plan_equi_probe(
        &mut b,
        &m.target,
        &tschema,
        &source_schema,
        &combined,
        &on_conjuncts,
    )?;

    let matched = m
        .when_matched
        .as_ref()
        .map(|wm| {
            let cond = wm
                .condition
                .as_ref()
                .map(|c| b.bind(&combined, c))
                .transpose()?;
            let cols: Vec<usize> =
                wm.assignments
                    .iter()
                    .map(|(name, _)| {
                        table.schema.col_index(name).ok_or_else(|| {
                            SqlError::Bind(format!("no column {name} in {}", m.target))
                        })
                    })
                    .collect::<Result<_>>()?;
            let exprs: Vec<PExpr> = wm
                .assignments
                .iter()
                .map(|(_, e)| b.bind(&combined, e))
                .collect::<Result<_>>()?;
            Ok::<_, SqlError>((cond, cols, exprs))
        })
        .transpose()?;

    let not_matched = m
        .when_not_matched
        .as_ref()
        .map(|wi| {
            let cols: Vec<usize> =
                wi.columns
                    .iter()
                    .map(|name| {
                        table.schema.col_index(name).ok_or_else(|| {
                            SqlError::Bind(format!("no column {name} in {}", m.target))
                        })
                    })
                    .collect::<Result<_>>()?;
            let exprs: Vec<PExpr> = wi
                .values
                .iter()
                .map(|e| b.bind(&source_schema, e))
                .collect::<Result<_>>()?;
            if cols.len() != exprs.len() {
                return Err(SqlError::Eval(
                    "MERGE INSERT column/value count mismatch".into(),
                ));
            }
            Ok::<_, SqlError>((cols, exprs))
        })
        .transpose()?;

    Ok(MergePlan {
        target: m.target.clone(),
        source,
        probe_cols,
        probe_keys,
        residual,
        matched,
        not_matched,
        subplans: b.subplans,
    })
}

/// Number of `?` parameters a statement expects (the highest ordinal + 1),
/// walking nested selects and subqueries.
pub(crate) fn count_params(stmt: &Stmt) -> usize {
    fn expr(e: &Expr, max: &mut usize) {
        match e {
            Expr::Param(i) => *max = (*max).max(i + 1),
            Expr::Literal(_) | Expr::Column { .. } => {}
            Expr::Unary { expr: e, .. } | Expr::IsNull { expr: e, .. } => expr(e, max),
            Expr::Binary { left, right, .. } => {
                expr(left, max);
                expr(right, max);
            }
            Expr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    expr(a, max);
                }
            }
            Expr::Window {
                partition_by,
                order_by,
                ..
            } => {
                for e in partition_by {
                    expr(e, max);
                }
                for k in order_by {
                    expr(&k.expr, max);
                }
            }
            Expr::Subquery(q) => select(q, max),
            Expr::InSubquery { expr: e, query, .. } => {
                expr(e, max);
                select(query, max);
            }
            Expr::Exists { query, .. } => select(query, max),
        }
    }
    fn tref(t: &TableRef, max: &mut usize) {
        if let TableRef::Derived { query, .. } = t {
            select(query, max);
        }
    }
    fn select(s: &Select, max: &mut usize) {
        for item in &s.items {
            if let SelectItem::Expr { expr: e, .. } = item {
                expr(e, max);
            }
        }
        for t in &s.from {
            tref(t, max);
        }
        if let Some(f) = &s.filter {
            expr(f, max);
        }
        for g in &s.group_by {
            expr(g, max);
        }
        if let Some(h) = &s.having {
            expr(h, max);
        }
        for k in &s.order_by {
            expr(&k.expr, max);
        }
    }
    let mut max = 0;
    match stmt {
        Stmt::Select(s) => select(s, &mut max),
        Stmt::Insert(i) => {
            match &i.source {
                InsertSource::Values(rows) => {
                    for row in rows {
                        for e in row {
                            expr(e, &mut max);
                        }
                    }
                }
                InsertSource::Query(q) => select(q, &mut max),
            };
        }
        Stmt::Update(u) => {
            for (_, e) in &u.assignments {
                expr(e, &mut max);
            }
            if let Some(f) = &u.from {
                tref(f, &mut max);
            }
            if let Some(f) = &u.filter {
                expr(f, &mut max);
            }
        }
        Stmt::Delete(d) => {
            if let Some(f) = &d.filter {
                expr(f, &mut max);
            }
        }
        Stmt::Merge(m) => {
            tref(&m.source, &mut max);
            expr(&m.on, &mut max);
            if let Some(wm) = &m.when_matched {
                if let Some(c) = &wm.condition {
                    expr(c, &mut max);
                }
                for (_, e) in &wm.assignments {
                    expr(e, &mut max);
                }
            }
            if let Some(wi) = &m.when_not_matched {
                for e in &wi.values {
                    expr(e, &mut max);
                }
            }
        }
        Stmt::Explain(inner) => max = count_params(inner),
        _ => {}
    }
    max
}
