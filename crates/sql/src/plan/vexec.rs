//! Vectorized (batch-at-a-time) execution of physical plans.
//!
//! The operators of [`super::exec`] move one `Vec<Value>` row at a time;
//! here the same plans execute over [`Chunk`]s of ~1024 rows: scans fill
//! typed column vectors straight from page bytes, WHERE clauses narrow a
//! selection vector with typed comparison loops, join stages gather whole
//! batches, and aggregation folds column slices into the accumulators.
//! This makes the engine's own execution model match the paper's
//! set-at-a-time argument — the FEM working tables are all-integer, the
//! ideal case for the dense `Vec<i64>`-plus-null-bitmap column layout
//! (DESIGN.md §11).
//!
//! Every plan shape the row executor covers runs here too; per-*column*
//! fallback to generic `Value` vectors (mixed/text/float columns) keeps
//! behaviour identical, and the row-at-a-time interpreter remains the
//! differential oracle. Two deliberate, bounded divergences from strict
//! row-at-a-time evaluation order exist, both documented in DESIGN.md §11:
//! predicates are evaluated eagerly across a batch (an error in a row the
//! row path would not have reached under a `TOP n` cap can surface), and
//! the runaway-cross-join safety valve truncates at batch rather than row
//! granularity.

use super::exec::{self, Env, SubResult};
use super::{
    FromPlan, InputPlan, InsertPlan, InsertSourcePlan, JoinPlan, MergePlan, PExpr, RightPlan,
    SelectPlan, SourcePlan, SubPlan, UpdateKind, UpdatePlan,
};
use crate::ast::{BinaryOp, UnaryOp};
use crate::catalog::{Catalog, RowLoc, Table};
use crate::error::{Result, SqlError};
use crate::exec::agg::AggState;
use crate::exec::eval::{arith, in_list_result, truthy, HashKey};
use fempath_storage::{encode_key, BufferPool, Chunk, Column, NullMask, Value, CHUNK_CAPACITY};
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Chunk reuse
// ---------------------------------------------------------------------------

thread_local! {
    /// Recycled chunks: a fresh 7-column chunk costs ~14 vector
    /// allocations, which dominates point statements (the BDJ inner
    /// loop); a recycled one costs a few pointer resets. Executions are
    /// single-threaded per session, so a thread-local free list is safe —
    /// recursive consumers (derived tables, subqueries) simply take
    /// additional chunks.
    static CHUNK_POOL: std::cell::RefCell<Vec<Chunk>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Pool bound — beyond this, returned chunks are simply dropped.
const CHUNK_POOL_CAP: usize = 16;

fn take_chunk() -> Chunk {
    CHUNK_POOL
        .with(|p| p.borrow_mut().pop())
        .map(|mut c| {
            c.reset_for_reuse();
            c
        })
        .unwrap_or_default()
}

fn put_chunk(c: Chunk) {
    // A skewed probe can blow a chunk far past the target batch size;
    // pooling it would pin that peak allocation for the thread's
    // lifetime, so oversized chunks are dropped instead.
    if c.len() > 4 * CHUNK_CAPACITY {
        return;
    }
    CHUNK_POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.len() < CHUNK_POOL_CAP {
            p.push(c);
        }
    });
}

// ---------------------------------------------------------------------------
// Vectorized expression evaluation
// ---------------------------------------------------------------------------

/// An evaluated expression over one batch, dense over the selection it was
/// evaluated with (`len == sel.len()`), except for the broadcast constant.
enum VCol {
    /// Row-independent value (constants, parameters, scalar subqueries).
    Const(Value),
    /// Typed integers; `nulls: None` means no row is NULL.
    Int {
        vals: Vec<i64>,
        nulls: Option<NullMask>,
    },
    /// Generic fallback.
    Generic(Vec<Value>),
}

impl VCol {
    /// Value at dense position `k`.
    fn get(&self, k: usize) -> Value {
        match self {
            VCol::Const(v) => v.clone(),
            VCol::Int { vals, nulls } => {
                if nulls.as_ref().is_some_and(|m| m.get(k)) {
                    Value::Null
                } else {
                    Value::Int(vals[k])
                }
            }
            VCol::Generic(v) => v[k].clone(),
        }
    }

    fn is_null(&self, k: usize) -> bool {
        match self {
            VCol::Const(v) => v.is_null(),
            VCol::Int { nulls, .. } => nulls.as_ref().is_some_and(|m| m.get(k)),
            VCol::Generic(v) => v[k].is_null(),
        }
    }

    /// SQL truthiness at `k` (NULL is not true) without cloning.
    fn truthy(&self, k: usize) -> bool {
        match self {
            VCol::Const(v) => truthy(v),
            VCol::Int { vals, nulls } => !nulls.as_ref().is_some_and(|m| m.get(k)) && vals[k] != 0,
            VCol::Generic(v) => truthy(&v[k]),
        }
    }

    /// `Some(i)` when position `k` holds exactly an integer (`None` for
    /// NULL or any non-integer value).
    fn int_at(&self, k: usize) -> Option<i64> {
        match self {
            VCol::Const(Value::Int(i)) => Some(*i),
            VCol::Const(_) => None,
            VCol::Int { vals, nulls } => {
                if nulls.as_ref().is_some_and(|m| m.get(k)) {
                    None
                } else {
                    Some(vals[k])
                }
            }
            VCol::Generic(v) => match &v[k] {
                Value::Int(i) => Some(*i),
                _ => None,
            },
        }
    }
}

/// Converts an evaluated column into a storage [`Column`] of `n` rows.
fn vcol_into_column(v: VCol, n: usize) -> Column {
    match v {
        VCol::Int { vals, nulls } => Column::Int {
            vals,
            nulls: nulls.unwrap_or_else(|| NullMask::all_valid(n)),
        },
        VCol::Generic(vals) => Column::Generic(vals),
        VCol::Const(val) => {
            let mut c = Column::new_int();
            for _ in 0..n {
                c.push(val.clone());
            }
            c
        }
    }
}

fn vcols_to_chunk(cols: Vec<VCol>, n: usize) -> Chunk {
    let out: Vec<Column> = cols.into_iter().map(|c| vcol_into_column(c, n)).collect();
    Chunk::from_columns(out, n)
}

/// Column-to-column view used by the typed arithmetic/comparison loops:
/// a dense int slice, a broadcast scalar, or a broadcast NULL.
enum IntView<'a> {
    Slice(&'a [i64], Option<&'a NullMask>),
    Scalar(i64),
    Null,
}

/// An all-integer view of an evaluated column, when one exists.
fn int_view(v: &VCol) -> Option<IntView<'_>> {
    match v {
        VCol::Const(Value::Int(i)) => Some(IntView::Scalar(*i)),
        VCol::Const(Value::Null) => Some(IntView::Null),
        VCol::Const(_) => None,
        VCol::Int { vals, nulls } => Some(IntView::Slice(vals, nulls.as_ref())),
        VCol::Generic(_) => None,
    }
}

impl IntView<'_> {
    #[inline]
    fn get(&self, k: usize) -> Option<i64> {
        match self {
            IntView::Slice(vals, nulls) => {
                if nulls.is_some_and(|m| m.get(k)) {
                    None
                } else {
                    Some(vals[k])
                }
            }
            IntView::Scalar(i) => Some(*i),
            IntView::Null => None,
        }
    }
}

fn cmp_holds(op: BinaryOp, ord: std::cmp::Ordering) -> bool {
    match op {
        BinaryOp::Eq => ord.is_eq(),
        BinaryOp::NotEq => ord.is_ne(),
        BinaryOp::Lt => ord.is_lt(),
        BinaryOp::LtEq => ord.is_le(),
        BinaryOp::Gt => ord.is_gt(),
        BinaryOp::GtEq => ord.is_ge(),
        _ => unreachable!("comparison operator expected"),
    }
}

fn is_cmp(op: BinaryOp) -> bool {
    matches!(
        op,
        BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq
    )
}

fn is_arith(op: BinaryOp) -> bool {
    matches!(
        op,
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod
    )
}

/// Evaluates `e` for the rows of `chunk` selected by `sel`, producing a
/// result dense over the selection. Callers never pass an empty selection
/// (so row-independent subexpressions are not evaluated for zero rows,
/// matching the row path's laziness).
fn eval_v(e: &PExpr, chunk: &Chunk, sel: &[u32], env: &Env<'_>) -> Result<VCol> {
    debug_assert!(!sel.is_empty());
    Ok(match e {
        PExpr::Const(v) => VCol::Const(v.clone()),
        PExpr::Param(i) => {
            VCol::Const(env.params.get(*i).cloned().ok_or(SqlError::ParamCount {
                expected: i + 1,
                got: env.params.len(),
            })?)
        }
        PExpr::Sub(i) => match &env.subs[*i] {
            SubResult::Scalar(v) => VCol::Const(v.clone()),
            _ => unreachable!("slot kind fixed at plan time"),
        },
        PExpr::ExistsSub { sub, negated } => {
            let SubResult::Exists(exists) = &env.subs[*sub] else {
                unreachable!("slot kind fixed at plan time")
            };
            VCol::Const(Value::Int(i64::from(*exists != *negated)))
        }
        PExpr::Col(i) => match chunk.col(*i) {
            Column::Int { vals, nulls } => {
                let mut out = Vec::with_capacity(sel.len());
                if nulls.any() {
                    let mut m = NullMask::new();
                    for &r in sel {
                        out.push(vals[r as usize]);
                        m.push(nulls.get(r as usize));
                    }
                    let nulls = if m.any() { Some(m) } else { None };
                    VCol::Int { vals: out, nulls }
                } else {
                    for &r in sel {
                        out.push(vals[r as usize]);
                    }
                    VCol::Int {
                        vals: out,
                        nulls: None,
                    }
                }
            }
            Column::Generic(v) => {
                VCol::Generic(sel.iter().map(|&r| v[r as usize].clone()).collect())
            }
        },
        PExpr::Unary { op, e } => {
            let v = eval_v(e, chunk, sel, env)?;
            match op {
                UnaryOp::Neg => match &v {
                    VCol::Int { vals, nulls } => VCol::Int {
                        vals: vals.iter().map(|&i| -i).collect(),
                        nulls: nulls.clone(),
                    },
                    other => {
                        let mut out = Column::new_int();
                        for k in 0..sel.len() {
                            out.push(match other.get(k) {
                                Value::Int(i) => Value::Int(-i),
                                Value::Float(f) => Value::Float(-f),
                                Value::Null => Value::Null,
                                Value::Text(_) => {
                                    return Err(SqlError::Eval("cannot negate text".into()))
                                }
                            });
                        }
                        column_to_vcol(out)
                    }
                },
                UnaryOp::Not => {
                    let mut vals = Vec::with_capacity(sel.len());
                    let mut m = NullMask::new();
                    for k in 0..sel.len() {
                        if v.is_null(k) {
                            vals.push(0);
                            m.push(true);
                        } else {
                            vals.push(i64::from(!v.truthy(k)));
                            m.push(false);
                        }
                    }
                    VCol::Int {
                        vals,
                        nulls: if m.any() { Some(m) } else { None },
                    }
                }
            }
        }
        PExpr::IsNull { e, negated } => {
            let v = eval_v(e, chunk, sel, env)?;
            let vals: Vec<i64> = (0..sel.len())
                .map(|k| i64::from(v.is_null(k) != *negated))
                .collect();
            VCol::Int { vals, nulls: None }
        }
        PExpr::InSub { e, sub, negated } => {
            let v = eval_v(e, chunk, sel, env)?;
            let SubResult::List(list, has_null) = &env.subs[*sub] else {
                unreachable!("slot kind fixed at plan time")
            };
            let mut out = Column::new_int();
            for k in 0..sel.len() {
                out.push(in_list_result(&v.get(k), list, *has_null, *negated));
            }
            column_to_vcol(out)
        }
        PExpr::Binary { l, op, r } => return eval_binary(l, *op, r, chunk, sel, env),
    })
}

/// Converts a push-built column into an evaluated column.
fn column_to_vcol(c: Column) -> VCol {
    match c {
        Column::Int { vals, nulls } => {
            let nulls = if nulls.any() { Some(nulls) } else { None };
            VCol::Int { vals, nulls }
        }
        Column::Generic(v) => VCol::Generic(v),
    }
}

fn eval_binary(
    l: &PExpr,
    op: BinaryOp,
    r: &PExpr,
    chunk: &Chunk,
    sel: &[u32],
    env: &Env<'_>,
) -> Result<VCol> {
    // AND/OR keep the row path's per-row short-circuit: the right side is
    // only evaluated for rows the left side did not decide, so an error in
    // the right operand surfaces for exactly the rows it would have.
    if matches!(op, BinaryOp::And | BinaryOp::Or) {
        let and = op == BinaryOp::And;
        let lv = eval_v(l, chunk, sel, env)?;
        let mut need: Vec<u32> = Vec::new();
        let mut need_pos: Vec<usize> = Vec::new();
        for (k, &r0) in sel.iter().enumerate() {
            let ln = lv.is_null(k);
            let lt = lv.truthy(k);
            // AND is decided (false) when l is false; OR is decided (true)
            // when l is true.
            let decided = if and { !ln && !lt } else { lt };
            if !decided {
                need.push(r0);
                need_pos.push(k);
            }
        }
        let decided_val = i64::from(!and);
        let mut vals = vec![decided_val; sel.len()];
        let mut m = NullMask::all_valid(sel.len());
        if !need.is_empty() {
            let rv = eval_v(r, chunk, &need, env)?;
            for (j, &k) in need_pos.iter().enumerate() {
                let ln = lv.is_null(k);
                let rn = rv.is_null(j);
                let rt = rv.truthy(j);
                let out = if and {
                    if !rn && !rt {
                        Some(0)
                    } else if ln || rn {
                        None
                    } else {
                        Some(1)
                    }
                } else if rt {
                    Some(1)
                } else if ln || rn {
                    None
                } else {
                    Some(0)
                };
                match out {
                    Some(v) => vals[k] = v,
                    None => {
                        vals[k] = 0;
                        m.set_null(k);
                    }
                }
            }
        }
        let nulls = if m.any() { Some(m) } else { None };
        return Ok(VCol::Int { vals, nulls });
    }

    let lv = eval_v(l, chunk, sel, env)?;
    let rv = eval_v(r, chunk, sel, env)?;
    let n = sel.len();

    if let (Some(a), Some(b)) = (int_view(&lv), int_view(&rv)) {
        if is_cmp(op) {
            let mut vals = Vec::with_capacity(n);
            let mut m = NullMask::new();
            // The fully-dense slice/slice and slice/scalar shapes are the
            // FEM hot loops; the generic Option walk covers the rest.
            match (&a, &b) {
                (IntView::Slice(av, None), IntView::Slice(bv, None)) => {
                    for k in 0..n {
                        vals.push(i64::from(cmp_holds(op, av[k].cmp(&bv[k]))));
                    }
                    return Ok(VCol::Int { vals, nulls: None });
                }
                (IntView::Slice(av, None), IntView::Scalar(x)) => {
                    for v in av.iter() {
                        vals.push(i64::from(cmp_holds(op, v.cmp(x))));
                    }
                    return Ok(VCol::Int { vals, nulls: None });
                }
                (IntView::Scalar(x), IntView::Slice(bv, None)) => {
                    for v in bv.iter() {
                        vals.push(i64::from(cmp_holds(op, x.cmp(v))));
                    }
                    return Ok(VCol::Int { vals, nulls: None });
                }
                _ => {}
            }
            for k in 0..n {
                match (a.get(k), b.get(k)) {
                    (Some(x), Some(y)) => {
                        vals.push(i64::from(cmp_holds(op, x.cmp(&y))));
                        m.push(false);
                    }
                    _ => {
                        vals.push(0);
                        m.push(true);
                    }
                }
            }
            let nulls = if m.any() { Some(m) } else { None };
            return Ok(VCol::Int { vals, nulls });
        }
        if is_arith(op) {
            let mut vals = Vec::with_capacity(n);
            let mut m = NullMask::new();
            let mut any_null = false;
            match (&a, &b, op) {
                // Dense no-null fast loops for the additive FEM shapes.
                (IntView::Slice(av, None), IntView::Slice(bv, None), BinaryOp::Add) => {
                    for k in 0..n {
                        vals.push(av[k].wrapping_add(bv[k]));
                    }
                    return Ok(VCol::Int { vals, nulls: None });
                }
                (IntView::Slice(av, None), IntView::Scalar(x), BinaryOp::Add) => {
                    for v in av.iter() {
                        vals.push(v.wrapping_add(*x));
                    }
                    return Ok(VCol::Int { vals, nulls: None });
                }
                (IntView::Slice(av, None), IntView::Scalar(x), BinaryOp::Mul) => {
                    for v in av.iter() {
                        vals.push(v.wrapping_mul(*x));
                    }
                    return Ok(VCol::Int { vals, nulls: None });
                }
                _ => {}
            }
            for k in 0..n {
                match (a.get(k), b.get(k)) {
                    (Some(x), Some(y)) => {
                        let v = match op {
                            BinaryOp::Add => x.wrapping_add(y),
                            BinaryOp::Sub => x.wrapping_sub(y),
                            BinaryOp::Mul => x.wrapping_mul(y),
                            BinaryOp::Div => {
                                if y == 0 {
                                    return Err(SqlError::Eval("division by zero".into()));
                                }
                                x.wrapping_div(y)
                            }
                            BinaryOp::Mod => {
                                if y == 0 {
                                    return Err(SqlError::Eval("division by zero".into()));
                                }
                                x.wrapping_rem(y)
                            }
                            _ => unreachable!(),
                        };
                        vals.push(v);
                        m.push(false);
                    }
                    _ => {
                        vals.push(0);
                        m.push(true);
                        any_null = true;
                    }
                }
            }
            let nulls = if any_null { Some(m) } else { None };
            return Ok(VCol::Int { vals, nulls });
        }
        unreachable!("AND/OR handled above");
    }

    // Generic per-row fallback (floats, text, mixed columns).
    let mut out = Column::new_int();
    for k in 0..n {
        let a = lv.get(k);
        let b = rv.get(k);
        let v = if is_arith(op) {
            arith(op, a, b)?
        } else if a.is_null() || b.is_null() {
            Value::Null
        } else {
            Value::Int(i64::from(cmp_holds(op, a.total_cmp(&b))))
        };
        out.push(v);
    }
    Ok(column_to_vcol(out))
}

// ---------------------------------------------------------------------------
// Filters (selection vectors)
// ---------------------------------------------------------------------------

/// Narrows `sel` to the rows where `p` is true. The single hot shape —
/// `col <cmp> const/param` and `col <cmp> col` over integer columns —
/// filters the chunk columns directly, with no intermediate result vector.
fn apply_pred(p: &PExpr, chunk: &Chunk, sel: &mut Vec<u32>, env: &Env<'_>) -> Result<()> {
    if sel.is_empty() {
        return Ok(());
    }
    if let PExpr::Binary { l, op, r } = p {
        if is_cmp(*op) {
            match (l.as_ref(), r.as_ref()) {
                (PExpr::Col(a), PExpr::Col(b)) => {
                    if let (
                        Column::Int {
                            vals: va,
                            nulls: na,
                        },
                        Column::Int {
                            vals: vb,
                            nulls: nb,
                        },
                    ) = (chunk.col(*a), chunk.col(*b))
                    {
                        sel.retain(|&i| {
                            let i = i as usize;
                            !na.get(i) && !nb.get(i) && cmp_holds(*op, va[i].cmp(&vb[i]))
                        });
                        return Ok(());
                    }
                }
                (PExpr::Col(a), rhs) => {
                    if let Some(v) = scalar_operand(rhs, env)? {
                        if let (Column::Int { vals, nulls }, Value::Int(x)) = (chunk.col(*a), &v) {
                            sel.retain(|&i| {
                                let i = i as usize;
                                !nulls.get(i) && cmp_holds(*op, vals[i].cmp(x))
                            });
                            return Ok(());
                        }
                        if v.is_null() {
                            sel.clear(); // col <cmp> NULL is never true
                            return Ok(());
                        }
                    }
                }
                (lhs, PExpr::Col(a)) => {
                    if let Some(v) = scalar_operand(lhs, env)? {
                        if let (Column::Int { vals, nulls }, Value::Int(x)) = (chunk.col(*a), &v) {
                            sel.retain(|&i| {
                                let i = i as usize;
                                !nulls.get(i) && cmp_holds(*op, x.cmp(&vals[i]))
                            });
                            return Ok(());
                        }
                        if v.is_null() {
                            sel.clear();
                            return Ok(());
                        }
                    }
                }
                _ => {}
            }
        }
    }
    let v = eval_v(p, chunk, sel, env)?;
    let mut k = 0usize;
    sel.retain(|_| {
        let keep = v.truthy(k);
        k += 1;
        keep
    });
    Ok(())
}

/// The value of a row-independent operand (constant, parameter, scalar
/// subquery slot), or `None` when the operand depends on the row.
fn scalar_operand(e: &PExpr, env: &Env<'_>) -> Result<Option<Value>> {
    Ok(match e {
        PExpr::Const(v) => Some(v.clone()),
        PExpr::Param(i) => Some(env.params.get(*i).cloned().ok_or(SqlError::ParamCount {
            expected: i + 1,
            got: env.params.len(),
        })?),
        PExpr::Sub(i) => match &env.subs[*i] {
            SubResult::Scalar(v) => Some(v.clone()),
            _ => None,
        },
        _ => None,
    })
}

/// Applies every conjunct in order, narrowing `sel`.
fn apply_filter(preds: &[PExpr], chunk: &Chunk, sel: &mut Vec<u32>, env: &Env<'_>) -> Result<()> {
    for p in preds {
        if sel.is_empty() {
            return Ok(());
        }
        apply_pred(p, chunk, sel, env)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Sources and the join pipeline
// ---------------------------------------------------------------------------

/// Streams a source's batches (pushed-down filters applied as selection
/// vectors) into `f`; `f` returns `false` to stop early.
fn stream_source_v(
    pool: &mut BufferPool,
    catalog: &Catalog,
    env: &Env<'_>,
    sp: &SourcePlan,
    f: &mut dyn FnMut(&Chunk, &[u32]) -> Result<bool>,
) -> Result<()> {
    match &sp.input {
        InputPlan::Nothing => {
            if exec::passes(&sp.filter, &[], env)? {
                let mut ch = Chunk::new();
                ch.push_empty_row();
                f(&ch, &[0])?;
            }
            Ok(())
        }
        InputPlan::Scan { table, .. } => {
            let t = catalog.table(table)?;
            let mut cursor = t.batch_cursor(pool)?;
            let mut chunk = take_chunk();
            let res = (|| loop {
                chunk.reset();
                let more = t.next_batch(pool, &mut cursor, &mut chunk, None, CHUNK_CAPACITY)?;
                if !chunk.is_empty() {
                    let mut sel: Vec<u32> = (0..chunk.len() as u32).collect();
                    apply_filter(&sp.filter, &chunk, &mut sel, env)?;
                    if !sel.is_empty() && !f(&chunk, &sel)? {
                        return Ok(());
                    }
                }
                if !more {
                    return Ok(());
                }
            })();
            put_chunk(chunk);
            res
        }
        InputPlan::Lookup {
            table, cols, keys, ..
        } => {
            let mut key_vals = Vec::with_capacity(keys.len());
            for k in keys {
                key_vals.push(exec::eval_px(k, &[], env)?);
            }
            if key_vals.iter().any(|k| k.is_null()) {
                return Ok(()); // `col = NULL` never matches
            }
            let t = catalog.table(table)?;
            let mut chunk = take_chunk();
            let res = (|| {
                t.lookup_eq_chunk(pool, cols, &key_vals, &mut chunk)?;
                if !chunk.is_empty() {
                    let mut sel: Vec<u32> = (0..chunk.len() as u32).collect();
                    apply_filter(&sp.filter, &chunk, &mut sel, env)?;
                    if !sel.is_empty() {
                        f(&chunk, &sel)?;
                    }
                }
                Ok(())
            })();
            put_chunk(chunk);
            res
        }
        InputPlan::Derived(sub) => {
            let chunks = run_select_chunks(pool, catalog, env.params, sub)?;
            for chunk in &chunks {
                if chunk.is_empty() {
                    continue;
                }
                let mut sel: Vec<u32> = (0..chunk.len() as u32).collect();
                apply_filter(&sp.filter, chunk, &mut sel, env)?;
                if !sel.is_empty() && !f(chunk, &sel)? {
                    break;
                }
            }
            Ok(())
        }
    }
}

/// Materializes a source's selected rows (DML sources, MERGE).
fn collect_source_rows_v(
    pool: &mut BufferPool,
    catalog: &Catalog,
    env: &Env<'_>,
    sp: &SourcePlan,
) -> Result<Vec<Vec<Value>>> {
    let mut rows = Vec::new();
    stream_source_v(pool, catalog, env, sp, &mut |chunk, sel| {
        for &r in sel {
            rows.push(chunk.row(r as usize));
        }
        Ok(true)
    })?;
    Ok(rows)
}

/// Materializes a join stage's right side as one columnar batch.
fn materialize_right_v(
    pool: &mut BufferPool,
    catalog: &Catalog,
    env: &Env<'_>,
    right: &RightPlan,
) -> Result<Chunk> {
    match right {
        RightPlan::Table { name } => {
            let t = catalog.table(name)?;
            let mut cursor = t.batch_cursor(pool)?;
            let mut chunk = Chunk::new();
            while t.next_batch(pool, &mut cursor, &mut chunk, None, usize::MAX)? {}
            Ok(chunk)
        }
        RightPlan::Derived(sub) => {
            let chunks = run_select_chunks(pool, catalog, env.params, sub)?;
            let mut out = Chunk::new();
            for c in &chunks {
                out.append(c);
            }
            Ok(out)
        }
    }
}

/// Per-execution runtime state of one join stage.
enum VStageRt<'a> {
    Index {
        table: &'a Table,
    },
    Hash {
        chunk: Chunk,
        /// Single-integer-key build table (the FEM join shape): probes
        /// hash a bare `i64`, no key encoding or allocation.
        int_ht: Option<HashMap<i64, Vec<u32>>>,
        gen_ht: Option<HashMap<HashKey, Vec<u32>>>,
    },
    Loop {
        chunk: Chunk,
        emitted: u64,
    },
}

fn build_stage_rts_v<'a>(
    pool: &mut BufferPool,
    catalog: &'a Catalog,
    env: &Env<'_>,
    joins: &[JoinPlan],
) -> Result<Vec<VStageRt<'a>>> {
    let mut rts = Vec::with_capacity(joins.len());
    for j in joins {
        let rt = match j {
            JoinPlan::IndexLoop { table, .. } => VStageRt::Index {
                table: catalog.table(table)?,
            },
            JoinPlan::Hash {
                right, right_cols, ..
            } => {
                let chunk = materialize_right_v(pool, catalog, env, right)?;
                let mut int_ht = None;
                let mut gen_ht = None;
                // An empty build side materializes as a zero-column chunk
                // (no row ever fixed its width), so the column probe below
                // is only valid when rows exist.
                if let ([c], false) = (&right_cols[..], chunk.is_empty()) {
                    if let Column::Int { vals, nulls } = chunk.col(*c) {
                        let mut ht: HashMap<i64, Vec<u32>> = HashMap::new();
                        for (i, &v) in vals.iter().enumerate() {
                            if !nulls.get(i) {
                                ht.entry(v).or_default().push(i as u32);
                            }
                        }
                        int_ht = Some(ht);
                    }
                }
                if int_ht.is_none() {
                    let mut ht: HashMap<HashKey, Vec<u32>> = HashMap::new();
                    'row: for i in 0..chunk.len() {
                        let mut vals = Vec::with_capacity(right_cols.len());
                        for &c in right_cols {
                            let v = chunk.get(c, i);
                            if v.is_null() {
                                continue 'row;
                            }
                            vals.push(v);
                        }
                        ht.entry(HashKey::from_values(&vals)?)
                            .or_default()
                            .push(i as u32);
                    }
                    gen_ht = Some(ht);
                }
                VStageRt::Hash {
                    chunk,
                    int_ht,
                    gen_ht,
                }
            }
            JoinPlan::Loop { right, .. } => VStageRt::Loop {
                chunk: materialize_right_v(pool, catalog, env, right)?,
                emitted: 0,
            },
        };
        rts.push(rt);
    }
    Ok(rts)
}

/// Runs one join stage over a whole batch, producing the combined batch
/// (left columns gathered per match, right columns appended) with the
/// stage residual already applied as its selection.
fn apply_stage(
    pool: &mut BufferPool,
    env: &Env<'_>,
    join: &JoinPlan,
    rt: &mut VStageRt<'_>,
    chunk: &Chunk,
    sel: &[u32],
    stop: &mut bool,
) -> Result<(Chunk, Vec<u32>)> {
    match (join, rt) {
        (
            JoinPlan::IndexLoop {
                keys,
                path_cols,
                residual,
                ..
            },
            VStageRt::Index { table },
        ) => {
            let kcols: Vec<VCol> = keys
                .iter()
                .map(|k| eval_v(k, chunk, sel, env))
                .collect::<Result<_>>()?;
            let mut lidx: Vec<u32> = Vec::new();
            let mut right = Chunk::new();
            let mut key_vals: Vec<Value> = Vec::with_capacity(kcols.len());
            for (k, &r) in sel.iter().enumerate() {
                key_vals.clear();
                let mut null_key = false;
                for c in &kcols {
                    let v = c.get(k);
                    if v.is_null() {
                        null_key = true;
                        break;
                    }
                    key_vals.push(v);
                }
                if null_key {
                    continue; // NULL join key never matches
                }
                table.lookup_eq_chunk(pool, path_cols, &key_vals, &mut right)?;
                while lidx.len() < right.len() {
                    lidx.push(r);
                }
            }
            let out = chunk.gather(&lidx).hcat(right);
            let mut sel_out: Vec<u32> = (0..out.len() as u32).collect();
            apply_filter(residual, &out, &mut sel_out, env)?;
            Ok((out, sel_out))
        }
        (
            JoinPlan::Hash {
                left_keys,
                residual,
                ..
            },
            VStageRt::Hash {
                chunk: rchunk,
                int_ht,
                gen_ht,
            },
        ) => {
            let kcols: Vec<VCol> = left_keys
                .iter()
                .map(|k| eval_v(k, chunk, sel, env))
                .collect::<Result<_>>()?;
            let mut lidx: Vec<u32> = Vec::new();
            let mut ridx: Vec<u32> = Vec::new();
            if let (Some(ht), [kc]) = (int_ht.as_ref(), &kcols[..]) {
                // Bare-integer probe: HashKey semantics make a non-integer
                // probe value never match an integer build key.
                for (k, &r) in sel.iter().enumerate() {
                    if let Some(x) = kc.int_at(k) {
                        if let Some(matches) = ht.get(&x) {
                            for &ri in matches {
                                lidx.push(r);
                                ridx.push(ri);
                            }
                        }
                    }
                }
            } else {
                let ht = gen_ht.as_ref().ok_or_else(|| {
                    SqlError::Eval("hash stage is missing its build table".into())
                })?;
                let mut vals = Vec::with_capacity(kcols.len());
                'probe: for (k, &r) in sel.iter().enumerate() {
                    vals.clear();
                    for c in &kcols {
                        let v = c.get(k);
                        if v.is_null() {
                            continue 'probe;
                        }
                        vals.push(v);
                    }
                    if let Some(matches) = ht.get(&HashKey::from_values(&vals)?) {
                        for &ri in matches {
                            lidx.push(r);
                            ridx.push(ri);
                        }
                    }
                }
            }
            let out = chunk.gather(&lidx).hcat(rchunk.gather(&ridx));
            let mut sel_out: Vec<u32> = (0..out.len() as u32).collect();
            apply_filter(residual, &out, &mut sel_out, env)?;
            Ok((out, sel_out))
        }
        (
            JoinPlan::Loop { residual, .. },
            VStageRt::Loop {
                chunk: rchunk,
                emitted,
            },
        ) => {
            let rn = rchunk.len() as u32;
            let all_right: Vec<u32> = (0..rn).collect();
            let mut out = Chunk::new();
            // The right side is cloned once; per left row only the left
            // columns of the combined batch are rewritten in place.
            let mut comb: Option<Chunk> = None;
            let lw = chunk.width();
            for &r in sel {
                if rn == 0 {
                    break;
                }
                let lrep = vec![r; rn as usize];
                match &mut comb {
                    None => comb = Some(chunk.gather(&lrep).hcat(rchunk.gather(&all_right))),
                    Some(c) => {
                        for i in 0..lw {
                            c.set_column(i, chunk.col(i).gather(&lrep));
                        }
                    }
                }
                let c = comb
                    .as_ref()
                    .ok_or_else(|| SqlError::Eval("loop join produced no combined chunk".into()))?;
                let mut s: Vec<u32> = (0..c.len() as u32).collect();
                apply_filter(residual, c, &mut s, env)?;
                *emitted += s.len() as u64;
                // Survivors append straight into the output — no second
                // gather over the combined columns.
                out.append_gather(c, &s);
                if *emitted > exec::LOOP_JOIN_ROW_CAP {
                    *stop = true; // runaway cross join
                    break;
                }
            }
            let sel_out: Vec<u32> = (0..out.len() as u32).collect();
            Ok((out, sel_out))
        }
        _ => unreachable!("runtime built from the same join list"),
    }
}

/// Streams the FROM/WHERE pipeline batch-wise into `sink`.
fn run_from_v(
    pool: &mut BufferPool,
    catalog: &Catalog,
    env: &Env<'_>,
    fp: &FromPlan,
    sink: &mut dyn FnMut(&Chunk, &[u32]) -> Result<bool>,
) -> Result<()> {
    if fp.joins.is_empty() {
        return stream_source_v(pool, catalog, env, &fp.source, &mut |chunk, sel| {
            let mut sel = sel.to_vec();
            apply_filter(&fp.residual, chunk, &mut sel, env)?;
            if sel.is_empty() {
                return Ok(true);
            }
            sink(chunk, &sel)
        });
    }
    // Join pipeline: the base side is materialized (index probes need the
    // buffer pool between batches), mirroring the row executor.
    let mut base: Vec<Chunk> = Vec::new();
    stream_source_v(pool, catalog, env, &fp.source, &mut |chunk, sel| {
        base.push(chunk.gather(sel));
        Ok(true)
    })?;
    let mut rts = build_stage_rts_v(pool, catalog, env, &fp.joins)?;
    for chunk in &base {
        if chunk.is_empty() {
            continue;
        }
        let mut sel: Vec<u32> = (0..chunk.len() as u32).collect();
        let mut owned: Option<Chunk> = None;
        let mut stop = false;
        for (j, rt) in fp.joins.iter().zip(rts.iter_mut()) {
            let input: &Chunk = owned.as_ref().unwrap_or(chunk);
            let (next, nsel) = apply_stage(pool, env, j, rt, input, &sel, &mut stop)?;
            owned = Some(next);
            sel = nsel;
            if sel.is_empty() {
                break;
            }
        }
        if !sel.is_empty() {
            let out = owned.as_ref().ok_or_else(|| {
                SqlError::Eval("join pipeline finished without producing a chunk".into())
            })?;
            apply_filter(&fp.residual, out, &mut sel, env)?;
            if !sel.is_empty() && !sink(out, &sel)? {
                return Ok(());
            }
        }
        if stop {
            return Ok(());
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

/// Runs every subquery slot (vectorized) against current data.
fn build_env_v<'a>(
    pool: &mut BufferPool,
    catalog: &Catalog,
    params: &'a [Value],
    subplans: &[SubPlan],
) -> Result<Env<'a>> {
    let mut subs = Vec::with_capacity(subplans.len());
    for sp in subplans {
        let res = match sp {
            SubPlan::Scalar(p) => {
                let rows = run_select_rows(pool, catalog, params, p)?;
                if rows.len() > 1 {
                    return Err(SqlError::Eval(
                        "scalar subquery returned more than one row".into(),
                    ));
                }
                match rows.into_iter().next() {
                    Some(mut row) => {
                        if row.len() != 1 {
                            return Err(SqlError::Eval(
                                "scalar subquery must return exactly one column".into(),
                            ));
                        }
                        SubResult::Scalar(row.pop().ok_or_else(|| {
                            SqlError::Eval("scalar subquery returned an empty row".into())
                        })?)
                    }
                    None => SubResult::Scalar(Value::Null),
                }
            }
            SubPlan::List(p) => {
                let rows = run_select_rows(pool, catalog, params, p)?;
                let mut list: Vec<Value> = rows
                    .into_iter()
                    .map(|mut r| {
                        if r.len() != 1 {
                            return Err(SqlError::Eval(
                                "IN subquery must return exactly one column".into(),
                            ));
                        }
                        r.pop().ok_or_else(|| {
                            SqlError::Eval("IN subquery returned an empty row".into())
                        })
                    })
                    .collect::<Result<_>>()?;
                let n = list.len();
                list.retain(|v| !v.is_null());
                let has_null = list.len() != n;
                list.sort_by(|a, b| a.total_cmp(b));
                list.dedup();
                SubResult::List(Rc::new(list), has_null)
            }
            SubPlan::Exists(p) => {
                SubResult::Exists(!run_select_rows(pool, catalog, params, p)?.is_empty())
            }
        };
        subs.push(res);
    }
    Ok(Env { params, subs })
}

/// Vectorized update of one aggregate accumulator from a batch column.
fn agg_update_vcol(state: &mut AggState, v: &VCol, n: usize) -> Result<()> {
    if let VCol::Int { vals, nulls } = v {
        match state {
            AggState::Count(c) => {
                let null_count = nulls.as_ref().map_or(0, |m| m.count());
                *c += (n - null_count) as i64;
            }
            AggState::SumInt {
                acc, any, float, ..
            } => {
                let mut saw = false;
                match nulls {
                    None => {
                        for &x in vals {
                            *acc = acc.wrapping_add(x);
                            *float += x as f64;
                        }
                        saw = n > 0;
                    }
                    Some(m) => {
                        for (i, &x) in vals.iter().enumerate() {
                            if !m.get(i) {
                                *acc = acc.wrapping_add(x);
                                *float += x as f64;
                                saw = true;
                            }
                        }
                    }
                }
                if saw {
                    *any = true;
                }
            }
            AggState::Min(cur) => {
                let mut best: Option<i64> = None;
                for (i, &x) in vals.iter().enumerate() {
                    if !nulls.as_ref().is_some_and(|m| m.get(i)) {
                        best = Some(best.map_or(x, |b| b.min(x)));
                    }
                }
                if let Some(b) = best {
                    let v = Value::Int(b);
                    if cur.as_ref().is_none_or(|c| v.total_cmp(c).is_lt()) {
                        *cur = Some(v);
                    }
                }
            }
            AggState::Max(cur) => {
                let mut best: Option<i64> = None;
                for (i, &x) in vals.iter().enumerate() {
                    if !nulls.as_ref().is_some_and(|m| m.get(i)) {
                        best = Some(best.map_or(x, |b| b.max(x)));
                    }
                }
                if let Some(b) = best {
                    let v = Value::Int(b);
                    if cur.as_ref().is_none_or(|c| v.total_cmp(c).is_gt()) {
                        *cur = Some(v);
                    }
                }
            }
            AggState::Avg { sum, n: cnt } => {
                for (i, &x) in vals.iter().enumerate() {
                    if !nulls.as_ref().is_some_and(|m| m.get(i)) {
                        *sum += x as f64;
                        *cnt += 1;
                    }
                }
            }
        }
        return Ok(());
    }
    for k in 0..n {
        state.update(Some(v.get(k)))?;
    }
    Ok(())
}

/// Appends an evaluated column's `n` values to an accumulator column.
fn append_vcol_to_column(acc: &mut Column, v: &VCol, n: usize) {
    match v {
        VCol::Int { vals, nulls: None } => {
            for &x in vals {
                acc.push_int(x);
            }
        }
        VCol::Int {
            vals,
            nulls: Some(m),
        } => {
            for (i, &x) in vals.iter().enumerate() {
                if m.get(i) {
                    acc.push_null();
                } else {
                    acc.push_int(x);
                }
            }
        }
        VCol::Generic(vals) => {
            for x in vals {
                acc.push(x.clone());
            }
        }
        VCol::Const(c) => {
            for _ in 0..n {
                acc.push(c.clone());
            }
        }
    }
}

/// Computes one window function column from batch-accumulated partition
/// and order key columns. All-integer keys — both FEM E-operator shapes —
/// sort an index permutation over the typed vectors with no per-row
/// allocation; anything else goes through the shared
/// [`crate::exec::window::window_values`] engine.
fn window_column(
    pacc: &[Column],
    oacc: &[Column],
    dirs: &[bool],
    func: crate::ast::WindowFunc,
    n: usize,
) -> Column {
    let all_int = |cols: &[Column]| {
        cols.iter()
            .all(|c| matches!(c, Column::Int { nulls, .. } if !nulls.any()))
    };
    if all_int(pacc) && all_int(oacc) && n > 0 {
        let pv: Vec<&[i64]> = pacc
            .iter()
            .map(|c| match c {
                Column::Int { vals, .. } => vals.as_slice(),
                Column::Generic(_) => unreachable!("checked all-int"),
            })
            .collect();
        let ov: Vec<&[i64]> = oacc
            .iter()
            .map(|c| match c {
                Column::Int { vals, .. } => vals.as_slice(),
                Column::Generic(_) => unreachable!("checked all-int"),
            })
            .collect();
        let mut idx: Vec<u32> = (0..n as u32).collect();
        // The final index tiebreak reproduces the row path's *stable*
        // sort, so ROW_NUMBER assignment among fully-tied rows matches.
        idx.sort_unstable_by(|&a, &b| {
            let (a, b) = (a as usize, b as usize);
            for p in &pv {
                let ord = p[a].cmp(&p[b]);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            for (o, asc) in ov.iter().zip(dirs) {
                let ord = o[a].cmp(&o[b]);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            a.cmp(&b)
        });
        let mut out = vec![0i64; n];
        let mut row_num = 0i64;
        let mut rank = 0i64;
        let mut prev: Option<usize> = None;
        for &i in &idx {
            let i = i as usize;
            let same_part = prev.is_some_and(|p| pv.iter().all(|col| col[p] == col[i]));
            if !same_part {
                row_num = 0;
                rank = 0;
                prev = None;
            }
            row_num += 1;
            let tied = prev.is_some_and(|p| ov.iter().all(|col| col[p] == col[i]));
            if !tied {
                rank = row_num;
            }
            prev = Some(i);
            out[i] = match func {
                crate::ast::WindowFunc::RowNumber => row_num,
                crate::ast::WindowFunc::Rank => rank,
            };
        }
        return Column::Int {
            vals: out,
            nulls: NullMask::all_valid(n),
        };
    }
    // Generic fallback: per-row key tuples through the shared engine.
    let keyed: Vec<(Vec<Value>, Vec<Value>, usize)> = (0..n)
        .map(|i| {
            (
                pacc.iter().map(|c| c.get(i)).collect(),
                oacc.iter().map(|c| c.get(i)).collect(),
                i,
            )
        })
        .collect();
    let values = crate::exec::window::window_values(keyed, dirs, func);
    let mut col = Column::new_int();
    for v in values {
        col.push(v);
    }
    col
}

/// Executes a SELECT plan batch-at-a-time, returning columnar results.
pub(crate) fn run_select_chunks(
    pool: &mut BufferPool,
    catalog: &Catalog,
    params: &[Value],
    plan: &SelectPlan,
) -> Result<Vec<Chunk>> {
    let env = build_env_v(pool, catalog, params, &plan.subplans)?;

    if let Some(agg) = &plan.agg {
        if agg.group.is_empty() {
            // Scalar aggregate (the FEM stats statements): columns fold
            // straight into the accumulators, one batch at a time.
            let mut states: Vec<AggState> =
                agg.aggs.iter().map(|(f, _)| AggState::new(*f)).collect();
            run_from_v(pool, catalog, &env, &plan.from, &mut |chunk, sel| {
                for (state, (_, arg)) in states.iter_mut().zip(&agg.aggs) {
                    match arg {
                        None => state.update_star(sel.len() as i64),
                        Some(a) => {
                            let v = eval_v(a, chunk, sel, &env)?;
                            agg_update_vcol(state, &v, sel.len())?;
                        }
                    }
                }
                Ok(true)
            })?;
            let row: Vec<Value> = states.into_iter().map(|s| s.finish()).collect();
            let rows = exec::post_process(vec![row], plan, &env)?;
            return Ok(vec![fempath_storage::chunk_from_rows(&rows)]);
        }
        // Grouped aggregation: group keys and aggregate arguments are
        // evaluated per batch; per-row work is the accumulator update.
        let mut order: Vec<HashKey> = Vec::new();
        let mut groups: HashMap<HashKey, (Vec<Value>, Vec<AggState>)> = HashMap::new();
        run_from_v(pool, catalog, &env, &plan.from, &mut |chunk, sel| {
            let gcols: Vec<VCol> = agg
                .group
                .iter()
                .map(|g| eval_v(g, chunk, sel, &env))
                .collect::<Result<_>>()?;
            let acols: Vec<Option<VCol>> = agg
                .aggs
                .iter()
                .map(|(_, arg)| {
                    arg.as_ref()
                        .map(|a| eval_v(a, chunk, sel, &env))
                        .transpose()
                })
                .collect::<Result<_>>()?;
            for k in 0..sel.len() {
                let mut key_vals: Vec<Value> = gcols.iter().map(|c| c.get(k)).collect();
                let key = HashKey::from_values(&key_vals)?;
                let entry = groups.entry(key.clone()).or_insert_with(|| {
                    order.push(key);
                    (
                        std::mem::take(&mut key_vals),
                        agg.aggs.iter().map(|(f, _)| AggState::new(*f)).collect(),
                    )
                });
                for (state, arg) in entry.1.iter_mut().zip(&acols) {
                    state.update(arg.as_ref().map(|c| c.get(k)))?;
                }
            }
            Ok(true)
        })?;
        let mut rows = Vec::with_capacity(order.len());
        for key in order {
            let (mut key_vals, states) = groups.remove(&key).ok_or_else(|| {
                SqlError::Eval("group key vanished between collection and output".into())
            })?;
            for s in states {
                key_vals.push(s.finish());
            }
            rows.push(key_vals);
        }
        let rows = exec::post_process(rows, plan, &env)?;
        return Ok(vec![fempath_storage::chunk_from_rows(&rows)]);
    }

    if !plan.windows.is_empty() {
        // Windows need the whole input: materialize the pipeline output
        // as batches, then compute each window column from batch-evaluated
        // keys and append it before the next window's keys are evaluated
        // (a later window's keys may bind against the extended schema,
        // exactly like the row path's row-extension order).
        let mut data: Vec<Chunk> = Vec::new();
        run_from_v(pool, catalog, &env, &plan.from, &mut |chunk, sel| {
            data.push(chunk.gather(sel));
            Ok(true)
        })?;
        data.retain(|c| !c.is_empty());
        for w in &plan.windows {
            let mut pacc: Vec<Column> = w.partition.iter().map(|_| Column::new_int()).collect();
            let mut oacc: Vec<Column> = w.order.iter().map(|_| Column::new_int()).collect();
            for c in &data {
                let sel: Vec<u32> = (0..c.len() as u32).collect();
                for (acc, p) in pacc.iter_mut().zip(&w.partition) {
                    let v = eval_v(p, c, &sel, &env)?;
                    append_vcol_to_column(acc, &v, sel.len());
                }
                for (acc, (o, _)) in oacc.iter_mut().zip(&w.order) {
                    let v = eval_v(o, c, &sel, &env)?;
                    append_vcol_to_column(acc, &v, sel.len());
                }
            }
            let dirs: Vec<bool> = w.order.iter().map(|(_, asc)| *asc).collect();
            let total: usize = data.iter().map(|c| c.len()).sum();
            let col = window_column(&pacc, &oacc, &dirs, w.func, total);
            let mut off = 0u32;
            for c in &mut data {
                let idx: Vec<u32> = (off..off + c.len() as u32).collect();
                c.push_column(col.gather(&idx));
                off += c.len() as u32;
            }
        }
        if plan.having.is_none() && plan.order_by.is_empty() && !plan.distinct && plan.cap.is_none()
        {
            // Batched projection (the FEM E-operator source shape).
            let mut out = Vec::with_capacity(data.len());
            for c in &data {
                let sel: Vec<u32> = (0..c.len() as u32).collect();
                let pcols: Vec<VCol> = plan
                    .items
                    .iter()
                    .map(|p| eval_v(p, c, &sel, &env))
                    .collect::<Result<_>>()?;
                out.push(vcols_to_chunk(pcols, sel.len()));
            }
            return Ok(out);
        }
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for c in &data {
            rows.extend(c.to_rows());
        }
        let rows = exec::post_process(rows, plan, &env)?;
        return Ok(vec![fempath_storage::chunk_from_rows(&rows)]);
    }

    if !plan.order_by.is_empty() {
        // Sort needs the whole input: batch-collect, then shared
        // post-stages (sort keys are evaluated there).
        let mut rows: Vec<Vec<Value>> = Vec::new();
        run_from_v(pool, catalog, &env, &plan.from, &mut |chunk, sel| {
            for &r in sel {
                rows.push(chunk.row(r as usize));
            }
            Ok(true)
        })?;
        let rows = exec::post_process(rows, plan, &env)?;
        return Ok(vec![fempath_storage::chunk_from_rows(&rows)]);
    }

    // Fully streaming: filter → project → DISTINCT → cap, with early exit.
    if plan.cap == Some(0) {
        return Ok(Vec::new());
    }
    let mut out: Vec<Chunk> = Vec::new();
    let mut count: u64 = 0;
    let mut seen: Option<HashSet<Vec<u8>>> = if plan.distinct {
        Some(HashSet::new())
    } else {
        None
    };
    run_from_v(pool, catalog, &env, &plan.from, &mut |chunk, sel| {
        let mut sel = sel.to_vec();
        if let Some(h) = &plan.having {
            apply_pred(h, chunk, &mut sel, &env)?;
            if sel.is_empty() {
                return Ok(true);
            }
        }
        let pcols: Vec<VCol> = plan
            .items
            .iter()
            .map(|p| eval_v(p, chunk, &sel, &env))
            .collect::<Result<_>>()?;
        let mut oc = vcols_to_chunk(pcols, sel.len());
        if let Some(seen) = &mut seen {
            let mut keep = Vec::with_capacity(oc.len());
            for r in 0..oc.len() {
                let row = oc.row(r);
                if seen.insert(encode_key(&row).unwrap_or_default()) {
                    keep.push(r as u32);
                }
            }
            if keep.len() < oc.len() {
                oc = oc.gather(&keep);
            }
        }
        if let Some(cap) = plan.cap {
            let remaining = cap - count;
            if oc.len() as u64 >= remaining {
                let keep: Vec<u32> = (0..remaining as u32).collect();
                oc = oc.gather(&keep);
                count += oc.len() as u64;
                if !oc.is_empty() {
                    out.push(oc);
                }
                return Ok(false);
            }
        }
        count += oc.len() as u64;
        if !oc.is_empty() {
            out.push(oc);
        }
        Ok(true)
    })?;
    Ok(out)
}

/// Executes a SELECT plan, returning the result rows (the row boundary
/// the engine API and subqueries consume).
pub(crate) fn run_select_rows(
    pool: &mut BufferPool,
    catalog: &Catalog,
    params: &[Value],
    plan: &SelectPlan,
) -> Result<Vec<Vec<Value>>> {
    let chunks = run_select_chunks(pool, catalog, params, plan)?;
    let mut rows = Vec::new();
    for c in &chunks {
        rows.extend(c.to_rows());
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

/// Executes an INSERT plan; `INSERT … SELECT` sources stream as batches
/// and land through [`Table::insert_chunk`]'s batched storage calls.
pub(crate) fn run_insert(
    pool: &mut BufferPool,
    catalog: &mut Catalog,
    params: &[Value],
    plan: &InsertPlan,
) -> Result<u64> {
    if matches!(plan.source, InsertSourcePlan::Values(_)) {
        // Literal rows: tiny, and arity/coercion corner cases live in the
        // row path already.
        return exec::run_insert(pool, catalog, params, plan);
    }
    let full_chunks: Vec<Chunk> = {
        let catalog = &*catalog;
        // Insert-level subplans only exist for VALUES expressions, and
        // those delegate to the row path above; a Query source's
        // subqueries live inside its own SelectPlan.
        debug_assert!(plan.subplans.is_empty());
        let source_chunks = match &plan.source {
            InsertSourcePlan::Query(q) => run_select_chunks(pool, catalog, params, q)?,
            InsertSourcePlan::Values(_) => unreachable!("handled above"),
        };
        let table = catalog.table(&plan.table)?;
        let n_cols = table.schema.columns.len();
        let mut full = Vec::with_capacity(source_chunks.len());
        for sc in source_chunks {
            if sc.is_empty() {
                continue;
            }
            let fc = match &plan.col_positions {
                Some(pos) => {
                    if sc.width() != pos.len() {
                        return Err(SqlError::Eval(format!(
                            "INSERT lists {} columns but supplies {} values",
                            pos.len(),
                            sc.width()
                        )));
                    }
                    let mut cols: Vec<Column> =
                        (0..n_cols).map(|_| null_column(sc.len())).collect();
                    for (i, &p) in pos.iter().enumerate() {
                        cols[p] = sc.col(i).clone();
                    }
                    Chunk::from_columns(cols, sc.len())
                }
                None => sc,
            };
            // Coerce up front: the row executor coerces *every* source
            // row before writing anything, so a type error in a late
            // chunk must surface before the first chunk is inserted.
            full.push(table.coerce_chunk(&fc)?);
        }
        full
    };
    let mut n = 0u64;
    let table = catalog.table_mut(&plan.table)?;
    for c in &full_chunks {
        n += table.insert_chunk_precoerced(pool, c)?;
    }
    Ok(n)
}

fn null_column(n: usize) -> Column {
    let mut c = Column::new_int();
    for _ in 0..n {
        c.push_null();
    }
    c
}

/// Sink of [`scan_matching`]: one call per batch with matching rows.
type MatchSink<'a> = dyn FnMut(&Chunk, &[u32], &[RowLoc]) -> Result<()> + 'a;

/// Batched read phase shared by UPDATE and DELETE: scans `table` with
/// `pred` applied as a selection vector, streaming each batch's matching
/// rows and their locators.
fn scan_matching(
    pool: &mut BufferPool,
    table: &Table,
    pred: Option<&PExpr>,
    env: &Env<'_>,
    f: &mut MatchSink<'_>,
) -> Result<()> {
    let mut cursor = table.batch_cursor(pool)?;
    let mut chunk = take_chunk();
    let mut locs: Vec<RowLoc> = Vec::new();
    let res = (|| loop {
        chunk.reset();
        locs.clear();
        let more = table.next_batch(
            pool,
            &mut cursor,
            &mut chunk,
            Some(&mut locs),
            CHUNK_CAPACITY,
        )?;
        if !chunk.is_empty() {
            let mut sel: Vec<u32> = (0..chunk.len() as u32).collect();
            if let Some(p) = pred {
                apply_pred(p, &chunk, &mut sel, env)?;
            }
            if !sel.is_empty() {
                f(&chunk, &sel, &locs)?;
            }
        }
        if !more {
            return Ok(());
        }
    })();
    put_chunk(chunk);
    res
}

/// Executes an UPDATE plan; the read phase scans in batches with
/// vectorized predicates and assignments, the write phase applies one
/// page-grouped batch per statement.
pub(crate) fn run_update(
    pool: &mut BufferPool,
    catalog: &mut Catalog,
    params: &[Value],
    plan: &UpdatePlan,
) -> Result<u64> {
    let pending: Vec<(RowLoc, Vec<Value>, Vec<Value>)> = {
        let catalog = &*catalog;
        let env = build_env_v(pool, catalog, params, &plan.subplans)?;
        let table = catalog.table(&plan.table)?;
        match &plan.kind {
            UpdateKind::Plain { pred, assigns } => {
                let mut pending = Vec::new();
                scan_matching(pool, table, pred.as_ref(), &env, &mut |chunk, sel, locs| {
                    let acols: Vec<VCol> = assigns
                        .iter()
                        .map(|a| eval_v(a, chunk, sel, &env))
                        .collect::<Result<_>>()?;
                    for (k, &r) in sel.iter().enumerate() {
                        let old = chunk.row(r as usize);
                        let mut new_row = old.clone();
                        for (c, vc) in plan.assign_cols.iter().zip(&acols) {
                            new_row[*c] = vc.get(k);
                        }
                        let new_row = table.coerce_row(new_row)?;
                        pending.push((locs[r as usize].clone(), old, new_row));
                    }
                    Ok(())
                })?;
                pending
            }
            UpdateKind::From {
                source,
                probe_cols,
                probe_keys,
                target_residual,
                mixed_residual,
                assigns,
            } => {
                // The probe side is inherently row-at-a-time (one index
                // lookup per source row); the batch win is the vectorized
                // source pipeline and the batched write phase.
                let source_rows = collect_source_rows_v(pool, catalog, &env, source)?;
                let mut pending = Vec::new();
                let mut touched: HashSet<RowLoc> = HashSet::new();
                for srow in &source_rows {
                    let mut keys = Vec::with_capacity(probe_keys.len());
                    let mut null_key = false;
                    for e in probe_keys {
                        let v = exec::eval_px(e, srow, &env)?;
                        if v.is_null() {
                            null_key = true;
                            break;
                        }
                        keys.push(v);
                    }
                    if null_key {
                        continue; // NULL never matches
                    }
                    let mut matches: Vec<(RowLoc, Vec<Value>)> = Vec::new();
                    table.lookup_eq(pool, probe_cols, &keys, |loc, row| {
                        matches.push((loc, row));
                        true
                    })?;
                    'target: for (loc, trow) in matches {
                        if !exec::passes(target_residual, &trow, &env)? {
                            continue 'target;
                        }
                        let mut combined = trow.clone();
                        combined.extend(srow.iter().cloned());
                        if !exec::passes(mixed_residual, &combined, &env)? {
                            continue 'target;
                        }
                        if !touched.insert(loc.clone()) {
                            continue;
                        }
                        let mut new_row = trow.clone();
                        for (c, a) in plan.assign_cols.iter().zip(assigns) {
                            new_row[*c] = exec::eval_px(a, &combined, &env)?;
                        }
                        let new_row = table.coerce_row(new_row)?;
                        pending.push((loc, trow, new_row));
                    }
                }
                pending
            }
        }
    };
    let n = pending.len() as u64;
    let table = catalog.table_mut(&plan.table)?;
    table.update_rows(pool, &pending)?;
    Ok(n)
}

/// Executes a DELETE plan with a batched read phase and page-grouped
/// deletes.
pub(crate) fn run_delete(
    pool: &mut BufferPool,
    catalog: &mut Catalog,
    params: &[Value],
    plan: &super::DeletePlan,
) -> Result<u64> {
    let matches: Vec<(RowLoc, Vec<Value>)> = {
        let catalog = &*catalog;
        let env = build_env_v(pool, catalog, params, &plan.subplans)?;
        let table = catalog.table(&plan.table)?;
        let mut out = Vec::new();
        scan_matching(
            pool,
            table,
            plan.pred.as_ref(),
            &env,
            &mut |chunk, sel, locs| {
                for &r in sel {
                    out.push((locs[r as usize].clone(), chunk.row(r as usize)));
                }
                Ok(())
            },
        )?;
        out
    };
    let n = matches.len() as u64;
    let table = catalog.table_mut(&plan.table)?;
    table.delete_rows(pool, &matches)?;
    Ok(n)
}

/// Executes a MERGE plan: the source (the expensive E-operator select)
/// runs vectorized, per-target probing mirrors the row path, and the
/// write phase applies batched updates and inserts.
pub(crate) fn run_merge(
    pool: &mut BufferPool,
    catalog: &mut Catalog,
    params: &[Value],
    plan: &MergePlan,
) -> Result<u64> {
    type Pending = (
        Vec<(RowLoc, Vec<Value>, Vec<Value>)>, // updates
        Vec<Vec<Value>>,                       // inserts
    );
    let (pending_updates, pending_inserts): Pending = {
        let catalog = &*catalog;
        let env = build_env_v(pool, catalog, params, &plan.subplans)?;
        let source_rows = collect_source_rows_v(pool, catalog, &env, &plan.source)?;
        let table = catalog.table(&plan.target)?;
        let n_cols = table.schema.columns.len();

        let mut updates = Vec::new();
        let mut inserts: Vec<Vec<Value>> = Vec::new();
        let mut touched: HashSet<RowLoc> = HashSet::new();

        for srow in &source_rows {
            let mut keys = Vec::with_capacity(plan.probe_keys.len());
            let mut null_key = false;
            for e in &plan.probe_keys {
                let v = exec::eval_px(e, srow, &env)?;
                if v.is_null() {
                    null_key = true;
                    break;
                }
                keys.push(v);
            }
            let mut matches: Vec<(RowLoc, Vec<Value>)> = Vec::new();
            if !null_key {
                table.lookup_eq(pool, &plan.probe_cols, &keys, |loc, row| {
                    matches.push((loc, row));
                    true
                })?;
            }
            let mut any_match = false;
            for (loc, trow) in matches {
                let mut combined = trow.clone();
                combined.extend(srow.iter().cloned());
                if !exec::passes(&plan.residual, &combined, &env)? {
                    continue;
                }
                any_match = true;
                if let Some((cond, cols, exprs)) = &plan.matched {
                    let applies = match cond {
                        Some(c) => truthy(&exec::eval_px(c, &combined, &env)?),
                        None => true,
                    };
                    if applies && touched.insert(loc.clone()) {
                        let mut new_row = trow.clone();
                        for (c, e) in cols.iter().zip(exprs) {
                            new_row[*c] = exec::eval_px(e, &combined, &env)?;
                        }
                        let new_row = table.coerce_row(new_row)?;
                        updates.push((loc, trow, new_row));
                    }
                }
            }
            if !any_match {
                if let Some((cols, exprs)) = &plan.not_matched {
                    let mut row = vec![Value::Null; n_cols];
                    for (c, e) in cols.iter().zip(exprs) {
                        row[*c] = exec::eval_px(e, srow, &env)?;
                    }
                    inserts.push(table.coerce_row(row)?);
                }
            }
        }
        (updates, inserts)
    };

    let n = (pending_updates.len() + pending_inserts.len()) as u64;
    let table = catalog.table_mut(&plan.target)?;
    table.update_rows(pool, &pending_updates)?;
    if !pending_inserts.is_empty() {
        // Rows were coerce_row'd while pending — skip the chunk-level
        // re-coercion (and its full-column clone).
        let chunk = fempath_storage::chunk_from_rows(&pending_inserts);
        table.insert_chunk_precoerced(pool, &chunk)?;
    }
    Ok(n)
}
