//! Physical plans: compile-once / execute-many statement representations.
//!
//! [`crate::engine::Database::prepare`] turns a parsed statement into a
//! [`PreparedPlan`]: tables are resolved, an access path is chosen per table
//! reference (heap scan, secondary-index point/prefix lookup, or clustered
//! range scan), join strategies are fixed with pre-bound key expressions,
//! and every predicate/projection/assignment is bound to fixed column
//! offsets (`PExpr`). Executing a plan (`plan::exec`) therefore does *no*
//! name resolution, no access-path search and no AST traversal — exactly
//! the per-statement work the paper's FEM loops repeat hundreds of times.
//!
//! Two kinds of work stay runtime-bound by design:
//!
//! * `?` parameters are `PExpr::Param` slots read from the execution's
//!   parameter list (a prepared statement is executed many times with
//!   different parameters);
//! * uncorrelated subqueries are compiled into `SubPlan`s and re-run at
//!   the start of every execution (their result depends on table *data*,
//!   which changes between executions), preserving the interpreter's
//!   evaluate-once-per-statement semantics.
//!
//! Plans are cached per SQL string and stamped with the
//! [`crate::catalog::Catalog::version`] they were built against; any DDL
//! bumps the version and stale plans are transparently rebuilt (see
//! DESIGN.md §9).

pub(crate) mod build;
pub(crate) mod exec;
pub(crate) mod vexec;

use crate::ast::{AggFunc, BinaryOp, Stmt, UnaryOp, WindowFunc};
use crate::exec::eval::Schema;
use fempath_storage::Value;
use std::sync::Arc;

/// A fully planned statement, stamped with the catalog version it was
/// compiled against.
pub struct PreparedPlan {
    /// Original statement text (used for transparent replanning).
    pub(crate) sql: String,
    /// Catalog version at plan time; mismatch ⇒ the plan is stale.
    pub(crate) catalog_version: u64,
    /// Number of `?` parameters the statement expects.
    pub(crate) n_params: usize,
    pub(crate) kind: PlanKind,
}

impl PreparedPlan {
    /// The statement text this plan was compiled from.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// The catalog version the plan was compiled against.
    pub fn catalog_version(&self) -> u64 {
        self.catalog_version
    }

    /// Number of `?` parameters the statement expects.
    pub fn param_count(&self) -> usize {
        self.n_params
    }

    /// Human-readable plan shape, one line per operator — used by the
    /// plan-shape regression tests and diagnostics.
    pub fn describe(&self) -> Vec<String> {
        let mut out = Vec::new();
        match &self.kind {
            PlanKind::Select(sp) => describe_select(sp, 0, &mut out),
            PlanKind::Update(up) => {
                match &up.kind {
                    UpdateKind::Plain { .. } => out.push(format!("UPDATE {} (scan)", up.table)),
                    UpdateKind::From {
                        source, probe_cols, ..
                    } => {
                        out.push(format!(
                            "UPDATE {} probing columns {probe_cols:?}",
                            up.table
                        ));
                        describe_source(source, 1, &mut out);
                    }
                }
                describe_subplans(&up.subplans, 1, &mut out);
            }
            PlanKind::Delete(dp) => {
                out.push(format!("DELETE {} (scan)", dp.table));
                describe_subplans(&dp.subplans, 1, &mut out);
            }
            PlanKind::Insert(ip) => {
                match &ip.source {
                    InsertSourcePlan::Values(rows) => out.push(format!(
                        "INSERT {} ({} literal row(s))",
                        ip.table,
                        rows.len()
                    )),
                    InsertSourcePlan::Query(q) => {
                        out.push(format!("INSERT {} from query", ip.table));
                        describe_select(q, 1, &mut out);
                    }
                }
                describe_subplans(&ip.subplans, 1, &mut out);
            }
            PlanKind::Merge(mp) => {
                out.push(format!(
                    "MERGE INTO {} probing columns {:?}",
                    mp.target, mp.probe_cols
                ));
                describe_source(&mp.source, 1, &mut out);
                describe_subplans(&mp.subplans, 1, &mut out);
            }
            PlanKind::Fallback(stmt) => out.push(format!(
                "FALLBACK (interpreted {})",
                match stmt {
                    Stmt::CreateTable(_) => "CREATE TABLE",
                    Stmt::CreateIndex(_) => "CREATE INDEX",
                    Stmt::CreateView { .. } => "CREATE VIEW",
                    Stmt::DropTable { .. } => "DROP TABLE",
                    Stmt::DropIndex { .. } => "DROP INDEX",
                    Stmt::DropView { .. } => "DROP VIEW",
                    Stmt::Truncate { .. } => "TRUNCATE",
                    Stmt::Explain(_) => "EXPLAIN",
                    _ => "statement",
                }
            )),
        }
        out
    }
}

/// Statement-kind dispatch of a [`PreparedPlan`].
pub(crate) enum PlanKind {
    Select(SelectPlan),
    Update(UpdatePlan),
    Delete(DeletePlan),
    Insert(InsertPlan),
    Merge(MergePlan),
    /// Statements the physical planner does not cover (DDL, TRUNCATE,
    /// EXPLAIN) — executed by the interpreter from the cached AST, with no
    /// per-execution clone.
    Fallback(Stmt),
}

/// A bound expression over fixed column offsets, with parameters and
/// subqueries left as runtime slots.
#[derive(Debug, Clone)]
pub(crate) enum PExpr {
    Const(Value),
    /// `?` parameter, bound per execution.
    Param(usize),
    Col(usize),
    Unary {
        op: UnaryOp,
        e: Box<PExpr>,
    },
    Binary {
        l: Box<PExpr>,
        op: BinaryOp,
        r: Box<PExpr>,
    },
    IsNull {
        e: Box<PExpr>,
        negated: bool,
    },
    /// Scalar subquery slot (re-evaluated at the start of each execution).
    Sub(usize),
    /// `expr [NOT] IN (subquery slot)`.
    InSub {
        e: Box<PExpr>,
        sub: usize,
        negated: bool,
    },
    /// `[NOT] EXISTS (subquery slot)`.
    ExistsSub {
        sub: usize,
        negated: bool,
    },
}

/// Largest row offset a bound plan expression reads, or `None` when it is
/// row-independent (the plan-side analogue of
/// [`crate::exec::eval::max_bound_col`]).
pub(crate) fn max_pexpr_col(e: &PExpr) -> Option<usize> {
    match e {
        PExpr::Const(_) | PExpr::Param(_) | PExpr::Sub(_) | PExpr::ExistsSub { .. } => None,
        PExpr::Col(i) => Some(*i),
        PExpr::Unary { e, .. } | PExpr::IsNull { e, .. } | PExpr::InSub { e, .. } => {
            max_pexpr_col(e)
        }
        PExpr::Binary { l, r, .. } => match (max_pexpr_col(l), max_pexpr_col(r)) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        },
    }
}

/// How a subquery's result is consumed.
pub(crate) enum SubPlan {
    /// Scalar subquery: ≤ 1 row, exactly 1 column.
    Scalar(SelectPlan),
    /// `IN (…)` list: 1 column, sorted + deduplicated.
    List(SelectPlan),
    /// `EXISTS (…)`: row-presence flag.
    Exists(SelectPlan),
}

/// A compiled SELECT: a streaming FROM/WHERE pipeline plus the
/// materializing post-stages the statement actually needs.
pub(crate) struct SelectPlan {
    pub(crate) from: FromPlan,
    /// GROUP BY / scalar aggregation (streams into accumulators).
    pub(crate) agg: Option<AggPlan>,
    /// Window columns appended to the pipeline output (forces
    /// materialization, mutually exclusive with `agg`).
    pub(crate) windows: Vec<WindowPlan>,
    /// Post-aggregation (or plain) row filter.
    pub(crate) having: Option<PExpr>,
    /// Sort keys (forces materialization).
    pub(crate) order_by: Vec<(PExpr, bool)>,
    /// Projection over the post-stage schema.
    pub(crate) items: Vec<PExpr>,
    /// Output column names.
    pub(crate) out_names: Vec<String>,
    pub(crate) distinct: bool,
    /// `TOP` / `LIMIT` row cap (min of both when given).
    pub(crate) cap: Option<u64>,
    /// Uncorrelated subqueries, re-run once per execution.
    pub(crate) subplans: Vec<SubPlan>,
}

impl SelectPlan {
    /// Output schema under `binding` (for derived tables and views).
    pub(crate) fn out_schema(&self, binding: &str) -> Schema {
        let b = Some(binding.to_ascii_lowercase());
        Schema {
            cols: self
                .out_names
                .iter()
                .map(|n| crate::exec::eval::SchemaCol {
                    binding: b.clone(),
                    name: n.clone(),
                })
                .collect(),
        }
    }
}

/// The streaming FROM/WHERE pipeline: one source, zero or more join
/// stages, and a final residual filter.
pub(crate) struct FromPlan {
    pub(crate) source: SourcePlan,
    pub(crate) joins: Vec<JoinPlan>,
    /// Conjuncts not consumed by any access path or join stage.
    pub(crate) residual: Vec<PExpr>,
}

/// A row source with its pushed-down single-relation filters.
pub(crate) struct SourcePlan {
    pub(crate) input: InputPlan,
    pub(crate) filter: Vec<PExpr>,
}

/// Where base rows come from.
pub(crate) enum InputPlan {
    /// `SELECT` without FROM: a single empty row.
    Nothing,
    /// Full table scan (heap order or clustered-key order).
    Scan { table: String, binding: String },
    /// Index point/prefix lookup with pre-bound, row-independent keys.
    Lookup {
        table: String,
        binding: String,
        cols: Vec<usize>,
        keys: Vec<PExpr>,
    },
    /// Materialized subquery (derived table or view).
    Derived(Box<SelectPlan>),
}

/// The probe (right) side of a hash or nested-loop join stage.
pub(crate) enum RightPlan {
    /// Full scan of a base table, materialized as the build side.
    Table { name: String },
    /// Materialized subquery.
    Derived(Box<SelectPlan>),
}

/// One join stage of the pipeline. `left_width` is the row width flowing
/// in; the stage appends the right side's columns and truncates back
/// after each probe (the reused row buffer).
pub(crate) enum JoinPlan {
    /// Index nested loop: per input row, probe the inner table's index
    /// with pre-bound key expressions.
    IndexLoop {
        table: String,
        binding: String,
        path_cols: Vec<usize>,
        keys: Vec<PExpr>,
        residual: Vec<PExpr>,
        left_width: usize,
    },
    /// Hash join: the right side is materialized and hashed once per
    /// execution; input rows probe it.
    Hash {
        right: RightPlan,
        left_keys: Vec<PExpr>,
        right_cols: Vec<usize>,
        residual: Vec<PExpr>,
        left_width: usize,
    },
    /// Nested-loop cross product with a residual filter (last resort).
    Loop {
        right: RightPlan,
        residual: Vec<PExpr>,
        left_width: usize,
    },
}

/// Grouping/aggregation stage: rows stream into per-group accumulators;
/// the output row is `[group keys…, aggregate results…]`.
pub(crate) struct AggPlan {
    pub(crate) group: Vec<PExpr>,
    pub(crate) aggs: Vec<(AggFunc, Option<PExpr>)>,
}

/// One window function over the materialized pipeline output.
pub(crate) struct WindowPlan {
    pub(crate) func: WindowFunc,
    pub(crate) partition: Vec<PExpr>,
    pub(crate) order: Vec<(PExpr, bool)>,
}

/// A compiled UPDATE.
pub(crate) struct UpdatePlan {
    pub(crate) table: String,
    pub(crate) assign_cols: Vec<usize>,
    pub(crate) kind: UpdateKind,
    pub(crate) subplans: Vec<SubPlan>,
}

/// Plain scan-and-update vs `UPDATE … FROM` probe.
pub(crate) enum UpdateKind {
    Plain {
        pred: Option<PExpr>,
        assigns: Vec<PExpr>,
    },
    From {
        source: SourcePlan,
        probe_cols: Vec<usize>,
        /// Probe key expressions over the source row.
        probe_keys: Vec<PExpr>,
        /// Residuals reading only the target row prefix.
        target_residual: Vec<PExpr>,
        /// Residuals over the combined target+source row.
        mixed_residual: Vec<PExpr>,
        /// Assignments over the combined row.
        assigns: Vec<PExpr>,
    },
}

/// A compiled DELETE.
pub(crate) struct DeletePlan {
    pub(crate) table: String,
    pub(crate) pred: Option<PExpr>,
    pub(crate) subplans: Vec<SubPlan>,
}

/// A compiled INSERT.
pub(crate) struct InsertPlan {
    pub(crate) table: String,
    pub(crate) col_positions: Option<Vec<usize>>,
    pub(crate) source: InsertSourcePlan,
    pub(crate) subplans: Vec<SubPlan>,
}

/// Literal rows or a compiled source query.
pub(crate) enum InsertSourcePlan {
    Values(Vec<Vec<PExpr>>),
    Query(Box<SelectPlan>),
}

/// A compiled MERGE.
pub(crate) struct MergePlan {
    pub(crate) target: String,
    pub(crate) source: SourcePlan,
    pub(crate) probe_cols: Vec<usize>,
    pub(crate) probe_keys: Vec<PExpr>,
    /// ON-clause residual over the combined target+source row.
    pub(crate) residual: Vec<PExpr>,
    /// WHEN MATCHED: (condition, assigned columns, value expressions) over
    /// the combined row.
    pub(crate) matched: Option<(Option<PExpr>, Vec<usize>, Vec<PExpr>)>,
    /// WHEN NOT MATCHED: (columns, value expressions) over the source row.
    pub(crate) not_matched: Option<(Vec<usize>, Vec<PExpr>)>,
    pub(crate) subplans: Vec<SubPlan>,
}

/// A shared handle to a prepared plan (cheap to clone; the engine keeps
/// the canonical copy in its plan cache). `Arc` — plans are immutable
/// after compilation and `Send + Sync`, so handles and cache entries can
/// be shared across worker sessions (DESIGN.md §10).
pub type PlanHandle = Arc<PreparedPlan>;

fn indent(depth: usize) -> String {
    "  ".repeat(depth)
}

fn describe_source(sp: &SourcePlan, depth: usize, out: &mut Vec<String>) {
    let pad = indent(depth);
    match &sp.input {
        InputPlan::Nothing => out.push(format!("{pad}CONST ROW")),
        InputPlan::Scan { table, binding } => out.push(format!(
            "{pad}SCAN {table} ({binding}) full scan, {} pushed filter(s)",
            sp.filter.len()
        )),
        InputPlan::Lookup {
            table,
            binding,
            cols,
            ..
        } => out.push(format!(
            "{pad}SCAN {table} ({binding}) via index lookup on columns {cols:?}"
        )),
        InputPlan::Derived(sub) => {
            out.push(format!(
                "{pad}DERIVED (materialized, {} filter(s))",
                sp.filter.len()
            ));
            describe_select(sub, depth + 1, out);
        }
    }
}

fn describe_select(sp: &SelectPlan, depth: usize, out: &mut Vec<String>) {
    let pad = indent(depth);
    describe_source(&sp.from.source, depth, out);
    for j in &sp.from.joins {
        match j {
            JoinPlan::IndexLoop {
                table,
                binding,
                path_cols,
                ..
            } => out.push(format!(
                "{pad}INDEX NESTED LOOP JOIN {table} ({binding}) probing index columns {path_cols:?}"
            )),
            JoinPlan::Hash {
                right, left_keys, ..
            } => {
                out.push(format!(
                    "{pad}HASH JOIN on {} column(s)",
                    left_keys.len()
                ));
                if let RightPlan::Derived(sub) = right {
                    describe_select(sub, depth + 1, out);
                }
            }
            JoinPlan::Loop { right, .. } => {
                out.push(format!("{pad}NESTED LOOP JOIN"));
                if let RightPlan::Derived(sub) = right {
                    describe_select(sub, depth + 1, out);
                }
            }
        }
    }
    if let Some(agg) = &sp.agg {
        out.push(format!(
            "{pad}AGGREGATE ({} group key(s), {} aggregate(s))",
            agg.group.len(),
            agg.aggs.len()
        ));
    }
    if !sp.windows.is_empty() {
        out.push(format!("{pad}WINDOW ({} function(s))", sp.windows.len()));
    }
    if !sp.order_by.is_empty() {
        out.push(format!("{pad}SORT ({} key(s))", sp.order_by.len()));
    }
    if sp.distinct {
        out.push(format!("{pad}DISTINCT"));
    }
    if let Some(cap) = sp.cap {
        out.push(format!("{pad}LIMIT {cap}"));
    }
    describe_subplans(&sp.subplans, depth + 1, out);
}

fn describe_subplans(subs: &[SubPlan], depth: usize, out: &mut Vec<String>) {
    for (i, s) in subs.iter().enumerate() {
        let (kind, plan) = match s {
            SubPlan::Scalar(p) => ("scalar", p),
            SubPlan::List(p) => ("IN-list", p),
            SubPlan::Exists(p) => ("EXISTS", p),
        };
        out.push(format!("{}SUBQUERY #{i} ({kind})", indent(depth)));
        describe_select(plan, depth + 1, out);
    }
}
