//! Correctness of every relational shortest-path algorithm against the
//! in-memory Dijkstra oracle, across graph families, SQL styles, dialects
//! and index strategies.

use fempath_core::{
    build_segtable_with, prim_mst, BbfsFinder, BdjFinder, BsdjFinder, BsegFinder, DjFinder,
    GraphDb, GraphDbOptions, PathOutcome, ShortestPathFinder, SqlStyle,
};
use fempath_graph::{generate, Graph, IndexKind};
use fempath_inmem::dijkstra;
use fempath_sql::Dialect;

/// The Figure 1 graph of the paper.
fn figure1() -> Graph {
    Graph::from_undirected_edges(
        11,
        vec![
            (0, 1, 2),
            (0, 2, 1),
            (0, 3, 6),
            (1, 4, 2),
            (2, 3, 1),
            (2, 4, 3),
            (3, 9, 7),
            (4, 6, 3),
            (4, 5, 7),
            (4, 7, 8),
            (5, 6, 4),
            (5, 8, 9),
            (6, 7, 4),
            (7, 10, 3),
            (8, 9, 2),
            (8, 10, 5),
            (9, 10, 8),
        ],
    )
}

/// Checks an outcome against the oracle for one query.
fn check(g: &Graph, out: &PathOutcome, s: i64, t: i64, algo: &str) {
    let oracle = dijkstra::shortest_path(g, s as u32, t as u32);
    match (&out.path, &oracle) {
        (Some(p), Some(o)) => {
            assert_eq!(
                p.length as u64, o.distance,
                "{algo}: wrong distance for {s}->{t}"
            );
            assert_eq!(p.nodes.first(), Some(&s), "{algo}: path must start at s");
            assert_eq!(p.nodes.last(), Some(&t), "{algo}: path must end at t");
            // The node sequence must be a real path of the right length.
            let mut total = 0u64;
            for w in p.nodes.windows(2) {
                let arc = g
                    .out_arcs(w[0] as u32)
                    .iter()
                    .filter(|a| a.to == w[1] as u32)
                    .map(|a| a.weight)
                    .min()
                    .unwrap_or_else(|| panic!("{algo}: edge {}->{} not in graph", w[0], w[1]));
                total += arc as u64;
            }
            assert_eq!(
                total, o.distance,
                "{algo}: path weights disagree for {s}->{t}"
            );
        }
        (None, None) => {}
        (got, want) => panic!(
            "{algo}: reachability mismatch for {s}->{t}: got {:?}, oracle {:?}",
            got.is_some(),
            want.is_some()
        ),
    }
}

fn all_pairs_check(
    g: &Graph,
    finder: &dyn ShortestPathFinder,
    gdb: &mut GraphDb,
    pairs: &[(i64, i64)],
) {
    for &(s, t) in pairs {
        let out = finder.find_path(gdb, s, t).unwrap();
        check(g, &out, s, t, finder.name());
    }
}

fn sample_pairs(n: usize, count: usize) -> Vec<(i64, i64)> {
    (0..count)
        .map(|i| {
            let s = (i * 97 + 13) % n;
            let t = (i * 131 + n / 2) % n;
            (s as i64, t as i64)
        })
        .collect()
}

#[test]
fn dj_matches_oracle_on_figure1() {
    let g = figure1();
    let mut gdb = GraphDb::in_memory(&g).unwrap();
    let finder = DjFinder::default();
    for s in 0..11i64 {
        for t in 0..11i64 {
            let out = finder.find_path(&mut gdb, s, t).unwrap();
            check(&g, &out, s, t, "DJ");
        }
    }
}

#[test]
fn all_bidirectional_finders_match_oracle_on_figure1() {
    let g = figure1();
    let mut gdb = GraphDb::in_memory(&g).unwrap();
    gdb.build_segtable(6).unwrap(); // the paper's Figure 4 threshold
    let finders: Vec<Box<dyn ShortestPathFinder>> = vec![
        Box::new(BdjFinder::default()),
        Box::new(BsdjFinder::default()),
        Box::new(BbfsFinder::default()),
        Box::new(BsegFinder::default()),
    ];
    for f in &finders {
        for s in 0..11i64 {
            for t in 0..11i64 {
                let out = f.find_path(&mut gdb, s, t).unwrap();
                check(&g, &out, s, t, f.name());
            }
        }
    }
}

#[test]
fn finders_match_oracle_on_power_law_graph() {
    let g = generate::power_law(300, 3, 1..=100, 11);
    let mut gdb = GraphDb::in_memory(&g).unwrap();
    gdb.build_segtable(30).unwrap();
    let pairs = sample_pairs(300, 12);
    let finders: Vec<Box<dyn ShortestPathFinder>> = vec![
        Box::new(BdjFinder::default()),
        Box::new(BsdjFinder::default()),
        Box::new(BbfsFinder::default()),
        Box::new(BsegFinder::default()),
    ];
    for f in &finders {
        all_pairs_check(&g, f.as_ref(), &mut gdb, &pairs);
    }
}

#[test]
fn finders_match_oracle_on_random_graph_with_disconnections() {
    // Sparse random graph: some pairs are unreachable.
    let g = generate::random_graph(200, 1, 1..=100, 5);
    let mut gdb = GraphDb::in_memory(&g).unwrap();
    gdb.build_segtable(20).unwrap();
    let pairs = sample_pairs(200, 15);
    let finders: Vec<Box<dyn ShortestPathFinder>> = vec![
        Box::new(BsdjFinder::default()),
        Box::new(BbfsFinder::default()),
        Box::new(BsegFinder::default()),
    ];
    for f in &finders {
        all_pairs_check(&g, f.as_ref(), &mut gdb, &pairs);
    }
}

#[test]
fn finders_match_oracle_on_grid() {
    let g = generate::grid(12, 12, 1..=100, 3);
    let mut gdb = GraphDb::in_memory(&g).unwrap();
    gdb.build_segtable(40).unwrap();
    let pairs = sample_pairs(144, 10);
    let finders: Vec<Box<dyn ShortestPathFinder>> = vec![
        Box::new(BsdjFinder::default()),
        Box::new(BsegFinder::default()),
    ];
    for f in &finders {
        all_pairs_check(&g, f.as_ref(), &mut gdb, &pairs);
    }
}

#[test]
fn traditional_sql_style_is_equally_correct() {
    let g = generate::power_law(200, 3, 1..=100, 21);
    let mut gdb = GraphDb::in_memory(&g).unwrap();
    build_segtable_with(&mut gdb, 25, SqlStyle::Traditional).unwrap();
    let pairs = sample_pairs(200, 8);
    let finders: Vec<Box<dyn ShortestPathFinder>> = vec![
        Box::new(DjFinder {
            style: SqlStyle::Traditional,
            ..Default::default()
        }),
        Box::new(BsdjFinder {
            style: SqlStyle::Traditional,
            ..Default::default()
        }),
        Box::new(BsegFinder {
            style: SqlStyle::Traditional,
            ..Default::default()
        }),
    ];
    for f in &finders {
        // DJ is slow: fewer pairs.
        let ps = if f.name() == "DJ" {
            &pairs[..3]
        } else {
            &pairs[..]
        };
        all_pairs_check(&g, f.as_ref(), &mut gdb, ps);
    }
}

#[test]
fn postgres_dialect_without_merge_is_equally_correct() {
    let g = generate::power_law(200, 3, 1..=100, 31);
    let mut gdb = GraphDb::new(
        &g,
        &GraphDbOptions {
            dialect: Dialect::POSTGRES,
            ..Default::default()
        },
    )
    .unwrap();
    gdb.build_segtable(25).unwrap();
    let pairs = sample_pairs(200, 8);
    let finders: Vec<Box<dyn ShortestPathFinder>> = vec![
        Box::new(BsdjFinder::default()),
        Box::new(BbfsFinder::default()),
        Box::new(BsegFinder::default()),
    ];
    for f in &finders {
        all_pairs_check(&g, f.as_ref(), &mut gdb, &pairs);
    }
}

#[test]
fn split_operator_mode_is_equally_correct() {
    let g = generate::power_law(150, 3, 1..=100, 41);
    let mut gdb = GraphDb::in_memory(&g).unwrap();
    let finder = BsdjFinder {
        split_operators: true,
        ..Default::default()
    };
    let pairs = sample_pairs(150, 6);
    all_pairs_check(&g, &finder, &mut gdb, &pairs);
    // Split mode actually fills the per-operator buckets.
    let out = finder.find_path(&mut gdb, 0, 100).unwrap();
    use fempath_core::FemOperator;
    assert!(out.stats.operator(FemOperator::E) > std::time::Duration::ZERO);
    assert!(out.stats.operator(FemOperator::M) > std::time::Duration::ZERO);
    assert!(out.stats.operator(FemOperator::F) > std::time::Duration::ZERO);
}

#[test]
fn pruning_off_is_equally_correct() {
    let g = generate::power_law(150, 3, 1..=100, 51);
    let mut gdb = GraphDb::in_memory(&g).unwrap();
    let pairs = sample_pairs(150, 6);
    let finder = BsdjFinder {
        prune: false,
        ..Default::default()
    };
    all_pairs_check(&g, &finder, &mut gdb, &pairs);
}

#[test]
fn index_strategies_are_equally_correct() {
    let g = generate::power_law(120, 3, 1..=100, 61);
    for edges_index in [
        IndexKind::NoIndex,
        IndexKind::Secondary,
        IndexKind::Clustered,
    ] {
        for visited_index in [
            IndexKind::NoIndex,
            IndexKind::Secondary,
            IndexKind::Clustered,
        ] {
            let mut gdb = GraphDb::new(
                &g,
                &GraphDbOptions {
                    edges_index,
                    visited_index,
                    ..Default::default()
                },
            )
            .unwrap();
            let pairs = sample_pairs(120, 3);
            all_pairs_check(&g, &BsdjFinder::default(), &mut gdb, &pairs);
        }
    }
}

#[test]
fn disk_resident_database_is_equally_correct() {
    let g = generate::power_law(200, 3, 1..=100, 71);
    // Tiny buffer: everything spills.
    let mut gdb = GraphDb::on_temp_file(&g, 16).unwrap();
    let pairs = sample_pairs(200, 5);
    all_pairs_check(&g, &BsdjFinder::default(), &mut gdb, &pairs);
    assert!(
        gdb.db.io_stats().disk_reads > 0,
        "a 16-page pool over this graph must touch disk"
    );
}

#[test]
fn bsdj_uses_fewer_expansions_than_bdj() {
    // Table 2's headline: set-at-a-time needs far fewer iterations.
    let g = generate::power_law(2000, 3, 1..=100, 81);
    let mut gdb = GraphDb::in_memory(&g).unwrap();
    let a = BdjFinder::default().find_path(&mut gdb, 0, 1500).unwrap();
    let b = BsdjFinder::default().find_path(&mut gdb, 0, 1500).unwrap();
    assert!(a.path.is_some() && b.path.is_some());
    assert!(
        b.stats.expansions < a.stats.expansions,
        "BSDJ ({}) must beat BDJ ({}) on expansions",
        b.stats.expansions,
        a.stats.expansions
    );
}

#[test]
fn bbfs_uses_fewest_expansions_but_most_visited() {
    // Table 3's trade-off.
    let g = generate::random_graph(2000, 3, 1..=100, 91);
    let mut gdb = GraphDb::in_memory(&g).unwrap();
    let bsdj = BsdjFinder::default().find_path(&mut gdb, 0, 1000).unwrap();
    let bbfs = BbfsFinder::default().find_path(&mut gdb, 0, 1000).unwrap();
    assert!(bsdj.path.is_some() && bbfs.path.is_some());
    assert!(
        bbfs.stats.expansions < bsdj.stats.expansions,
        "BBFS expansions {} must undercut BSDJ {}",
        bbfs.stats.expansions,
        bsdj.stats.expansions
    );
    assert!(
        bbfs.stats.visited_nodes >= bsdj.stats.visited_nodes,
        "BBFS visits at least as many nodes ({} vs {})",
        bbfs.stats.visited_nodes,
        bsdj.stats.visited_nodes
    );
}

#[test]
fn bseg_reduces_expansions_versus_bsdj() {
    // §4.2: selective expansion over SegTable cuts iteration counts.
    let g = generate::power_law(1500, 3, 1..=100, 101);
    let mut gdb = GraphDb::in_memory(&g).unwrap();
    gdb.build_segtable(50).unwrap();
    let mut exps_bsdj = 0u64;
    let mut exps_bseg = 0u64;
    for (s, t) in sample_pairs(1500, 5) {
        let a = BsdjFinder::default().find_path(&mut gdb, s, t).unwrap();
        let b = BsegFinder::default().find_path(&mut gdb, s, t).unwrap();
        check(&g, &b, s, t, "BSEG");
        exps_bsdj += a.stats.expansions;
        exps_bseg += b.stats.expansions;
    }
    assert!(
        exps_bseg < exps_bsdj,
        "BSEG total expansions {exps_bseg} must undercut BSDJ {exps_bsdj}"
    );
}

#[test]
fn relational_prim_matches_in_memory_prim() {
    let g = generate::power_law(200, 2, 1..=50, 111);
    let mut gdb = GraphDb::in_memory(&g).unwrap();
    let rel = prim_mst(&mut gdb, 0).unwrap();
    let (edges, total) = fempath_inmem::mst::prim(&g);
    assert_eq!(rel.edges.len(), edges.len());
    assert_eq!(rel.total_weight as u64, total);
}

#[test]
fn query_stats_are_populated() {
    let g = generate::power_law(300, 3, 1..=100, 121);
    let mut gdb = GraphDb::in_memory(&g).unwrap();
    let out = BsdjFinder::default().find_path(&mut gdb, 0, 200).unwrap();
    assert!(out.stats.expansions > 0);
    assert!(out.stats.sql_statements > out.stats.expansions);
    assert!(out.stats.visited_nodes > 0);
    assert!(out.stats.total_time > std::time::Duration::ZERO);
    use fempath_core::Phase;
    assert!(out.stats.phase(Phase::PathExpansion) > std::time::Duration::ZERO);
    assert!(out.stats.phase(Phase::StatsCollection) > std::time::Duration::ZERO);
}
