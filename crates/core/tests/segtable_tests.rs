//! SegTable construction correctness (§4.2, Definition 4) against the
//! in-memory bounded-Dijkstra oracle.

use fempath_core::{build_segtable_with, segtable::read_segments, GraphDb, SqlStyle};
use fempath_graph::{generate, Graph};
use fempath_inmem::dijkstra;
use std::collections::HashMap;

fn figure1() -> Graph {
    Graph::from_undirected_edges(
        11,
        vec![
            (0, 1, 2),
            (0, 2, 1),
            (0, 3, 6),
            (1, 4, 2),
            (2, 3, 1),
            (2, 4, 3),
            (3, 9, 7),
            (4, 6, 3),
            (4, 5, 7),
            (4, 7, 8),
            (5, 6, 4),
            (5, 8, 9),
            (6, 7, 4),
            (7, 10, 3),
            (8, 9, 2),
            (8, 10, 5),
            (9, 10, 8),
        ],
    )
}

/// Validates a built SegTable against Definition 4:
/// * every pair with δ(u,v) <= lthd appears with cost = δ(u,v);
/// * every original edge (u,v) with no within-threshold pair appears with
///   its edge weight;
/// * no other tuples, except original edges dominated by recorded
///   segments (cost >= δ).
fn validate_segtable(g: &Graph, gdb: &mut GraphDb, lthd: i64) {
    let segs = read_segments(gdb).unwrap();
    let mut best: HashMap<(i64, i64), i64> = HashMap::new();
    for (f, t, c) in &segs {
        let e = best.entry((*f, *t)).or_insert(i64::MAX);
        *e = (*e).min(*c);
    }
    for u in 0..g.num_nodes() as u32 {
        let dist = dijkstra::distances_from(g, u);
        // Case 1: all pairs within the threshold, exact distance.
        for v in 0..g.num_nodes() as u32 {
            if u == v {
                continue;
            }
            let d = dist[v as usize];
            if d != u64::MAX && d as i64 <= lthd {
                assert_eq!(
                    best.get(&(u as i64, v as i64)).copied(),
                    Some(d as i64),
                    "segment ({u},{v}) should carry δ = {d}"
                );
            }
        }
        // Case 2: residual original edges are present.
        for a in g.out_arcs(u) {
            let d = dist[a.to as usize];
            let within = d != u64::MAX && d as i64 <= lthd;
            if !within {
                let got = best.get(&(u as i64, a.to as i64)).copied();
                assert!(
                    got.is_some() && got.unwrap() <= a.weight as i64,
                    "residual edge ({u},{}) missing from SegTable",
                    a.to
                );
            }
        }
    }
    // Nothing bogus: every stored segment cost is >= the true distance.
    for ((f, t), c) in &best {
        let d = dijkstra::distances_from(g, *f as u32)[*t as usize];
        assert!(
            d != u64::MAX,
            "segment ({f},{t}) connects unreachable nodes"
        );
        assert!(
            *c >= d as i64,
            "segment ({f},{t}) cost {c} below true distance {d}"
        );
    }
}

#[test]
fn figure1_segtable_lthd6_matches_paper_examples() {
    let g = figure1();
    let mut gdb = GraphDb::in_memory(&g).unwrap();
    let stats = gdb.build_segtable(6).unwrap();
    assert!(stats.segments > 0);
    assert!(stats.iterations > 0);
    let segs = read_segments(&mut gdb).unwrap();
    let lookup = |f: i64, t: i64| {
        segs.iter()
            .filter(|(a, b, _)| *a == f && *b == t)
            .map(|(_, _, c)| *c)
            .min()
    };
    // Figure 4(b): segment s->e has cost 4 (s->b->e or s->c->e).
    assert_eq!(lookup(0, 4), Some(4));
    // Figure 4(a): refined edge s->d costs 2 (s->c->d), not the original 6.
    assert_eq!(lookup(0, 3), Some(2));
    // e->h (4->7): δ = 7 (e-g-h) > lthd. The original edge weight 8 must
    // appear as a residual edge (Definition 4, case 2).
    assert_eq!(lookup(4, 7), Some(8));
    validate_segtable(&g, &mut gdb, 6);
}

#[test]
fn segtable_on_power_law_graph() {
    let g = generate::power_law(150, 3, 1..=20, 17);
    let mut gdb = GraphDb::in_memory(&g).unwrap();
    gdb.build_segtable(15).unwrap();
    validate_segtable(&g, &mut gdb, 15);
}

#[test]
fn segtable_traditional_style_matches_new_style() {
    let g = generate::power_law(100, 3, 1..=20, 27);
    let mut a = GraphDb::in_memory(&g).unwrap();
    let mut b = GraphDb::in_memory(&g).unwrap();
    let sa = build_segtable_with(&mut a, 12, SqlStyle::New).unwrap();
    let sb = build_segtable_with(&mut b, 12, SqlStyle::Traditional).unwrap();
    let mut segs_a = read_segments(&mut a).unwrap();
    let mut segs_b = read_segments(&mut b).unwrap();
    // Costs must agree pairwise (pid may differ on ties).
    let dedup = |v: &mut Vec<(i64, i64, i64)>| {
        v.sort_unstable();
        v.dedup();
    };
    dedup(&mut segs_a);
    dedup(&mut segs_b);
    let costs = |v: &[(i64, i64, i64)]| {
        let mut m: HashMap<(i64, i64), i64> = HashMap::new();
        for (f, t, c) in v {
            let e = m.entry((*f, *t)).or_insert(i64::MAX);
            *e = (*e).min(*c);
        }
        m
    };
    assert_eq!(costs(&segs_a), costs(&segs_b));
    assert_eq!(sa.segments, sb.segments);
}

#[test]
fn larger_lthd_yields_more_segments() {
    // Fig 9(a): index size grows with the threshold.
    let g = generate::power_law(120, 3, 1..=20, 37);
    let mut sizes = Vec::new();
    for lthd in [5i64, 15, 30] {
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        let stats = gdb.build_segtable(lthd).unwrap();
        sizes.push(stats.segments);
    }
    assert!(
        sizes[0] <= sizes[1] && sizes[1] <= sizes[2],
        "segments must grow with lthd: {sizes:?}"
    );
    assert!(sizes[2] > sizes[0], "a 6x threshold must add segments");
}

#[test]
fn segtable_iteration_bound_theorem() {
    // Construction iterations stay near lthd / wmin (§4.2).
    let g = generate::power_law(100, 3, 2..=20, 47);
    let mut gdb = GraphDb::in_memory(&g).unwrap();
    let lthd = 16i64;
    let stats = gdb.build_segtable(lthd).unwrap();
    let bound = 2 * (lthd / gdb.min_weight() as i64) as u64 + 4;
    assert!(
        stats.iterations <= bound,
        "iterations {} above ~lthd/wmin bound {bound}",
        stats.iterations
    );
}

#[test]
fn rebuild_replaces_previous_segtable() {
    let g = generate::grid(6, 6, 1..=10, 57);
    let mut gdb = GraphDb::in_memory(&g).unwrap();
    let a = gdb.build_segtable(5).unwrap();
    let b = gdb.build_segtable(20).unwrap();
    assert!(b.segments > a.segments);
    assert_eq!(gdb.segtable().unwrap().lthd, 20);
    validate_segtable(&g, &mut gdb, 20);
}

#[test]
fn tinsegs_mirrors_toutsegs() {
    let g = generate::grid(5, 5, 1..=10, 67);
    let mut gdb = GraphDb::in_memory(&g).unwrap();
    gdb.build_segtable(12).unwrap();
    let out_n = gdb.db.table_len("TOutSegs").unwrap();
    let in_n = gdb.db.table_len("TInSegs").unwrap();
    assert_eq!(out_n, in_n);
}
