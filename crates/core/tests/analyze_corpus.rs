//! femcheck corpus gate (DESIGN.md §15): every statement the finders, the
//! batch driver, the landmark index, the SegTable build, and the resets
//! can issue must analyze to **zero diagnostics** under both dialects —
//! and the gate must actually have teeth, so injected regressions
//! (dropped hot-path index, unguarded `NOT IN`, type mismatch) are pinned
//! to their diagnostic codes.

use fempath_core::{build_segtable, GraphDb};
use fempath_graph::generate;
use fempath_sql::Rule;

fn small_gdb() -> GraphDb {
    let g = generate::power_law(60, 3, 1..=50, 7);
    GraphDb::in_memory(&g).unwrap()
}

/// The full corpus — optional structures built — is clean.
#[test]
fn full_corpus_is_clean() {
    let mut gdb = small_gdb();
    build_segtable(&mut gdb, 120).unwrap();
    gdb.build_landmarks(2).unwrap();
    let reports = gdb.analyze_all_statements().unwrap();
    // Both dialects × (single finders over TEdges and the SegTable, batch
    // finders, free statements, landmarks, seg build) — a floor guards
    // against the walker silently skipping whole corpora.
    assert!(reports.len() > 300, "only {} reports", reports.len());
    let dirty: Vec<&(String, fempath_sql::Report)> =
        reports.iter().filter(|(_, r)| !r.is_clean()).collect();
    assert!(
        dirty.is_empty(),
        "{} corpus statements have diagnostics:\n{}",
        dirty.len(),
        dirty
            .iter()
            .map(|(n, r)| format!("--- {n}\n{}", r.render()))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// A bare database (no SegTable, no landmarks) still walks clean — the
/// walker gates the optional corpora instead of erroring or flagging.
#[test]
fn bare_corpus_is_clean() {
    let mut gdb = small_gdb();
    let reports = gdb.analyze_all_statements().unwrap();
    assert!(reports.len() > 150, "only {} reports", reports.len());
    for (name, r) in &reports {
        assert!(r.is_clean(), "{name}:\n{}", r.render());
    }
    // Optional corpora really were skipped.
    assert!(
        !reports
            .iter()
            .any(|(n, _)| n.contains("lm/") || n.contains("seg/")),
        "optional corpora leaked into the bare walk"
    );
}

/// The walker leaves no residue: the SegTable build's working tables are
/// resurrected for the walk and dropped again.
#[test]
fn walker_restores_table_state() {
    let mut gdb = small_gdb();
    build_segtable(&mut gdb, 120).unwrap();
    assert!(!gdb.db.has_table("TSegV"));
    gdb.analyze_all_statements().unwrap();
    assert!(!gdb.db.has_table("TSegV"), "walker leaked TSegV");
    assert!(!gdb.db.has_table("TSegExp"), "walker leaked TSegExp");
}

/// Injected regression: the hot-path probe loses its index — the working
/// table is still indexed (on another column), so the probe becomes a
/// full scan of an indexed table and FC201 must fire.
#[test]
fn dropped_index_is_caught_as_fc201() {
    let mut gdb = small_gdb();
    gdb.reset_visited().unwrap();
    let dist_of = "SELECT d2s FROM TVisited WHERE nid = ?";
    assert!(gdb.db.analyze_hot_path(dist_of).unwrap().is_clean());
    gdb.db.execute("DROP INDEX idx_tvisited_nid").unwrap();
    gdb.db
        .execute("CREATE INDEX idx_tvisited_flags ON TVisited(f)")
        .unwrap();
    let report = gdb.db.analyze_hot_path(dist_of).unwrap();
    assert!(
        report.has_rule(Rule::HotPathFullScan),
        "expected FC201:\n{}",
        report.render()
    );
    // The cold analysis of the same statement stays silent: FC201 is a
    // hot-path-only lint.
    assert!(gdb.db.analyze(dist_of).unwrap().is_clean());
}

/// Injected regression: an anti-join without the `IS NOT NULL` guard —
/// the 3VL pitfall the corpus statements were hardened against — must
/// produce FC101. One unguarded variant per hardened site.
#[test]
fn unguarded_not_in_is_caught_as_fc101() {
    let mut gdb = small_gdb();
    build_segtable(&mut gdb, 120).unwrap();
    gdb.build_landmarks(1).unwrap();
    gdb.reset_visited().unwrap();
    gdb.reset_exp().unwrap();
    gdb.reset_batch_tables().unwrap();
    gdb.reset_batch_exp().unwrap();
    // Resurrect the build's working tables for the TSegV variant.
    gdb.db
        .execute("CREATE TABLE TSegV (src INT, nid INT, d2s INT, p2s INT, f INT)")
        .unwrap();
    let unguarded = [
        // sqlgen single-query insert_from_exp
        "INSERT INTO TVisited (nid, d2s, p2s, f, d2t, p2t, b) \
         SELECT nid, cost, p2s, 0, 2000000000, -1, 0 FROM TExp \
         WHERE nid NOT IN (SELECT nid FROM TVisited)",
        // sqlgen batch insert_from_exp (encoded composite key)
        "INSERT INTO TBVisited (qid, nid, d2s, p2s, f, d2t, p2t, b) \
         SELECT qid, nid, cost, p2s, 0, 2000000000, -1, 0 FROM TBExp \
         WHERE qid * ? + nid NOT IN (SELECT qid * ? + nid FROM TBVisited)",
        // landmark candidate pools
        "SELECT MAX(deg) FROM (SELECT fid, COUNT(*) AS deg FROM TEdges \
         WHERE fid NOT IN (SELECT lm FROM TLandmarks) GROUP BY fid) cand",
        "SELECT MAX(deg) FROM (SELECT fid, COUNT(*) AS deg FROM TEdges \
         WHERE fid NOT IN (SELECT nid FROM TLandmarks) GROUP BY fid) cand",
        // segtable insert_new and residual anti-join
        "INSERT INTO TSegV (src, nid, d2s, p2s, f) \
         SELECT src, nid, cost, p2s, 0 FROM TSegExp \
         WHERE src * ? + nid NOT IN (SELECT src * ? + nid FROM TSegV)",
        "INSERT INTO TOutSegs (fid, tid, pid, cost) \
         SELECT fid, tid, fid, cost FROM TEdges \
         WHERE fid * ? + tid NOT IN (SELECT fid * ? + tid FROM TOutSegs)",
    ];
    gdb.db
        .execute("CREATE TABLE TSegExp (src INT, nid INT, p2s INT, cost INT)")
        .unwrap();
    for sql in unguarded {
        let report = gdb.db.analyze(sql).unwrap();
        assert!(
            report.has_rule(Rule::NotInNullable),
            "expected FC101 for unguarded anti-join:\n{}",
            report.render()
        );
    }
}

/// Injected regression: comparing a numeric working-table column against
/// text must produce FC003.
#[test]
fn type_mismatch_is_caught_as_fc003() {
    let mut gdb = small_gdb();
    gdb.reset_visited().unwrap();
    let report = gdb
        .db
        .analyze("SELECT nid FROM TVisited WHERE d2s = 'far'")
        .unwrap();
    assert!(
        report.has_rule(Rule::TypeMismatch),
        "expected FC003:\n{}",
        report.render()
    );
}

/// The hardened corpus statements themselves carry the guard and stay
/// FC101-free — pinned per site so a revert shows up by name.
#[test]
fn hardened_anti_joins_stay_guarded() {
    let mut gdb = small_gdb();
    build_segtable(&mut gdb, 120).unwrap();
    gdb.build_landmarks(1).unwrap();
    let reports = gdb.analyze_all_statements().unwrap();
    let must_have_guard = [
        "fwd/edges/nsql/insert_from_exp",
        "batch/fwd/edges/nsql/noprune/insert_from_exp",
        "lm/pick_unchosen/max",
        "lm/pick_uncovered/max",
        "seg/nsql/nomerge/insert_new",
        "seg/nsql/nomerge/residual_antijoin",
    ];
    for needle in must_have_guard {
        let hits: Vec<_> = reports
            .iter()
            .filter(|(name, _)| name.ends_with(needle))
            .collect();
        assert!(!hits.is_empty(), "{needle} missing from the corpus");
        for (name, r) in hits {
            assert!(
                !r.has_rule(Rule::NotInNullable),
                "{name} regressed to an unguarded anti-join:\n{}",
                r.render()
            );
        }
    }
}
