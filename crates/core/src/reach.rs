//! Reachability queries in the FEM framework.
//!
//! §3.1 opens with reachability as the first example of a graph search
//! query ("reachability query answers whether there exists a path between
//! two given nodes", citing Trißl & Leser's RDB implementation). This
//! module implements it as a [`crate::fem::FemSearch`]: a BFS-style frontier
//! that stops early once the target enters the visited set.
//!
//! When a landmark index exists (DESIGN.md §12) a pair sharing a landmark
//! tree is proven reachable by the index alone — both endpoints reach the
//! common landmark, and edges are stored symmetrically — so the BFS is
//! skipped entirely for such pairs.

use crate::fem::{run_fem, FemSearch};
use crate::graphdb::GraphDb;
use fempath_sql::{Database, Result};
use fempath_storage::Value;

struct ReachSearch {
    source: i64,
    target: Option<i64>,
    hit: bool,
}

impl FemSearch for ReachSearch {
    fn init(&mut self, db: &mut Database) -> Result<()> {
        db.execute("DROP TABLE IF EXISTS TReach")?;
        db.execute("CREATE TABLE TReach (nid INT, f INT, PRIMARY KEY(nid))")?;
        db.execute_params(
            "INSERT INTO TReach (nid, f) VALUES (?, 0)",
            &[Value::Int(self.source)],
        )?;
        Ok(())
    }

    fn select_frontier(&mut self, db: &mut Database, _k: u64) -> Result<u64> {
        Ok(db
            .execute("UPDATE TReach SET f = 2 WHERE f = 0")?
            .rows_affected)
    }

    fn expand_and_merge(&mut self, db: &mut Database, _k: u64) -> Result<u64> {
        let n = db
            .execute(
                "MERGE INTO TReach AS target USING ( \
                   SELECT DISTINCT e.tid AS nid FROM TReach q, TEdges e \
                   WHERE q.nid = e.fid AND q.f = 2 \
                 ) AS source (nid) ON source.nid = target.nid \
                 WHEN NOT MATCHED THEN INSERT (nid, f) VALUES (source.nid, 0)",
            )?
            .rows_affected;
        db.execute("UPDATE TReach SET f = 1 WHERE f = 2")?;
        Ok(n)
    }

    fn after_iteration(&mut self, db: &mut Database, _k: u64, affected: u64) -> Result<bool> {
        if let Some(t) = self.target {
            if affected > 0 {
                let rs =
                    db.query_params("SELECT nid FROM TReach WHERE nid = ?", &[Value::Int(t)])?;
                if !rs.is_empty() {
                    self.hit = true;
                    return Ok(false); // early exit
                }
            }
        }
        Ok(true)
    }
}

/// True when `t` is reachable from `s`, computed entirely in SQL.
pub fn reachable(gdb: &mut GraphDb, s: i64, t: i64) -> Result<bool> {
    gdb.check_node(s)?;
    gdb.check_node(t)?;
    if s == t {
        return Ok(true);
    }
    // A shared landmark tree is a reachability certificate: s ~ lm ~ t.
    // The converse doesn't hold (the index may not cover the pair), so a
    // miss still runs the BFS.
    if gdb.landmarks().is_some() && crate::landmarks::common_landmark(gdb, s, t)?.is_some() {
        return Ok(true);
    }
    let mut search = ReachSearch {
        source: s,
        target: Some(t),
        hit: false,
    };
    run_fem(&mut gdb.db, &mut search)?;
    let hit = search.hit || {
        let rs = gdb
            .db
            .query_params("SELECT nid FROM TReach WHERE nid = ?", &[Value::Int(t)])?;
        !rs.is_empty()
    };
    gdb.db.execute("DROP TABLE TReach")?;
    Ok(hit)
}

/// Size of the connected component containing `s` (including `s`).
pub fn component_size(gdb: &mut GraphDb, s: i64) -> Result<u64> {
    gdb.check_node(s)?;
    let mut search = ReachSearch {
        source: s,
        target: None,
        hit: false,
    };
    run_fem(&mut gdb.db, &mut search)?;
    let n = gdb.db.table_len("TReach")?;
    gdb.db.execute("DROP TABLE TReach")?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fempath_graph::{generate, Graph};
    use fempath_inmem::bfs;

    #[test]
    fn reachability_matches_bfs_oracle() {
        let g = generate::random_graph(120, 1, 1..=10, 3); // sparse: disconnected
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        for (s, t) in [(0u32, 100u32), (5, 50), (7, 8), (0, 0), (99, 1)] {
            let want = bfs::reachable(&g, s, t);
            let got = reachable(&mut gdb, s as i64, t as i64).unwrap();
            assert_eq!(got, want, "{s}->{t}");
        }
    }

    #[test]
    fn landmark_shortcut_agrees_with_bfs_oracle() {
        let g = generate::random_graph(120, 1, 1..=10, 3); // sparse: disconnected
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        gdb.build_landmarks(4).unwrap();
        for (s, t) in [(0u32, 100u32), (5, 50), (7, 8), (0, 0), (99, 1)] {
            let want = bfs::reachable(&g, s, t);
            let got = reachable(&mut gdb, s as i64, t as i64).unwrap();
            assert_eq!(got, want, "{s}->{t} with landmark shortcut");
        }
    }

    #[test]
    fn component_size_matches_bfs() {
        let g = Graph::from_undirected_edges(
            7,
            vec![(0, 1, 1), (1, 2, 1), (3, 4, 1), (4, 5, 1), (5, 3, 1)],
        );
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        assert_eq!(component_size(&mut gdb, 0).unwrap(), 3);
        assert_eq!(component_size(&mut gdb, 3).unwrap(), 3);
        assert_eq!(component_size(&mut gdb, 6).unwrap(), 1);
    }

    #[test]
    fn early_exit_stops_before_full_component() {
        // Chain graph: reaching a near neighbour must not expand the tail.
        let edges: Vec<(u32, u32, u32)> = (0..199).map(|i| (i, i + 1, 1)).collect();
        let g = Graph::from_undirected_edges(200, edges);
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        assert!(reachable(&mut gdb, 0, 3).unwrap());
        // The working table was dropped; a fresh full-component query still
        // works afterwards.
        assert_eq!(component_size(&mut gdb, 0).unwrap(), 200);
    }
}
