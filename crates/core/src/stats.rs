//! Measurement machinery for the experiments.
//!
//! The paper reports, per query: wall time, number of expansions (`Exps`),
//! visited-node count (`Vst`), time per *phase* — path expansion (PE),
//! statistics collection (SC), full path recovery (FPR) — Fig 6(b), and
//! time per *operator* (F/E/M) — Fig 6(c). [`QueryStats`] carries all of
//! them plus SQL-statement and buffer-pool I/O counts.

use fempath_storage::IoStats;
use std::time::Duration;

/// The three phases of Algorithm 1/2 (Fig 6(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Path expansion: F/E/M operator statements.
    PathExpansion,
    /// Statistics collection: `min(d2s)`, `min(d2s+d2t)`, frontier counts,
    /// termination probes.
    StatsCollection,
    /// Full path recovery along the `p2s`/`p2t` links.
    FullPathRecovery,
}

/// FEM operator attribution (Fig 6(c)). `Aux` covers auxiliary statements
/// (initialization, sign flips) that the paper folds into the framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FemOperator {
    F,
    E,
    M,
    Aux,
}

/// Per-query measurements.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Number of expansion iterations (the paper's `Exps`).
    pub expansions: u64,
    /// Rows in `TVisited` when the search stopped (the paper's `Vst`).
    pub visited_nodes: u64,
    /// SQL statements issued.
    pub sql_statements: u64,
    /// Wall time per phase: [PE, SC, FPR].
    pub phase_times: [Duration; 3],
    /// Wall time per operator: [F, E, M, Aux]. In combined-statement mode
    /// the fused E+M MERGE is attributed to E; use split-operator mode
    /// (Fig 6(c)) for an exact breakdown.
    pub operator_times: [Duration; 4],
    /// Buffer-pool/disk deltas over the query.
    pub io: IoStats,
    /// Total wall time.
    pub total_time: Duration,
}

impl QueryStats {
    pub(crate) fn record(&mut self, phase: Phase, op: FemOperator, dt: Duration) {
        self.sql_statements += 1;
        self.phase_times[phase as usize] += dt;
        self.operator_times[op_index(op)] += dt;
    }

    /// Phase time accessor.
    pub fn phase(&self, phase: Phase) -> Duration {
        self.phase_times[phase as usize]
    }

    /// Operator time accessor.
    pub fn operator(&self, op: FemOperator) -> Duration {
        self.operator_times[op_index(op)]
    }

    /// Folds another run's measurements into this one (used by chunked
    /// batch execution to report whole-batch totals).
    pub fn absorb(&mut self, other: &QueryStats) {
        self.expansions += other.expansions;
        self.visited_nodes += other.visited_nodes;
        self.sql_statements += other.sql_statements;
        for (a, b) in self.phase_times.iter_mut().zip(&other.phase_times) {
            *a += *b;
        }
        for (a, b) in self.operator_times.iter_mut().zip(&other.operator_times) {
            *a += *b;
        }
        self.io.buffer_hits += other.io.buffer_hits;
        self.io.buffer_misses += other.io.buffer_misses;
        self.io.evictions += other.io.evictions;
        self.io.disk_reads += other.io.disk_reads;
        self.io.disk_writes += other.io.disk_writes;
        self.io.allocations += other.io.allocations;
        self.total_time += other.total_time;
    }
}

fn op_index(op: FemOperator) -> usize {
    match op {
        FemOperator::F => 0,
        FemOperator::E => 1,
        FemOperator::M => 2,
        FemOperator::Aux => 3,
    }
}

/// NSQL vs TSQL (§3.3, Fig 6(d)/9(f)): whether statements use the new SQL
/// features (window function + MERGE) or the traditional formulation
/// (aggregate + join, UPDATE followed by INSERT).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SqlStyle {
    /// Window function + MERGE (paper: NSQL).
    #[default]
    New,
    /// Aggregate-join E-operator, UPDATE+INSERT M-operator (paper: TSQL).
    Traditional,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut s = QueryStats::default();
        s.record(
            Phase::PathExpansion,
            FemOperator::E,
            Duration::from_millis(5),
        );
        s.record(
            Phase::PathExpansion,
            FemOperator::M,
            Duration::from_millis(3),
        );
        s.record(
            Phase::StatsCollection,
            FemOperator::Aux,
            Duration::from_millis(2),
        );
        assert_eq!(s.sql_statements, 3);
        assert_eq!(s.phase(Phase::PathExpansion), Duration::from_millis(8));
        assert_eq!(s.phase(Phase::StatsCollection), Duration::from_millis(2));
        assert_eq!(s.operator(FemOperator::E), Duration::from_millis(5));
        assert_eq!(s.operator(FemOperator::M), Duration::from_millis(3));
    }
}
