//! Relational shortest-path algorithms.
//!
//! All five of the paper's methods are here:
//!
//! | finder | paper name | §  |
//! |--------|-----------|----|
//! | [`DjFinder`]   | DJ — single-directional Dijkstra (Algorithm 1) | 3.4 |
//! | [`BdjFinder`]  | BDJ — bidirectional Dijkstra                   | 4.1 |
//! | [`BsdjFinder`] | BSDJ — bidirectional *set* Dijkstra            | 4.1 |
//! | [`BbfsFinder`] | BBFS — bidirectional BFS-style relaxation      | 4.2 |
//! | [`BsegFinder`] | BSEG — selective expansion over the SegTable (Algorithm 2) | 4.3 |
//!
//! Each runs entirely through SQL statements against a [`GraphDb`]; the
//! client side holds only scalars (`mid`, `lf`, `lb`, `minCost`, counters),
//! mirroring the paper's JDBC architecture.

pub mod batch;
pub mod bidi;
pub mod dj;

pub use crate::sqlgen::BatchFrontier;
pub use batch::{BatchBdjFinder, BatchDjFinder, BatchOutcome, BatchShortestPathFinder};
pub use bidi::{BbfsFinder, BdjFinder, BsdjFinder, BsegFinder, FrontierPolicy};
pub use dj::DjFinder;

use crate::graphdb::{GraphDb, NO_NODE};
use crate::stats::{FemOperator, Phase, QueryStats};
use fempath_sql::{ExecOutcome, PreparedStmt, Result, SqlError};
use fempath_storage::Value;
use std::time::Instant;

/// A discovered shortest path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// Node sequence from source to target, inclusive.
    pub nodes: Vec<i64>,
    /// Total weight.
    pub length: i64,
}

/// Result of a shortest-path query: the path (None when unreachable) and
/// the measurements of the run.
#[derive(Debug, Clone)]
pub struct PathOutcome {
    pub path: Option<Path>,
    pub stats: QueryStats,
}

/// A relational shortest-path algorithm.
pub trait ShortestPathFinder {
    /// Short name as used in the paper ("DJ", "BSDJ", …).
    fn name(&self) -> &'static str;

    /// Finds the shortest path from `s` to `t`.
    fn find_path(&self, gdb: &mut GraphDb, s: i64, t: i64) -> Result<PathOutcome>;
}

/// Statement executor that accumulates [`QueryStats`].
pub(crate) struct Runner<'a> {
    pub gdb: &'a mut GraphDb,
    pub stats: QueryStats,
    started: Instant,
    io_start: fempath_storage::IoStats,
}

impl<'a> Runner<'a> {
    pub fn new(gdb: &'a mut GraphDb) -> Runner<'a> {
        let io_start = gdb.db.io_stats();
        Runner {
            gdb,
            stats: QueryStats::default(),
            started: Instant::now(),
            io_start,
        }
    }

    /// Executes a one-shot literal statement (e.g. batch seeding) without
    /// polluting the plan cache.
    pub fn exec_once(
        &mut self,
        phase: Phase,
        op: FemOperator,
        sql: &str,
        params: &[Value],
    ) -> Result<ExecOutcome> {
        let t = Instant::now();
        let out = self.gdb.db.execute_unplanned(sql, params)?;
        self.stats.record(phase, op, t.elapsed());
        Ok(out)
    }

    /// Executes a prepared handle — the hot-loop path: no parse, no plan,
    /// no binding, just parameter substitution and execution.
    pub fn exec_prepared(
        &mut self,
        phase: Phase,
        op: FemOperator,
        stmt: &PreparedStmt,
        params: &[Value],
    ) -> Result<ExecOutcome> {
        let t = Instant::now();
        let out = self.gdb.db.execute_prepared(stmt, params)?;
        self.stats.record(phase, op, t.elapsed());
        Ok(out)
    }

    /// Executes a prepared handle expected to return a single optional
    /// i64 scalar (MIN queries return NULL on empty input → `None`).
    pub fn scalar_prepared(
        &mut self,
        phase: Phase,
        op: FemOperator,
        stmt: &PreparedStmt,
        params: &[Value],
    ) -> Result<Option<i64>> {
        let out = self.exec_prepared(phase, op, stmt, params)?;
        Self::first_scalar(out)
    }

    fn first_scalar(out: ExecOutcome) -> Result<Option<i64>> {
        let rows = out
            .rows
            .ok_or_else(|| SqlError::Eval("expected a result set".into()))?;
        Ok(rows
            .rows
            .first()
            .and_then(|r| r.first())
            .and_then(|v| v.as_i64()))
    }

    /// Executes a prepared handle and returns its first row, if any.
    pub fn row_prepared(
        &mut self,
        phase: Phase,
        op: FemOperator,
        stmt: &PreparedStmt,
        params: &[Value],
    ) -> Result<Option<Vec<Value>>> {
        let out = self.exec_prepared(phase, op, stmt, params)?;
        let rows = out
            .rows
            .ok_or_else(|| SqlError::Eval("expected a result set".into()))?;
        Ok(rows.rows.into_iter().next())
    }

    /// Finishes the run: fills in visited-node count, I/O delta and total
    /// time.
    pub fn finish(self, path: Option<Path>) -> Result<PathOutcome> {
        let stats = self.finish_stats("TVisited");
        Ok(PathOutcome { path, stats })
    }

    /// Closes out the measurements against an arbitrary visited-node table
    /// (the batched searches count `TBVisited`) and returns them.
    pub fn finish_stats(mut self, visited_table: &str) -> QueryStats {
        self.stats.visited_nodes = self.gdb.db.table_len(visited_table).unwrap_or(0);
        self.stats.io = self.gdb.db.io_stats().since(&self.io_start);
        self.stats.total_time = self.started.elapsed();
        self.stats
    }
}

/// Walks predecessor links from `from` back to `anchor` (Listing 3(3))
/// with a prepared lookup handle. `qid` selects one query of a batched
/// search (the handle then expects `(qid, nid)` parameters); `None` is
/// the single-query form. Returns the chain **excluding** `from` itself,
/// ordered from the node nearest `from` to `anchor`.
/// The prepared statement the current mode is required to carry. Absence
/// is a wiring bug between prepare-time and run-time mode flags —
/// surfaced as a typed error, not a panic.
pub(crate) fn need<'a>(
    stmt: &'a Option<PreparedStmt>,
    name: &'static str,
) -> Result<&'a PreparedStmt> {
    stmt.as_ref()
        .ok_or_else(|| SqlError::Eval(format!("mode bug: {name} statement not prepared")))
}

pub(crate) fn walk_links(
    runner: &mut Runner<'_>,
    pred_of: &PreparedStmt,
    qid: Option<i64>,
    from: i64,
    anchor: i64,
    limit: usize,
) -> Result<Vec<i64>> {
    let label = qid.map(|q| format!("qid {q}: ")).unwrap_or_default();
    let mut chain = Vec::new();
    let mut cur = from;
    while cur != anchor {
        let mut params = Vec::with_capacity(2);
        if let Some(q) = qid {
            params.push(Value::Int(q));
        }
        params.push(Value::Int(cur));
        let next = runner
            .scalar_prepared(Phase::FullPathRecovery, FemOperator::Aux, pred_of, &params)?
            .ok_or_else(|| {
                SqlError::Eval(format!("{label}broken predecessor chain at node {cur}"))
            })?;
        if next == NO_NODE {
            return Err(SqlError::Eval(format!(
                "{label}node {cur} has no predecessor while walking to {anchor}"
            )));
        }
        chain.push(next);
        cur = next;
        if chain.len() > limit {
            return Err(SqlError::Eval(
                "predecessor chain exceeds node count".into(),
            ));
        }
    }
    Ok(chain)
}

/// Recovers the full path of a bidirectional search that met at `meet`
/// with total length `min_cost` (Algorithm 2 lines 17–20). `fwd_pred` /
/// `bwd_pred` are prepared `pred_of` handles for the two directions.
pub(crate) fn recover_bidi_path(
    runner: &mut Runner<'_>,
    s: i64,
    t: i64,
    meet: i64,
    min_cost: i64,
    fwd_pred: &PreparedStmt,
    bwd_pred: &PreparedStmt,
) -> Result<Path> {
    let n = runner.gdb.num_nodes();
    // s … meet via p2s links (walked backward, then reversed).
    let mut nodes: Vec<i64> = walk_links(runner, fwd_pred, None, meet, s, n + 1)?;
    nodes.reverse();
    nodes.push(meet);
    // meet … t via p2t links.
    let tail = walk_links(runner, bwd_pred, None, meet, t, n + 1)?;
    nodes.extend(tail);
    debug_assert_eq!(nodes.first(), Some(&s));
    debug_assert_eq!(nodes.last(), Some(&t));
    Ok(Path {
        nodes,
        length: min_cost,
    })
}

/// Shared guard: both endpoints valid; the trivial `s == t` path.
pub(crate) fn trivial_case(gdb: &mut GraphDb, s: i64, t: i64) -> Result<Option<PathOutcome>> {
    gdb.check_node(s)?;
    gdb.check_node(t)?;
    if s == t {
        return Ok(Some(PathOutcome {
            path: Some(Path {
                nodes: vec![s],
                length: 0,
            }),
            stats: QueryStats::default(),
        }));
    }
    Ok(None)
}
