//! The bidirectional search skeleton (Algorithm 2, generalized).
//!
//! BDJ, BSDJ, BBFS and BSEG share the identical control loop — initialize
//! `TVisited` with both endpoints, alternate expansion directions by
//! frontier size, stop when `minCost <= lf + lb` (§4.1) or both directions
//! exhaust — and differ **only** in their frontier policy and edge source:
//!
//! | finder | frontier policy | edge source |
//! |--------|----------------|-------------|
//! | BDJ    | the single minimum-distance node | `TEdges` |
//! | BSDJ   | *all* nodes at the minimum distance (set-at-a-time, §4.1) | `TEdges` |
//! | BBFS   | every candidate (§4.2's strawman) | `TEdges` |
//! | BSEG   | `d2s <= k·lthd` plus the minimum (Listing 4(1)) | SegTable |
//!
//! All expansions carry the Theorem-1 pruning term
//! `e.cost + q.dist + l_other < minCost` (disable with `prune = false` for
//! the ablation bench). When a landmark index exists (DESIGN.md §12) the
//! pruning ceiling starts at the triangle-inequality upper bound `U + 1`
//! instead of infinity, so Theorem-1 discards candidates costlier than `U`
//! from the very first iteration; `min_cost` itself is never seeded — it
//! must stay realized by a `TVisited` row for meet-node recovery.

use super::{need, recover_bidi_path, trivial_case, PathOutcome, Runner, ShortestPathFinder};
use crate::graphdb::{GraphDb, INF};
use crate::sqlgen::{
    expand_params, meet_node, min_cost as min_cost_sql, truncate_exp, Dir, EdgeSource,
    FrontierPred, SqlGen,
};
use crate::stats::{FemOperator, Phase, SqlStyle};
use fempath_sql::{PreparedStmt, Result, SqlError};
use fempath_storage::Value;

/// Prepared handles for one direction's loop statements. Built once per
/// search (cache hits across searches make this nearly free) and executed
/// inside the iteration without any per-statement planning.
struct DirStmts {
    /// Listing 2(2) — SingleMin frontier only.
    select_mid: Option<PreparedStmt>,
    /// The policy-specific F-operator mark statement.
    mark: PreparedStmt,
    /// Fused E+M (MERGE mode).
    expand_merge: Option<PreparedStmt>,
    /// Split E (temp-table mode).
    expand_into_exp: Option<PreparedStmt>,
    /// Split M via MERGE.
    merge_from_exp: Option<PreparedStmt>,
    /// Split M, update half (no-MERGE dialect).
    update_from_exp: Option<PreparedStmt>,
    /// Split M, insert half (no-MERGE dialect).
    insert_from_exp: Option<PreparedStmt>,
    reset_frontier: PreparedStmt,
    candidate_stats: PreparedStmt,
    pred_of: PreparedStmt,
}

impl DirStmts {
    fn prepare(
        db: &mut fempath_sql::Database,
        gen: &SqlGen,
        spec: &BidiSpec,
        use_temp_exp: bool,
        merge_supported: bool,
    ) -> Result<DirStmts> {
        let mark_sql = match spec.frontier {
            FrontierPolicy::SingleMin => gen.mark_by_nid(),
            FrontierPolicy::AllMin => gen.mark_by_dist(),
            FrontierPolicy::All => gen.mark_all(),
            FrontierPolicy::Threshold { .. } => gen.mark_threshold(),
        };
        Ok(DirStmts {
            select_mid: match spec.frontier {
                FrontierPolicy::SingleMin => Some(db.prepare(&gen.select_mid())?),
                _ => None,
            },
            mark: db.prepare(&mark_sql)?,
            expand_merge: if use_temp_exp {
                None
            } else {
                Some(db.prepare(&gen.expand_merge(FrontierPred::Marked))?)
            },
            expand_into_exp: if use_temp_exp {
                Some(db.prepare(&gen.expand_into_exp(FrontierPred::Marked))?)
            } else {
                None
            },
            merge_from_exp: if use_temp_exp && merge_supported {
                Some(db.prepare(&gen.merge_from_exp())?)
            } else {
                None
            },
            update_from_exp: if use_temp_exp && !merge_supported {
                Some(db.prepare(&gen.update_from_exp())?)
            } else {
                None
            },
            insert_from_exp: if use_temp_exp && !merge_supported {
                Some(db.prepare(&gen.insert_from_exp())?)
            } else {
                None
            },
            reset_frontier: db.prepare(&gen.reset_frontier())?,
            candidate_stats: db.prepare(&gen.candidate_stats())?,
            pred_of: db.prepare(&gen.pred_of())?,
        })
    }
}

/// How each iteration picks its frontier (the F-operator predicate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontierPolicy {
    /// One node with the minimal distance (BDJ).
    SingleMin,
    /// All nodes with the minimal distance (BSDJ).
    AllMin,
    /// Every candidate node (BBFS).
    All,
    /// `dist <= k * lthd` or the minimal distance (BSEG, Listing 4(1)).
    Threshold { lthd: i64 },
}

/// Full specification of one bidirectional run.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BidiSpec {
    pub name: &'static str,
    pub frontier: FrontierPolicy,
    pub edges: EdgeSource,
    pub style: SqlStyle,
    pub prune: bool,
    /// Seed the pruning ceiling from the landmark index when one exists.
    pub seed_bounds: bool,
    /// Issue F/E/M as separate statements through `TExp` — the Fig 6(c)
    /// per-operator measurement mode (also forced by no-MERGE dialects).
    pub split_operators: bool,
}

pub(crate) fn run_bidi(gdb: &mut GraphDb, s: i64, t: i64, spec: BidiSpec) -> Result<PathOutcome> {
    if let Some(out) = trivial_case(gdb, s, t)? {
        return Ok(out);
    }
    if spec.edges == EdgeSource::SegTable && gdb.segtable().is_none() {
        return Err(SqlError::Eval(
            "BSEG requires a SegTable: call GraphDb::build_segtable first".into(),
        ));
    }
    // Landmark-seeded pruning ceiling: `U + 1` keeps every relaxation on an
    // optimal path (all partial sums <= D <= U, and the strict `<` of the
    // pruning term compares against U + 1) while discarding candidates
    // strictly above U. Stays INF when no index exists or seeding is off.
    let bound = if spec.prune && spec.seed_bounds && gdb.landmarks().is_some() {
        crate::landmarks::upper_bound(gdb, s, t)?.map_or(INF, |u| u.saturating_add(1).min(INF))
    } else {
        INF
    };
    gdb.reset_visited()?;
    let use_temp_exp = spec.split_operators || !gdb.merge_supported();
    if use_temp_exp {
        gdb.reset_exp()?;
    }
    let fgen = SqlGen::new(Dir::Fwd, spec.edges, spec.style);
    let bgen = SqlGen::new(Dir::Bwd, spec.edges, spec.style);
    let max_iters = 8 * gdb.num_nodes() as u64 + 32;

    // Prepare the whole statement set up front; the loop below executes
    // handles only. After the first search these prepares are plan-cache
    // hits (the TRUNCATE-based reset keeps the catalog version stable).
    let merge_supported = gdb.merge_supported();
    let init_fwd = gdb.db.prepare(&SqlGen::init(Dir::Fwd))?;
    let init_bwd = gdb.db.prepare(&SqlGen::init(Dir::Bwd))?;
    let fwd_stmts = DirStmts::prepare(&mut gdb.db, &fgen, &spec, use_temp_exp, merge_supported)?;
    let bwd_stmts = DirStmts::prepare(&mut gdb.db, &bgen, &spec, use_temp_exp, merge_supported)?;
    let truncate_exp_stmt = if use_temp_exp {
        Some(gdb.db.prepare(truncate_exp())?)
    } else {
        None
    };
    let min_cost_stmt = gdb.db.prepare(min_cost_sql())?;
    let meet_node_stmt = gdb.db.prepare(meet_node())?;

    let mut runner = Runner::new(gdb);
    runner.exec_prepared(
        Phase::PathExpansion,
        FemOperator::Aux,
        &init_fwd,
        &[Value::Int(s), Value::Int(s)],
    )?;
    runner.exec_prepared(
        Phase::PathExpansion,
        FemOperator::Aux,
        &init_bwd,
        &[Value::Int(t), Value::Int(t)],
    )?;

    let mut min_cost = INF;
    let (mut lf, mut lb) = (0i64, 0i64);
    let (mut nf, mut nb) = (1i64, 1i64); // remaining candidates per direction
    let (mut kf, mut kb) = (1i64, 1i64); // expansion counters (BSEG's fwd/bwd)

    loop {
        // Termination (§4.1): minCost is final once minCost <= lf + lb.
        if min_cost <= lf.saturating_add(lb) {
            break;
        }
        if nf <= 0 && nb <= 0 {
            break;
        }
        // Expand the direction with fewer pending candidates (Algorithm 2
        // line 7), skipping exhausted directions.
        let forward = nf > 0 && (nb <= 0 || nf <= nb);
        let (stmts, k, l_other) = if forward {
            (&fwd_stmts, &mut kf, lb)
        } else {
            (&bwd_stmts, &mut kb, lf)
        };

        // F-operator: mark the frontier.
        let marked = match spec.frontier {
            FrontierPolicy::SingleMin => {
                match runner.scalar_prepared(
                    Phase::StatsCollection,
                    FemOperator::Aux,
                    need(&stmts.select_mid, "select_mid")?,
                    &[],
                )? {
                    None => 0,
                    Some(mid) => {
                        runner
                            .exec_prepared(
                                Phase::PathExpansion,
                                FemOperator::F,
                                &stmts.mark,
                                &[Value::Int(mid)],
                            )?
                            .rows_affected
                    }
                }
            }
            FrontierPolicy::AllMin => {
                // The candidate minimum in this direction is invariant
                // across the *other* direction's expansions (they never
                // touch this direction's distance column), so `lf`/`lb`
                // already holds it — no extra MIN statement needed.
                let cur_l = if forward { lf } else { lb };
                if cur_l >= INF {
                    0
                } else {
                    runner
                        .exec_prepared(
                            Phase::PathExpansion,
                            FemOperator::F,
                            &stmts.mark,
                            &[Value::Int(cur_l)],
                        )?
                        .rows_affected
                }
            }
            FrontierPolicy::All => {
                runner
                    .exec_prepared(Phase::PathExpansion, FemOperator::F, &stmts.mark, &[])?
                    .rows_affected
            }
            FrontierPolicy::Threshold { lthd } => {
                runner
                    .exec_prepared(
                        Phase::PathExpansion,
                        FemOperator::F,
                        &stmts.mark,
                        &[Value::Int((*k).saturating_mul(lthd))],
                    )?
                    .rows_affected
            }
        };
        if marked == 0 {
            if forward {
                nf = 0;
            } else {
                nb = 0;
            }
            continue;
        }

        // E+M operators. Only the pruning *parameter* mixes in the seeded
        // bound; termination and meet-node recovery use the discovered
        // min_cost alone.
        let (lo, mc) = if spec.prune {
            (l_other, min_cost.min(bound))
        } else {
            (0, INF)
        };
        let params = expand_params(spec.style, FrontierPred::Marked, None, lo, mc)?;
        if let Some(expand) = &stmts.expand_merge {
            runner.exec_prepared(Phase::PathExpansion, FemOperator::E, expand, &params)?;
        } else {
            runner.exec_prepared(
                Phase::PathExpansion,
                FemOperator::Aux,
                need(&truncate_exp_stmt, "truncate_exp")?,
                &[],
            )?;
            runner.exec_prepared(
                Phase::PathExpansion,
                FemOperator::E,
                need(&stmts.expand_into_exp, "expand_into_exp")?,
                &params,
            )?;
            if let Some(merge) = &stmts.merge_from_exp {
                runner.exec_prepared(Phase::PathExpansion, FemOperator::M, merge, &[])?;
            } else {
                runner.exec_prepared(
                    Phase::PathExpansion,
                    FemOperator::M,
                    need(&stmts.update_from_exp, "update_from_exp")?,
                    &[],
                )?;
                runner.exec_prepared(
                    Phase::PathExpansion,
                    FemOperator::M,
                    need(&stmts.insert_from_exp, "insert_from_exp")?,
                    &[],
                )?;
            }
        }
        // Flip the expanded frontier to settled (Listing 4(3)).
        runner.exec_prepared(
            Phase::PathExpansion,
            FemOperator::F,
            &stmts.reset_frontier,
            &[],
        )?;
        runner.stats.expansions += 1;
        *k += 1;

        // Statistics collection: new l + candidate count (one fused scan,
        // Listing 4(4)), then minCost (Listing 4(5)).
        let stats_row = runner
            .row_prepared(
                Phase::StatsCollection,
                FemOperator::Aux,
                &stmts.candidate_stats,
                &[],
            )?
            .unwrap_or_default();
        let l_new = stats_row.first().and_then(|v| v.as_i64()).unwrap_or(INF);
        let cand = stats_row.get(1).and_then(|v| v.as_i64()).unwrap_or(0);
        if forward {
            lf = l_new;
            nf = cand;
        } else {
            lb = l_new;
            nb = cand;
        }
        let mc_now = runner
            .scalar_prepared(
                Phase::StatsCollection,
                FemOperator::Aux,
                &min_cost_stmt,
                &[],
            )?
            .unwrap_or(i64::MAX);
        min_cost = if mc_now >= INF { INF } else { mc_now };

        if runner.stats.expansions > max_iters {
            return Err(SqlError::Eval(format!(
                "{} exceeded the iteration bound — likely a bug",
                spec.name
            )));
        }
    }

    if min_cost >= INF {
        return runner.finish(None);
    }
    let meet = runner
        .scalar_prepared(
            Phase::FullPathRecovery,
            FemOperator::Aux,
            &meet_node_stmt,
            &[Value::Int(min_cost)],
        )?
        .ok_or_else(|| SqlError::Eval("no node realizes minCost".into()))?;
    let path = recover_bidi_path(
        &mut runner,
        s,
        t,
        meet,
        min_cost,
        &fwd_stmts.pred_of,
        &bwd_stmts.pred_of,
    )?;
    runner.finish(Some(path))
}

/// **BDJ** — bidirectional Dijkstra, node-at-a-time.
#[derive(Debug, Clone, Copy)]
pub struct BdjFinder {
    pub style: SqlStyle,
    /// Theorem-1 pruning (on by default; off for the ablation bench).
    pub prune: bool,
    /// Seed the pruning ceiling from the landmark index when one exists
    /// (on by default; a no-op without an index).
    pub seed_bounds: bool,
}

impl Default for BdjFinder {
    fn default() -> Self {
        BdjFinder {
            style: SqlStyle::New,
            prune: true,
            seed_bounds: true,
        }
    }
}

impl ShortestPathFinder for BdjFinder {
    fn name(&self) -> &'static str {
        "BDJ"
    }

    fn find_path(&self, gdb: &mut GraphDb, s: i64, t: i64) -> Result<PathOutcome> {
        run_bidi(
            gdb,
            s,
            t,
            BidiSpec {
                name: "BDJ",
                frontier: FrontierPolicy::SingleMin,
                edges: EdgeSource::Edges,
                style: self.style,
                prune: self.prune,
                seed_bounds: self.seed_bounds,
                split_operators: false,
            },
        )
    }
}

/// **BSDJ** — bidirectional *set* Dijkstra: all nodes at the minimal
/// distance expand in one statement (the paper's key set-at-a-time
/// optimization, §4.1).
#[derive(Debug, Clone, Copy)]
pub struct BsdjFinder {
    pub style: SqlStyle,
    pub prune: bool,
    /// Seed the pruning ceiling from the landmark index when one exists.
    pub seed_bounds: bool,
    /// Issue F/E/M as separate statements (Fig 6(c) measurement mode).
    pub split_operators: bool,
}

impl Default for BsdjFinder {
    fn default() -> Self {
        BsdjFinder {
            style: SqlStyle::New,
            prune: true,
            seed_bounds: true,
            split_operators: false,
        }
    }
}

impl ShortestPathFinder for BsdjFinder {
    fn name(&self) -> &'static str {
        "BSDJ"
    }

    fn find_path(&self, gdb: &mut GraphDb, s: i64, t: i64) -> Result<PathOutcome> {
        run_bidi(
            gdb,
            s,
            t,
            BidiSpec {
                name: "BSDJ",
                frontier: FrontierPolicy::AllMin,
                edges: EdgeSource::Edges,
                style: self.style,
                prune: self.prune,
                seed_bounds: self.seed_bounds,
                split_operators: self.split_operators,
            },
        )
    }
}

/// **BBFS** — bidirectional breadth-first-style relaxation: every candidate
/// expands every iteration. Fewest iterations, largest search space (§4.2).
#[derive(Debug, Clone, Copy)]
pub struct BbfsFinder {
    pub style: SqlStyle,
    pub prune: bool,
    /// Seed the pruning ceiling from the landmark index when one exists.
    pub seed_bounds: bool,
}

impl Default for BbfsFinder {
    fn default() -> Self {
        BbfsFinder {
            style: SqlStyle::New,
            prune: true,
            seed_bounds: true,
        }
    }
}

impl ShortestPathFinder for BbfsFinder {
    fn name(&self) -> &'static str {
        "BBFS"
    }

    fn find_path(&self, gdb: &mut GraphDb, s: i64, t: i64) -> Result<PathOutcome> {
        run_bidi(
            gdb,
            s,
            t,
            BidiSpec {
                name: "BBFS",
                frontier: FrontierPolicy::All,
                edges: EdgeSource::Edges,
                style: self.style,
                prune: self.prune,
                seed_bounds: self.seed_bounds,
                split_operators: false,
            },
        )
    }
}

/// **BSEG** — selective expansion over the SegTable (Algorithm 2). Requires
/// [`GraphDb::build_segtable`] to have been called; the threshold `lthd` is
/// read from the built index.
#[derive(Debug, Clone, Copy)]
pub struct BsegFinder {
    pub style: SqlStyle,
    pub prune: bool,
    /// Seed the pruning ceiling from the landmark index when one exists.
    pub seed_bounds: bool,
    pub split_operators: bool,
}

impl Default for BsegFinder {
    fn default() -> Self {
        BsegFinder {
            style: SqlStyle::New,
            prune: true,
            seed_bounds: true,
            split_operators: false,
        }
    }
}

impl ShortestPathFinder for BsegFinder {
    fn name(&self) -> &'static str {
        "BSEG"
    }

    fn find_path(&self, gdb: &mut GraphDb, s: i64, t: i64) -> Result<PathOutcome> {
        let lthd = gdb
            .segtable()
            .ok_or_else(|| {
                SqlError::Eval("BSEG requires a SegTable: call build_segtable first".into())
            })?
            .lthd;
        run_bidi(
            gdb,
            s,
            t,
            BidiSpec {
                name: "BSEG",
                frontier: FrontierPolicy::Threshold { lthd },
                edges: EdgeSource::SegTable,
                style: self.style,
                prune: self.prune,
                seed_bounds: self.seed_bounds,
                split_operators: self.split_operators,
            },
        )
    }
}
