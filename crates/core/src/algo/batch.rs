//! **Batched multi-pair execution** (DESIGN.md §8): one F/E/M relational
//! iteration advances a whole batch of (s, t) queries at once.
//!
//! The working tables carry a `qid` column — `TBVisited(qid, nid, …)` is
//! the per-query visited-node table, `TBounds(qid, …)` holds the client
//! scalars of Algorithm 2 (`lf`, `lb`, `nf`, `nb`, `minCost`) *relationally*,
//! one row per query, because a single statement must read a different
//! scalar for every qid it touches. Termination, the Theorem-1 pruning
//! bound, and path recovery are all per qid.
//!
//! Two finders instantiate the pattern:
//!
//! | finder | shape | single-query analogue |
//! |--------|-------|----------------------|
//! | [`BatchDjFinder`]  | single-directional Dijkstra | DJ (§3.4) |
//! | [`BatchBdjFinder`] | bidirectional search        | BDJ/BSDJ/BBFS (§4.1–4.2) |
//!
//! Within each query the batched F-operator is inherently *set-at-a-time*
//! (one statement cannot pick one node per qid and still touch every qid).
//! [`BatchFrontier`] chooses the set: each query's minimal-distance
//! candidates (set Dijkstra, the §4.1 recommendation) or every candidate
//! (BFS-style label-correcting, the throughput default — per-iteration
//! scans over the shared table are the dominant batch cost, so fewer,
//! fatter iterations win). Either way distances match the single-query
//! finders exactly; equal-weight paths may break ties differently.
//!
//! Three mechanisms carry the throughput claim (see the `batch-throughput`
//! experiment in `fempath-bench`): a batch of `B` queries costs O(1)
//! statements per iteration instead of O(B); finished queries are retired
//! *immediately* — paths recovered, rows deleted — so iterations only scan
//! live queries; and large batches are tiled into chunks of
//! [`DEFAULT_BATCH_CHUNK`] in-flight queries, where per-statement savings
//! outweigh the larger working set.

use super::{need, walk_links, Path, Runner};
use crate::graphdb::{GraphDb, INF};
use crate::sqlgen::{
    batch_delete_done_bounds, batch_delete_done_visited, batch_fused_stats,
    batch_mark_done_drained, batch_mark_done_met, batch_meet_node, batch_read_done_bounds,
    batch_reset_both, seed_bounds_batch, truncate_batch_exp, BatchFrontier, BatchSqlGen, Dir,
    EdgeSource,
};
use crate::stats::{FemOperator, Phase, QueryStats, SqlStyle};
use fempath_sql::{Database, PreparedStmt, Result, SqlError};
use fempath_storage::Value;
use std::collections::HashMap;

/// Result of a batched shortest-path query: one entry per input pair (in
/// input order, `None` when unreachable) and the measurements of the whole
/// batch run.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// `paths[i]` answers `pairs[i]`.
    pub paths: Vec<Option<Path>>,
    /// Aggregate stats for the batch (expansions count iterations ×
    /// directions, visited nodes count `TBVisited` rows across all qids).
    pub stats: QueryStats,
}

/// A relational shortest-path algorithm answering many (s, t) pairs in one
/// FEM iteration stream.
pub trait BatchShortestPathFinder {
    /// Short name ("BatchDJ", "BatchBDJ", …).
    fn name(&self) -> &'static str;

    /// Finds the shortest path for every pair; `paths[i]` answers
    /// `pairs[i]`. Pairs may repeat and may be trivial (`s == t`).
    fn find_paths(&self, gdb: &mut GraphDb, pairs: &[(i64, i64)]) -> Result<BatchOutcome>;
}

/// Full specification of one batched run.
#[derive(Debug, Clone, Copy)]
struct BatchSpec {
    name: &'static str,
    /// Bidirectional (expand from both endpoints, meet in the middle) or
    /// single-directional (forward until the target settles).
    bidi: bool,
    /// Per-query frontier policy. Single-directional searches require
    /// [`BatchFrontier::PerQueryMin`]: their settled-target termination is
    /// only sound label-setting.
    frontier: BatchFrontier,
    style: SqlStyle,
    /// Theorem-1 pruning via the bounds table (bidirectional only).
    prune: bool,
    /// Seed each query's `TBounds.bound` from the landmark index.
    seed_bounds: bool,
}

/// Default tile size for batched execution: per-iteration scans grow with
/// the live working set while per-statement savings stay flat, so
/// throughput peaks at a moderate in-flight batch (measured ~8–16 on the
/// `batch-throughput` experiment's graphs).
pub const DEFAULT_BATCH_CHUNK: usize = 8;

/// Runs `pairs` through [`run_batch`] in tiles of `chunk` (0 = one tile),
/// concatenating the per-pair answers and folding the measurements.
fn run_batch_chunked(
    gdb: &mut GraphDb,
    pairs: &[(i64, i64)],
    spec: BatchSpec,
    chunk: usize,
) -> Result<BatchOutcome> {
    if chunk == 0 || pairs.len() <= chunk {
        return run_batch(gdb, pairs, spec);
    }
    let mut paths = Vec::with_capacity(pairs.len());
    let mut stats = QueryStats::default();
    for tile in pairs.chunks(chunk) {
        let out = run_batch(gdb, tile, spec)?;
        paths.extend(out.paths);
        stats.absorb(&out.stats);
    }
    Ok(BatchOutcome { paths, stats })
}

/// Prepared handles for one direction of the batched loop.
struct BatchDirStmts {
    mark: PreparedStmt,
    expand_merge: Option<PreparedStmt>,
    expand_into_exp: Option<PreparedStmt>,
    merge_from_exp: Option<PreparedStmt>,
    update_from_exp: Option<PreparedStmt>,
    insert_from_exp: Option<PreparedStmt>,
    reset_frontier: PreparedStmt,
    pred_of: PreparedStmt,
}

impl BatchDirStmts {
    fn prepare(
        db: &mut Database,
        gen: &BatchSqlGen,
        spec: &BatchSpec,
        use_merge: bool,
        merge_supported: bool,
    ) -> Result<BatchDirStmts> {
        Ok(BatchDirStmts {
            mark: db.prepare(&gen.mark_frontier(spec.frontier, spec.bidi))?,
            expand_merge: if use_merge {
                Some(db.prepare(&gen.expand_merge())?)
            } else {
                None
            },
            expand_into_exp: if use_merge {
                None
            } else {
                Some(db.prepare(&gen.expand_into_exp())?)
            },
            merge_from_exp: if !use_merge && merge_supported {
                Some(db.prepare(&gen.merge_from_exp())?)
            } else {
                None
            },
            update_from_exp: if !use_merge && !merge_supported {
                Some(db.prepare(&gen.update_from_exp())?)
            } else {
                None
            },
            insert_from_exp: if !use_merge && !merge_supported {
                Some(db.prepare(&gen.insert_from_exp())?)
            } else {
                None
            },
            reset_frontier: db.prepare(&gen.reset_frontier())?,
            pred_of: db.prepare(&gen.pred_of())?,
        })
    }
}

/// Prepared handles shared by both directions of the batched loop.
struct BatchSharedStmts {
    truncate_exp: Option<PreparedStmt>,
    reset_both: Option<PreparedStmt>,
    // Bidirectional statistics/termination.
    fused_stats: Option<PreparedStmt>,
    mark_done_met: Option<PreparedStmt>,
    mark_done_drained: Option<PreparedStmt>,
    // Single-directional statistics/termination.
    clear_stats: Option<PreparedStmt>,
    refresh_stats: Option<PreparedStmt>,
    mark_done_target: Option<PreparedStmt>,
    mark_done_exhausted: Option<PreparedStmt>,
    // Retirement.
    read_done_bounds: PreparedStmt,
    meet_node: Option<PreparedStmt>,
    dist_of_fwd: PreparedStmt,
    delete_done_visited: PreparedStmt,
    delete_done_bounds: PreparedStmt,
}

impl BatchSharedStmts {
    fn prepare(
        db: &mut Database,
        fgen: &BatchSqlGen,
        spec: &BatchSpec,
        use_merge: bool,
    ) -> Result<BatchSharedStmts> {
        Ok(BatchSharedStmts {
            truncate_exp: if use_merge {
                None
            } else {
                Some(db.prepare(truncate_batch_exp())?)
            },
            reset_both: if spec.bidi {
                Some(db.prepare(batch_reset_both())?)
            } else {
                None
            },
            fused_stats: if spec.bidi {
                Some(db.prepare(&batch_fused_stats())?)
            } else {
                None
            },
            mark_done_met: if spec.bidi {
                Some(db.prepare(&batch_mark_done_met())?)
            } else {
                None
            },
            mark_done_drained: if spec.bidi {
                Some(db.prepare(batch_mark_done_drained())?)
            } else {
                None
            },
            clear_stats: if spec.bidi {
                None
            } else {
                Some(db.prepare(&fgen.clear_stats())?)
            },
            refresh_stats: if spec.bidi {
                None
            } else {
                Some(db.prepare(&fgen.refresh_stats())?)
            },
            mark_done_target: if spec.bidi {
                None
            } else {
                Some(db.prepare(&fgen.mark_done_target_settled())?)
            },
            mark_done_exhausted: if spec.bidi {
                None
            } else {
                Some(db.prepare(&fgen.mark_done_exhausted())?)
            },
            read_done_bounds: db.prepare(batch_read_done_bounds())?,
            meet_node: if spec.bidi {
                Some(db.prepare(batch_meet_node())?)
            } else {
                None
            },
            dist_of_fwd: db.prepare(&fgen.dist_of())?,
            delete_done_visited: db.prepare(batch_delete_done_visited())?,
            delete_done_bounds: db.prepare(batch_delete_done_bounds())?,
        })
    }
}

fn run_batch(gdb: &mut GraphDb, pairs: &[(i64, i64)], spec: BatchSpec) -> Result<BatchOutcome> {
    for &(s, t) in pairs {
        gdb.check_node(s)?;
        gdb.check_node(t)?;
    }
    let mut paths: Vec<Option<Path>> = vec![None; pairs.len()];
    // Trivial pairs are answered client-side; the qid of a live pair is its
    // index into `pairs`, so results map back without bookkeeping.
    let live: Vec<(i64, i64, i64)> = pairs
        .iter()
        .enumerate()
        .filter(|&(_, &(s, t))| s != t)
        .map(|(qid, &(s, t))| (qid as i64, s, t))
        .collect();
    for (qid, &(s, t)) in pairs.iter().enumerate() {
        if s == t {
            paths[qid] = Some(Path {
                nodes: vec![s],
                length: 0,
            });
        }
    }
    if live.is_empty() {
        return Ok(BatchOutcome {
            paths,
            stats: QueryStats::default(),
        });
    }

    gdb.reset_batch_tables()?;
    let use_merge = gdb.merge_supported() && spec.style == SqlStyle::New;
    if !use_merge {
        gdb.reset_batch_exp()?;
    }
    let prune = spec.prune && spec.bidi;
    let fgen = BatchSqlGen::new(Dir::Fwd, EdgeSource::Edges, spec.style, prune);
    let bgen = BatchSqlGen::new(Dir::Bwd, EdgeSource::Edges, spec.style, prune);
    let n = gdb.num_nodes() as i64;
    let max_iters = 2 * gdb.num_nodes() as u64 + 16;

    // Prepare the loop statement set once per batch; after the first batch
    // these are plan-cache hits (TRUNCATE-based resets keep the catalog
    // version stable).
    let merge_supported = gdb.merge_supported();
    // Landmark seeding fills each query's `TBounds.bound` with its
    // triangle-inequality upper bound + 1 in one set-oriented UPDATE
    // (DESIGN.md §12); queries without a common landmark keep INF.
    let seed_stmt = if prune && spec.seed_bounds && gdb.landmarks().is_some() {
        Some(gdb.db.prepare(&seed_bounds_batch())?)
    } else {
        None
    };
    let fwd_stmts = BatchDirStmts::prepare(&mut gdb.db, &fgen, &spec, use_merge, merge_supported)?;
    let bwd_stmts = if spec.bidi {
        Some(BatchDirStmts::prepare(
            &mut gdb.db,
            &bgen,
            &spec,
            use_merge,
            merge_supported,
        )?)
    } else {
        None
    };
    let shared = BatchSharedStmts::prepare(&mut gdb.db, &fgen, &spec, use_merge)?;

    let mut runner = Runner::new(gdb);
    // Multi-row initialization: one INSERT per table seeds the whole batch
    // (the statements are batch-specific literals, so they run through the
    // unplanned path and stay out of the plan cache).
    runner.exec_once(
        Phase::PathExpansion,
        FemOperator::Aux,
        &BatchSqlGen::init_batch(Dir::Fwd, &live),
        &[],
    )?;
    if spec.bidi {
        runner.exec_once(
            Phase::PathExpansion,
            FemOperator::Aux,
            &BatchSqlGen::init_batch(Dir::Bwd, &live),
            &[],
        )?;
    }
    runner.exec_once(
        Phase::PathExpansion,
        FemOperator::Aux,
        &BatchSqlGen::init_bounds_batch(&live, spec.bidi),
        &[],
    )?;
    if let Some(seed) = &seed_stmt {
        runner.exec_prepared(Phase::PathExpansion, FemOperator::Aux, seed, &[])?;
    }

    let live_map: HashMap<i64, (i64, i64)> = live.iter().map(|&(q, s, t)| (q, (s, t))).collect();
    let mut active = live.len() as u64;
    let mut iters = 0u64;
    let mut visited_retired = 0u64;
    loop {
        // F-operator, per direction: each unfinished query marks its
        // frontier in its smaller direction.
        let marked_f = runner
            .exec_prepared(Phase::PathExpansion, FemOperator::F, &fwd_stmts.mark, &[])?
            .rows_affected;
        let marked_b = if let Some(bwd) = &bwd_stmts {
            runner
                .exec_prepared(Phase::PathExpansion, FemOperator::F, &bwd.mark, &[])?
                .rows_affected
        } else {
            0
        };

        // E+M operators for each direction that marked anything.
        for (stmts, marked) in [(Some(&fwd_stmts), marked_f), (bwd_stmts.as_ref(), marked_b)] {
            let Some(stmts) = stmts else { continue };
            if marked == 0 {
                continue;
            }
            if let Some(expand) = &stmts.expand_merge {
                runner.exec_prepared(Phase::PathExpansion, FemOperator::E, expand, &[])?;
            } else {
                runner.exec_prepared(
                    Phase::PathExpansion,
                    FemOperator::Aux,
                    need(&shared.truncate_exp, "truncate_exp")?,
                    &[],
                )?;
                runner.exec_prepared(
                    Phase::PathExpansion,
                    FemOperator::E,
                    need(&stmts.expand_into_exp, "expand_into_exp")?,
                    &[],
                )?;
                if let Some(merge) = &stmts.merge_from_exp {
                    runner.exec_prepared(Phase::PathExpansion, FemOperator::M, merge, &[])?;
                } else {
                    runner.exec_prepared(
                        Phase::PathExpansion,
                        FemOperator::M,
                        need(&stmts.update_from_exp, "update_from_exp")?,
                        &[],
                    )?;
                    runner.exec_prepared(
                        Phase::PathExpansion,
                        FemOperator::M,
                        need(&stmts.insert_from_exp, "insert_from_exp")?,
                        &[Value::Int(n), Value::Int(n)],
                    )?;
                }
            }
            if !spec.bidi {
                runner.exec_prepared(
                    Phase::PathExpansion,
                    FemOperator::F,
                    &stmts.reset_frontier,
                    &[],
                )?;
            }
            runner.stats.expansions += 1;
        }
        // Bidirectional batches settle both directions' frontiers in one
        // fused scan (neither expansion touches the other side's flags, so
        // deferring the settle past the second expansion changes nothing).
        if spec.bidi && marked_f + marked_b > 0 {
            runner.exec_prepared(
                Phase::PathExpansion,
                FemOperator::F,
                need(&shared.reset_both, "reset_both")?,
                &[],
            )?;
        }

        // Statistics collection and per-qid termination. Bidirectional
        // batches fold minCost, both frontier minima and both candidate
        // counts into one scan, then retire queries whose minCost is proven
        // final (or whose candidates drained); the single-directional mode
        // refreshes its forward bounds and checks its target.
        let newly_done = if spec.bidi {
            runner.exec_prepared(
                Phase::StatsCollection,
                FemOperator::Aux,
                need(&shared.fused_stats, "fused_stats")?,
                &[],
            )?;
            runner
                .exec_prepared(
                    Phase::StatsCollection,
                    FemOperator::Aux,
                    need(&shared.mark_done_met, "mark_done_met")?,
                    &[],
                )?
                .rows_affected
                + runner
                    .exec_prepared(
                        Phase::StatsCollection,
                        FemOperator::Aux,
                        need(&shared.mark_done_drained, "mark_done_drained")?,
                        &[],
                    )?
                    .rows_affected
        } else {
            runner.exec_prepared(
                Phase::StatsCollection,
                FemOperator::Aux,
                need(&shared.clear_stats, "clear_stats")?,
                &[],
            )?;
            runner.exec_prepared(
                Phase::StatsCollection,
                FemOperator::Aux,
                need(&shared.refresh_stats, "refresh_stats")?,
                &[],
            )?;
            runner
                .exec_prepared(
                    Phase::StatsCollection,
                    FemOperator::Aux,
                    need(&shared.mark_done_target, "mark_done_target")?,
                    &[],
                )?
                .rows_affected
                + runner
                    .exec_prepared(
                        Phase::StatsCollection,
                        FemOperator::Aux,
                        need(&shared.mark_done_exhausted, "mark_done_exhausted")?,
                        &[],
                    )?
                    .rows_affected
        };
        // Retire finished queries immediately: recover their paths, then
        // drop their rows so later iterations only scan live queries. Every
        // done-marking statement touches distinct live bounds rows, so the
        // affected counts track the active population exactly.
        if newly_done > 0 {
            visited_retired += retire_done(
                &mut runner,
                &spec,
                &shared,
                &fwd_stmts,
                bwd_stmts.as_ref(),
                &live_map,
                &mut paths,
            )?;
            active = active.saturating_sub(newly_done);
        }
        if active == 0 {
            break;
        }
        if marked_f + marked_b == 0 {
            return Err(SqlError::Eval(format!(
                "{}: {} queries active but no frontier marked — likely a bug",
                spec.name, active
            )));
        }
        iters += 1;
        if iters > max_iters {
            return Err(SqlError::Eval(format!(
                "{} exceeded the iteration bound — likely a bug",
                spec.name
            )));
        }
    }
    // Retirement deleted each finished query's rows as it went, so the
    // final table count alone would under-report the visited set — add
    // back what retirement removed.
    let mut stats = runner.finish_stats("TBVisited");
    stats.visited_nodes += visited_retired;
    Ok(BatchOutcome { paths, stats })
}

/// Recovers the paths of every query marked done this iteration (the
/// batched Listings 3(3)/4(6), per qid), then deletes those queries' rows
/// from `TBVisited` and `TBounds`. Returns the number of visited rows
/// removed (for the batch's `visited_nodes` statistic).
fn retire_done(
    runner: &mut Runner<'_>,
    spec: &BatchSpec,
    shared: &BatchSharedStmts,
    fwd_stmts: &BatchDirStmts,
    bwd_stmts: Option<&BatchDirStmts>,
    live_map: &HashMap<i64, (i64, i64)>,
    paths: &mut [Option<Path>],
) -> Result<u64> {
    let bounds = runner.exec_prepared(
        Phase::FullPathRecovery,
        FemOperator::Aux,
        &shared.read_done_bounds,
        &[],
    )?;
    let done_rows = bounds
        .rows
        .ok_or_else(|| SqlError::Eval("expected bounds rows".into()))?
        .rows;
    let limit = runner.gdb.num_nodes() + 1;
    for row in done_rows {
        let (Some(qid), Some(min_cost)) = (row[0].as_i64(), row[1].as_i64()) else {
            continue;
        };
        let &(s, t) = live_map
            .get(&qid)
            .ok_or_else(|| SqlError::Eval(format!("bounds row for unknown qid {qid}")))?;
        if spec.bidi {
            if min_cost >= INF {
                continue; // unreachable: paths[qid] stays None
            }
            let meet = runner
                .scalar_prepared(
                    Phase::FullPathRecovery,
                    FemOperator::Aux,
                    need(&shared.meet_node, "meet_node")?,
                    &[Value::Int(qid), Value::Int(min_cost)],
                )?
                .ok_or_else(|| {
                    SqlError::Eval(format!("qid {qid}: no node realizes minCost {min_cost}"))
                })?;
            let mut nodes = walk_links(runner, &fwd_stmts.pred_of, Some(qid), meet, s, limit)?;
            nodes.reverse();
            nodes.push(meet);
            nodes.extend(walk_links(
                runner,
                &bwd_stmts
                    .ok_or_else(|| SqlError::Eval("batch mode bug: bwd statements missing".into()))?
                    .pred_of,
                Some(qid),
                meet,
                t,
                limit,
            )?);
            debug_assert_eq!(nodes.first(), Some(&s));
            debug_assert_eq!(nodes.last(), Some(&t));
            paths[qid as usize] = Some(Path {
                nodes,
                length: min_cost,
            });
        } else {
            // The target row exists iff the forward search reached it, and
            // its distance is final once the query is done.
            let Some(length) = runner.scalar_prepared(
                Phase::FullPathRecovery,
                FemOperator::Aux,
                &shared.dist_of_fwd,
                &[Value::Int(qid), Value::Int(t)],
            )?
            else {
                continue;
            };
            let mut nodes = walk_links(runner, &fwd_stmts.pred_of, Some(qid), t, s, limit)?;
            nodes.reverse();
            nodes.push(t);
            paths[qid as usize] = Some(Path { nodes, length });
        }
    }
    let visited_deleted = runner
        .exec_prepared(
            Phase::StatsCollection,
            FemOperator::Aux,
            &shared.delete_done_visited,
            &[],
        )?
        .rows_affected;
    runner.exec_prepared(
        Phase::StatsCollection,
        FemOperator::Aux,
        &shared.delete_done_bounds,
        &[],
    )?;
    Ok(visited_deleted)
}

/// **BatchDJ** — batched single-directional Dijkstra: every query expands
/// its minimal-distance candidate set forward until its target settles or
/// its frontier exhausts.
#[derive(Debug, Clone, Copy)]
pub struct BatchDjFinder {
    /// NSQL (window + MERGE) or TSQL (aggregate-join + UPDATE/INSERT).
    pub style: SqlStyle,
    /// Pairs in flight per tile ([`DEFAULT_BATCH_CHUNK`]; 0 = unlimited).
    pub chunk: usize,
}

impl Default for BatchDjFinder {
    fn default() -> Self {
        BatchDjFinder {
            style: SqlStyle::New,
            chunk: DEFAULT_BATCH_CHUNK,
        }
    }
}

impl BatchShortestPathFinder for BatchDjFinder {
    fn name(&self) -> &'static str {
        "BatchDJ"
    }

    fn find_paths(&self, gdb: &mut GraphDb, pairs: &[(i64, i64)]) -> Result<BatchOutcome> {
        run_batch_chunked(
            gdb,
            pairs,
            BatchSpec {
                name: "BatchDJ",
                bidi: false,
                frontier: BatchFrontier::PerQueryMin,
                style: self.style,
                prune: false,
                seed_bounds: false,
            },
            self.chunk,
        )
    }
}

/// **BatchBDJ** — batched bidirectional search: every query alternates
/// directions by its own frontier sizes, prunes expansions with its own
/// Theorem-1 bound from `TBounds`, and stops when its own
/// `minCost <= lf + lb`.
///
/// The per-query frontier defaults to [`BatchFrontier::All`] (BFS-style
/// label-correcting): per-iteration table scans are the dominant batch
/// cost, so fewer, fatter iterations win. [`BatchFrontier::PerQueryMin`]
/// gives the strict set-Dijkstra behaviour of the single-query BSDJ.
#[derive(Debug, Clone, Copy)]
pub struct BatchBdjFinder {
    pub style: SqlStyle,
    /// Theorem-1 pruning (on by default; off for the ablation bench).
    pub prune: bool,
    /// Seed each query's pruning ceiling from the landmark index when one
    /// exists (on by default; a no-op without an index).
    pub seed_bounds: bool,
    /// Per-query frontier policy.
    pub frontier: BatchFrontier,
    /// Pairs in flight per tile ([`DEFAULT_BATCH_CHUNK`]; 0 = unlimited).
    pub chunk: usize,
}

impl Default for BatchBdjFinder {
    fn default() -> Self {
        BatchBdjFinder {
            style: SqlStyle::New,
            prune: true,
            seed_bounds: true,
            frontier: BatchFrontier::default(),
            chunk: DEFAULT_BATCH_CHUNK,
        }
    }
}

impl BatchShortestPathFinder for BatchBdjFinder {
    fn name(&self) -> &'static str {
        "BatchBDJ"
    }

    fn find_paths(&self, gdb: &mut GraphDb, pairs: &[(i64, i64)]) -> Result<BatchOutcome> {
        run_batch_chunked(
            gdb,
            pairs,
            BatchSpec {
                name: "BatchBDJ",
                bidi: true,
                frontier: self.frontier,
                style: self.style,
                prune: self.prune,
                seed_bounds: self.seed_bounds,
            },
            self.chunk,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fempath_graph::generate;

    fn finders() -> Vec<Box<dyn BatchShortestPathFinder>> {
        vec![
            Box::new(BatchDjFinder::default()),
            Box::new(BatchDjFinder {
                style: SqlStyle::Traditional,
                ..Default::default()
            }),
            Box::new(BatchBdjFinder::default()),
            Box::new(BatchBdjFinder {
                frontier: BatchFrontier::PerQueryMin,
                ..Default::default()
            }),
            Box::new(BatchBdjFinder {
                prune: false,
                ..Default::default()
            }),
            Box::new(BatchBdjFinder {
                style: SqlStyle::Traditional,
                ..Default::default()
            }),
        ]
    }

    #[test]
    fn batch_matches_single_query_distances_on_grid() {
        let g = generate::grid(5, 5, 1..=10, 9);
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        let pairs: Vec<(i64, i64)> = vec![(0, 24), (3, 21), (12, 12), (24, 0), (0, 24)];
        let single = crate::algo::BsdjFinder::default();
        let expected: Vec<Option<i64>> = pairs
            .iter()
            .map(|&(s, t)| {
                use crate::algo::ShortestPathFinder;
                single
                    .find_path(&mut gdb, s, t)
                    .unwrap()
                    .path
                    .map(|p| p.length)
            })
            .collect();
        for f in finders() {
            let out = f.find_paths(&mut gdb, &pairs).unwrap();
            let got: Vec<Option<i64>> = out
                .paths
                .iter()
                .map(|p| p.as_ref().map(|p| p.length))
                .collect();
            assert_eq!(got, expected, "{} distances", f.name());
            for (i, p) in out.paths.iter().enumerate() {
                let p = p.as_ref().unwrap();
                assert_eq!(p.nodes.first(), Some(&pairs[i].0), "{} start", f.name());
                assert_eq!(p.nodes.last(), Some(&pairs[i].1), "{} end", f.name());
            }
            // Retirement deletes rows as queries finish; the stat must
            // still report the visited set, not the (empty) final table.
            assert!(
                out.stats.visited_nodes > 0,
                "{} visited_nodes must survive retirement",
                f.name()
            );
        }
    }

    #[test]
    fn batch_handles_unreachable_and_trivial_pairs() {
        // Two components: 0–1–2 and 3–4; node 5 isolated.
        let g =
            fempath_graph::Graph::from_undirected_edges(6, vec![(0, 1, 2), (1, 2, 3), (3, 4, 1)]);
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        let pairs = vec![(0, 2), (0, 4), (5, 5), (2, 5), (3, 4)];
        for f in finders() {
            let out = f.find_paths(&mut gdb, &pairs).unwrap();
            assert_eq!(out.paths[0].as_ref().map(|p| p.length), Some(5));
            assert!(
                out.paths[1].is_none(),
                "{}: 0->4 crosses components",
                f.name()
            );
            assert_eq!(
                out.paths[2].as_ref().map(|p| p.nodes.clone()),
                Some(vec![5]),
                "{}: trivial pair",
                f.name()
            );
            assert!(out.paths[3].is_none(), "{}: isolated target", f.name());
            assert_eq!(out.paths[4].as_ref().map(|p| p.length), Some(1));
        }
    }

    #[test]
    fn batch_rejects_invalid_nodes() {
        let g = generate::grid(2, 2, 1..=10, 1);
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        assert!(BatchBdjFinder::default()
            .find_paths(&mut gdb, &[(0, 9)])
            .is_err());
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let g = generate::grid(2, 2, 1..=10, 1);
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        let out = BatchBdjFinder::default().find_paths(&mut gdb, &[]).unwrap();
        assert!(out.paths.is_empty());
        assert_eq!(out.stats.sql_statements, 0);
    }
}
