//! **DJ** — the single-directional relational Dijkstra of Algorithm 1.
//!
//! Node-at-a-time: each iteration issues Listing 2(2) to find the next node
//! `mid`, the Listing 2(3)/(4) expansion with `q.nid = mid`, the finalize
//! statement of Listing 3(2), and the termination probe of Listing 3(1).
//! The paper runs this only up to 20 K nodes (Table 2: ">600 s" beyond) —
//! node-at-a-time evaluation is the point being criticised.

use super::{trivial_case, walk_links, Path, PathOutcome, Runner, ShortestPathFinder};
use crate::graphdb::{GraphDb, INF};
use crate::sqlgen::{expand_params, truncate_exp, Dir, EdgeSource, FrontierPred, SqlGen};
use crate::stats::{FemOperator, Phase, SqlStyle};
use fempath_sql::Result;
use fempath_storage::Value;

/// The DJ finder (Algorithm 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct DjFinder {
    /// NSQL (window + MERGE) or TSQL (aggregate-join + UPDATE/INSERT).
    pub style: SqlStyle,
}

impl ShortestPathFinder for DjFinder {
    fn name(&self) -> &'static str {
        "DJ"
    }

    fn find_path(&self, gdb: &mut GraphDb, s: i64, t: i64) -> Result<PathOutcome> {
        if let Some(out) = trivial_case(gdb, s, t)? {
            return Ok(out);
        }
        gdb.reset_visited()?;
        let use_merge = gdb.merge_supported() && self.style == SqlStyle::New;
        if !use_merge {
            gdb.reset_exp()?;
        }
        let gen = SqlGen::new(Dir::Fwd, EdgeSource::Edges, self.style);
        let max_iters = 4 * gdb.num_nodes() as u64 + 16;

        let mut runner = Runner::new(gdb);
        runner.exec(
            Phase::PathExpansion,
            FemOperator::Aux,
            &SqlGen::init(Dir::Fwd),
            &[Value::Int(s), Value::Int(s)],
        )?;

        let mut found = false;
        // Listing 2(2) locates the node to finalize; no candidate left means
        // the target is unreachable.
        while let Some(mid) = runner.scalar(
            Phase::StatsCollection,
            FemOperator::F,
            &gen.select_mid(),
            &[],
        )? {
            // E + M operators with `q.nid = mid` (Listing 2(3)/(4)).
            let params = expand_params(self.style, FrontierPred::ByNid, Some(mid), 0, INF);
            if use_merge {
                runner.exec(
                    Phase::PathExpansion,
                    FemOperator::E,
                    &gen.expand_merge(FrontierPred::ByNid),
                    &params,
                )?;
            } else {
                runner.exec(Phase::PathExpansion, FemOperator::Aux, truncate_exp(), &[])?;
                runner.exec(
                    Phase::PathExpansion,
                    FemOperator::E,
                    &gen.expand_into_exp(FrontierPred::ByNid),
                    &params,
                )?;
                if runner.gdb.merge_supported() {
                    runner.exec(
                        Phase::PathExpansion,
                        FemOperator::M,
                        &gen.merge_from_exp(),
                        &[],
                    )?;
                } else {
                    runner.exec(
                        Phase::PathExpansion,
                        FemOperator::M,
                        &gen.update_from_exp(),
                        &[],
                    )?;
                    runner.exec(
                        Phase::PathExpansion,
                        FemOperator::M,
                        &gen.insert_from_exp(),
                        &[],
                    )?;
                }
            }
            runner.stats.expansions += 1;
            // Listing 3(2): finalize `mid`.
            runner.exec(
                Phase::PathExpansion,
                FemOperator::Aux,
                &gen.settle_by_nid(),
                &[Value::Int(mid)],
            )?;
            // Listing 3(1): has the target been finalized?
            if mid == t {
                found = true;
                break;
            }
            let probe = runner.exec(
                Phase::StatsCollection,
                FemOperator::Aux,
                &gen.settled(),
                &[Value::Int(t)],
            )?;
            if probe.rows.map(|r| !r.is_empty()).unwrap_or(false) {
                found = true;
                break;
            }
            if runner.stats.expansions > max_iters {
                return Err(fempath_sql::SqlError::Eval(
                    "DJ exceeded the iteration bound — likely a bug".into(),
                ));
            }
        }

        let path = if found {
            let length = runner
                .scalar(
                    Phase::FullPathRecovery,
                    FemOperator::Aux,
                    &gen.dist_of(),
                    &[Value::Int(t)],
                )?
                .expect("settled target must have a distance");
            let node_limit = runner.gdb.num_nodes() + 1;
            let mut nodes = walk_links(&mut runner, &gen.pred_of(), t, s, node_limit)?;
            nodes.reverse();
            nodes.push(t);
            Some(Path { nodes, length })
        } else {
            None
        };
        runner.finish(path)
    }
}
