//! **DJ** — the single-directional relational Dijkstra of Algorithm 1.
//!
//! Node-at-a-time: each iteration issues Listing 2(2) to find the next node
//! `mid`, the Listing 2(3)/(4) expansion with `q.nid = mid`, the finalize
//! statement of Listing 3(2), and the termination probe of Listing 3(1).
//! The paper runs this only up to 20 K nodes (Table 2: ">600 s" beyond) —
//! node-at-a-time evaluation is the point being criticised.

use super::{need, trivial_case, walk_links, Path, PathOutcome, Runner, ShortestPathFinder};
use crate::graphdb::{GraphDb, INF};
use crate::sqlgen::{expand_params, truncate_exp, Dir, EdgeSource, FrontierPred, SqlGen};
use crate::stats::{FemOperator, Phase, SqlStyle};
use fempath_sql::Result;
use fempath_storage::Value;

/// The DJ finder (Algorithm 1).
#[derive(Debug, Clone, Copy)]
pub struct DjFinder {
    /// NSQL (window + MERGE) or TSQL (aggregate-join + UPDATE/INSERT).
    pub style: SqlStyle,
    /// Bound the expansion with the landmark triangle-inequality upper
    /// bound when an index exists (on by default; a no-op without one).
    pub seed_bounds: bool,
}

impl Default for DjFinder {
    fn default() -> Self {
        DjFinder {
            style: SqlStyle::default(),
            seed_bounds: true,
        }
    }
}

impl ShortestPathFinder for DjFinder {
    fn name(&self) -> &'static str {
        "DJ"
    }

    fn find_path(&self, gdb: &mut GraphDb, s: i64, t: i64) -> Result<PathOutcome> {
        if let Some(out) = trivial_case(gdb, s, t)? {
            return Ok(out);
        }
        // Landmark-seeded ceiling for the expansion's pruning term: every
        // prefix of an optimal path has distance <= D <= U, so relaxing up
        // to (but excluding) U + 1 preserves exactness while skipping
        // candidates strictly above the triangle-inequality bound.
        let bound = if self.seed_bounds && gdb.landmarks().is_some() {
            crate::landmarks::upper_bound(gdb, s, t)?.map_or(INF, |u| u.saturating_add(1).min(INF))
        } else {
            INF
        };
        gdb.reset_visited()?;
        let use_merge = gdb.merge_supported() && self.style == SqlStyle::New;
        if !use_merge {
            gdb.reset_exp()?;
        }
        let gen = SqlGen::new(Dir::Fwd, EdgeSource::Edges, self.style);
        let max_iters = 4 * gdb.num_nodes() as u64 + 16;

        // Prepare the statement set once; the loop executes handles only.
        let merge_supported = gdb.merge_supported();
        let db = &mut gdb.db;
        let init = db.prepare(&SqlGen::init(Dir::Fwd))?;
        let select_mid = db.prepare(&gen.select_mid())?;
        let expand = if use_merge {
            db.prepare(&gen.expand_merge(FrontierPred::ByNid))?
        } else {
            db.prepare(&gen.expand_into_exp(FrontierPred::ByNid))?
        };
        let truncate = if use_merge {
            None
        } else {
            Some(db.prepare(truncate_exp())?)
        };
        let merge_from = if !use_merge && merge_supported {
            Some(db.prepare(&gen.merge_from_exp())?)
        } else {
            None
        };
        let (update_from, insert_from) = if !use_merge && !merge_supported {
            (
                Some(db.prepare(&gen.update_from_exp())?),
                Some(db.prepare(&gen.insert_from_exp())?),
            )
        } else {
            (None, None)
        };
        let settle = db.prepare(&gen.settle_by_nid())?;
        let settled = db.prepare(&gen.settled())?;
        let dist_of = db.prepare(&gen.dist_of())?;
        let pred_of = db.prepare(&gen.pred_of())?;

        let mut runner = Runner::new(gdb);
        runner.exec_prepared(
            Phase::PathExpansion,
            FemOperator::Aux,
            &init,
            &[Value::Int(s), Value::Int(s)],
        )?;

        let mut found = false;
        // Listing 2(2) locates the node to finalize; no candidate left means
        // the target is unreachable.
        while let Some(mid) =
            runner.scalar_prepared(Phase::StatsCollection, FemOperator::F, &select_mid, &[])?
        {
            // E + M operators with `q.nid = mid` (Listing 2(3)/(4)).
            let params = expand_params(self.style, FrontierPred::ByNid, Some(mid), 0, bound)?;
            if use_merge {
                runner.exec_prepared(Phase::PathExpansion, FemOperator::E, &expand, &params)?;
            } else {
                runner.exec_prepared(
                    Phase::PathExpansion,
                    FemOperator::Aux,
                    need(&truncate, "truncate_exp")?,
                    &[],
                )?;
                runner.exec_prepared(Phase::PathExpansion, FemOperator::E, &expand, &params)?;
                if let Some(m) = &merge_from {
                    runner.exec_prepared(Phase::PathExpansion, FemOperator::M, m, &[])?;
                } else {
                    runner.exec_prepared(
                        Phase::PathExpansion,
                        FemOperator::M,
                        need(&update_from, "update_from_exp")?,
                        &[],
                    )?;
                    runner.exec_prepared(
                        Phase::PathExpansion,
                        FemOperator::M,
                        need(&insert_from, "insert_from_exp")?,
                        &[],
                    )?;
                }
            }
            runner.stats.expansions += 1;
            // Listing 3(2): finalize `mid`.
            runner.exec_prepared(
                Phase::PathExpansion,
                FemOperator::Aux,
                &settle,
                &[Value::Int(mid)],
            )?;
            // Listing 3(1): has the target been finalized?
            if mid == t {
                found = true;
                break;
            }
            let probe = runner.exec_prepared(
                Phase::StatsCollection,
                FemOperator::Aux,
                &settled,
                &[Value::Int(t)],
            )?;
            if probe.rows.map(|r| !r.is_empty()).unwrap_or(false) {
                found = true;
                break;
            }
            if runner.stats.expansions > max_iters {
                return Err(fempath_sql::SqlError::Eval(
                    "DJ exceeded the iteration bound — likely a bug".into(),
                ));
            }
        }

        let path = if found {
            let length = runner
                .scalar_prepared(
                    Phase::FullPathRecovery,
                    FemOperator::Aux,
                    &dist_of,
                    &[Value::Int(t)],
                )?
                .ok_or_else(|| {
                    fempath_sql::SqlError::Eval("settled target has no distance row".into())
                })?;
            let node_limit = runner.gdb.num_nodes() + 1;
            let mut nodes = walk_links(&mut runner, &pred_of, None, t, s, node_limit)?;
            nodes.reverse();
            nodes.push(t);
            Some(Path { nodes, length })
        } else {
            None
        };
        runner.finish(path)
    }
}
