//! Landmark distance index over the relational store (DESIGN.md §12).
//!
//! The paper contrasts its *online* discovery with precomputed indices and
//! cites landmark estimation (Potamias et al. \[19\], Goldberg & Harrelson
//! \[2\]) as the representative offline alternative. This module implements
//! it on top of the FEM machinery: shortest-path trees from `k` selected
//! landmarks are computed with [`crate::sssp::single_source`] and stored in
//! a `TLandmarks(lm, nid, d, p)` table — `d` the distance from landmark
//! `lm` to `nid`, `p` the predecessor of `nid` in `lm`'s tree. Each tree is
//! copied out of `TVisited` with a single `INSERT … SELECT`, so the build
//! itself runs through the executor's batched DML path.
//!
//! Estimates come from single SQL aggregates using the triangle inequality
//! (graphs are stored symmetrically, DESIGN.md §4, so `d(lm, v) = d(v,
//! lm)`):
//!
//! * upper bound:  `min over lm of d(s, lm) + d(lm, t)`
//! * lower bound:  `max over lm of |d(s, lm) − d(lm, t)|`
//!
//! The index feeds serving twice. [`upper_bound`] seeds the Theorem-1
//! pruning term of the DJ/BDJ/BatchBDJ finders (see `algo::bidi` for the
//! admissibility argument). [`exact_path`] answers *covered* pairs — upper
//! bound equals lower bound — without touching any FEM working table: the
//! witness landmark realizing the bound then lies on a shortest path, and
//! the stored parent pointers recover that path by two tree walks.

use crate::algo::Path;
use crate::graphdb::{GraphDb, LandmarkInfo, INF, NO_NODE};
use crate::sqlgen::AnnotatedSql;
use crate::sssp::single_source;
use fempath_sql::{Result, SqlError};
use fempath_storage::Value;

// The statement texts live in consts/helpers shared with
// [`statement_corpus`], so the analyzed corpus is byte-for-byte what the
// serving and build paths execute.
const CREATE_SQL: &str = "CREATE TABLE TLandmarks (lm INT, nid INT, d INT, p INT)";
const INDEX_SQL: &str = "CREATE CLUSTERED INDEX idx_tlandmarks ON TLandmarks(nid)";
const CAND_UNCHOSEN: &str = "(SELECT fid, COUNT(*) AS deg FROM TEdges \
                             WHERE fid NOT IN (SELECT lm FROM TLandmarks WHERE lm IS NOT NULL) \
                             GROUP BY fid) cand";
const CAND_UNCOVERED: &str = "(SELECT fid, COUNT(*) AS deg FROM TEdges \
                              WHERE fid NOT IN (SELECT nid FROM TLandmarks WHERE nid IS NOT NULL) \
                              GROUP BY fid) cand";
const COV: &str = "(SELECT nid, MIN(d) AS md FROM TLandmarks GROUP BY nid) cov";
const UPPER_SQL: &str = "SELECT MIN(a.d + b.d) FROM TLandmarks a, TLandmarks b \
                         WHERE a.nid = ? AND b.nid = ? AND a.lm = b.lm";
const LOWER_FWD_SQL: &str = "SELECT MAX(a.d - b.d) FROM TLandmarks a, TLandmarks b \
                             WHERE a.nid = ? AND b.nid = ? AND a.lm = b.lm";
const LOWER_REV_SQL: &str = "SELECT MAX(b.d - a.d) FROM TLandmarks a, TLandmarks b \
                             WHERE a.nid = ? AND b.nid = ? AND a.lm = b.lm";
const COMMON_SQL: &str = "SELECT MIN(a.lm) FROM TLandmarks a, TLandmarks b \
                          WHERE a.nid = ? AND b.nid = ? AND a.lm = b.lm";
const WITNESS_SQL: &str = "SELECT MIN(a.lm) FROM TLandmarks a, TLandmarks b \
                           WHERE a.nid = ? AND b.nid = ? AND a.lm = b.lm AND a.d + b.d = ?";
const WALK_SQL: &str = "SELECT p FROM TLandmarks WHERE lm = ? AND nid = ?";

fn store_tree_sql(lm: i64) -> String {
    format!(
        "INSERT INTO TLandmarks (lm, nid, d, p) \
         SELECT {lm}, nid, d2s, p2s FROM TVisited WHERE d2s < {INF}"
    )
}

/// Every statement the landmark subsystem issues, annotated for the static
/// analyzer. All statements reference `TLandmarks`, so the corpus walker
/// only includes them once the index is built. The serving probes
/// ([`estimate_distance`], [`upper_bound`], [`common_landmark`], the
/// [`exact_path`] witness and `walk_tree`) are hot: each must ride the
/// clustered `nid` index. Build and selection statements are cold — they
/// run once per index build.
pub fn statement_corpus() -> Vec<AnnotatedSql> {
    vec![
        AnnotatedSql::cold("lm/create_table", CREATE_SQL),
        AnnotatedSql::cold("lm/store_tree", store_tree_sql(0)),
        AnnotatedSql::cold("lm/create_index", INDEX_SQL),
        AnnotatedSql::cold(
            "lm/pick_unchosen/max",
            format!("SELECT MAX(deg) FROM {CAND_UNCHOSEN}"),
        ),
        AnnotatedSql::cold(
            "lm/pick_unchosen/argmin",
            format!("SELECT MIN(fid) FROM {CAND_UNCHOSEN} WHERE deg = ?"),
        ),
        AnnotatedSql::cold(
            "lm/pick_uncovered/max",
            format!("SELECT MAX(deg) FROM {CAND_UNCOVERED}"),
        ),
        AnnotatedSql::cold(
            "lm/pick_uncovered/argmin",
            format!("SELECT MIN(fid) FROM {CAND_UNCOVERED} WHERE deg = ?"),
        ),
        AnnotatedSql::cold("lm/pick_farthest/max", format!("SELECT MAX(md) FROM {COV}")),
        AnnotatedSql::cold(
            "lm/pick_farthest/argmin",
            format!("SELECT MIN(nid) FROM {COV} WHERE md = ?"),
        ),
        AnnotatedSql::hot("lm/estimate/upper", UPPER_SQL),
        AnnotatedSql::hot("lm/estimate/lower_fwd", LOWER_FWD_SQL),
        AnnotatedSql::hot("lm/estimate/lower_rev", LOWER_REV_SQL),
        AnnotatedSql::hot("lm/common_landmark", COMMON_SQL),
        AnnotatedSql::hot("lm/exact_path/witness", WITNESS_SQL),
        AnnotatedSql::hot("lm/walk_tree", WALK_SQL),
    ]
}

/// Bounds on δ(s, t) derived from the landmark table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistanceBounds {
    /// `max |d(s,lm) − d(lm,t)|` — never exceeds the true distance.
    pub lower: i64,
    /// `min d(s,lm) + d(lm,t)` — never below the true distance.
    pub upper: i64,
}

/// How [`build_landmark_index`] picks its `k` landmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LandmarkSelection {
    /// Highest out-degree nodes (ties broken by lowest id). Cheap and
    /// effective on power-law graphs, where hubs sit on many shortest
    /// paths.
    Degree,
    /// Degree- *and* coverage-based: the first landmark is the highest
    /// degree node; each later one is the highest-degree node no existing
    /// tree reaches (new components get covered first), falling back to
    /// the node farthest from every landmark once the whole graph is
    /// covered (spreading landmarks apart tightens both bounds).
    #[default]
    DegreeCoverage,
}

/// What [`build_landmark_index`] built.
#[derive(Debug, Clone)]
pub struct LandmarkStats {
    /// The selected landmark nodes, in selection order.
    pub landmarks: Vec<i64>,
    /// `(lm, nid)` rows stored in `TLandmarks`.
    pub pairs: u64,
    /// Total set-at-a-time SSSP iterations spent building the trees.
    pub sssp_iterations: u64,
}

/// Builds the landmark table from explicitly given landmark nodes. Returns
/// the number of `(landmark, node)` distance pairs stored.
pub fn build_landmarks(gdb: &mut GraphDb, landmarks: &[i64]) -> Result<u64> {
    if landmarks.is_empty() {
        return Err(SqlError::Eval("need at least one landmark".into()));
    }
    for &lm in landmarks {
        gdb.check_node(lm)?;
    }
    reset_table(gdb)?;
    for &lm in landmarks {
        store_tree(gdb, lm)?;
    }
    let pairs = finish_build(gdb, landmarks.len())?;
    Ok(pairs)
}

/// Builds a `k`-landmark index with automatic landmark selection (the
/// serving entry point — [`GraphDb::build_landmarks`] delegates here).
///
/// Selection may stop early with fewer than `k` landmarks when the
/// candidate pool runs dry (tiny graphs); a graph with no edges at all has
/// no useful landmark and errors.
pub fn build_landmark_index(
    gdb: &mut GraphDb,
    k: usize,
    selection: LandmarkSelection,
) -> Result<LandmarkStats> {
    if k == 0 {
        return Err(SqlError::Eval("need at least one landmark".into()));
    }
    reset_table(gdb)?;
    let mut chosen: Vec<i64> = Vec::with_capacity(k);
    let mut sssp_iterations = 0u64;
    while chosen.len() < k {
        let cand = match selection {
            LandmarkSelection::Degree => pick_max_degree_unchosen(gdb)?,
            LandmarkSelection::DegreeCoverage => {
                if chosen.is_empty() {
                    pick_max_degree_unchosen(gdb)?
                } else {
                    match pick_max_degree_uncovered(gdb)? {
                        Some(c) => Some(c),
                        None => pick_farthest_covered(gdb)?,
                    }
                }
            }
        };
        let Some(lm) = cand else { break };
        sssp_iterations += store_tree(gdb, lm)?;
        chosen.push(lm);
    }
    if chosen.is_empty() {
        return Err(SqlError::Eval(
            "no landmark candidates: graph has no edges".into(),
        ));
    }
    let pairs = finish_build(gdb, chosen.len())?;
    Ok(LandmarkStats {
        landmarks: chosen,
        pairs,
        sssp_iterations,
    })
}

fn reset_table(gdb: &mut GraphDb) -> Result<()> {
    gdb.db.execute("DROP TABLE IF EXISTS TLandmarks")?;
    gdb.db.execute(CREATE_SQL)?;
    Ok(())
}

/// Runs one SSSP from `lm` and copies its tree into `TLandmarks` with a
/// single `INSERT … SELECT` over `TVisited` — the batched DML path of the
/// vectorized executor (`Table::insert_chunk`), not row-at-a-time VALUES.
/// Returns the SSSP iteration count.
fn store_tree(gdb: &mut GraphDb, lm: i64) -> Result<u64> {
    let res = single_source(gdb, lm)?;
    gdb.db.execute(&store_tree_sql(lm))?;
    Ok(res.iterations)
}

/// Creates the clustered `nid` index (after all inserts, so the bulk loads
/// hit the heap path) and records the index on the [`GraphDb`].
fn finish_build(gdb: &mut GraphDb, k: usize) -> Result<u64> {
    gdb.db.execute(INDEX_SQL)?;
    let pairs = gdb.db.table_len("TLandmarks")?;
    gdb.set_landmarks(LandmarkInfo { k, pairs });
    Ok(pairs)
}

/// Highest-degree node that is not already a landmark (ties → lowest id),
/// via two aggregates (the engine has no ORDER BY … LIMIT idiom we rely
/// on): first the maximal degree, then the minimal node realizing it.
fn pick_max_degree_unchosen(gdb: &mut GraphDb) -> Result<Option<i64>> {
    let Some(maxdeg) = gdb
        .db
        .query(&format!("SELECT MAX(deg) FROM {CAND_UNCHOSEN}"))?
        .scalar_i64()
    else {
        return Ok(None);
    };
    gdb.db
        .query_params(
            &format!("SELECT MIN(fid) FROM {CAND_UNCHOSEN} WHERE deg = ?"),
            &[Value::Int(maxdeg)],
        )
        .map(|rs| rs.scalar_i64())
}

/// Highest-degree node no existing landmark tree reaches.
fn pick_max_degree_uncovered(gdb: &mut GraphDb) -> Result<Option<i64>> {
    let Some(maxdeg) = gdb
        .db
        .query(&format!("SELECT MAX(deg) FROM {CAND_UNCOVERED}"))?
        .scalar_i64()
    else {
        return Ok(None);
    };
    gdb.db
        .query_params(
            &format!("SELECT MIN(fid) FROM {CAND_UNCOVERED} WHERE deg = ?"),
            &[Value::Int(maxdeg)],
        )
        .map(|rs| rs.scalar_i64())
}

/// The covered node farthest from its nearest landmark; `None` once only
/// landmarks themselves remain (their min-distance is 0).
fn pick_farthest_covered(gdb: &mut GraphDb) -> Result<Option<i64>> {
    let Some(maxd) = gdb
        .db
        .query(&format!("SELECT MAX(md) FROM {COV}"))?
        .scalar_i64()
    else {
        return Ok(None);
    };
    if maxd <= 0 {
        return Ok(None);
    }
    gdb.db
        .query_params(
            &format!("SELECT MIN(nid) FROM {COV} WHERE md = ?"),
            &[Value::Int(maxd)],
        )
        .map(|rs| rs.scalar_i64())
}

/// Estimates δ(s, t) from the landmark table via one SQL aggregate per
/// bound. Returns `None` when no landmark reaches both endpoints.
pub fn estimate_distance(gdb: &mut GraphDb, s: i64, t: i64) -> Result<Option<DistanceBounds>> {
    gdb.check_node(s)?;
    gdb.check_node(t)?;
    if !gdb.db.has_table("TLandmarks") {
        return Err(SqlError::Eval(
            "no landmark table: call build_landmarks first".into(),
        ));
    }
    if s == t {
        return Ok(Some(DistanceBounds { lower: 0, upper: 0 }));
    }
    let upper = gdb
        .db
        .query_params(UPPER_SQL, &[Value::Int(s), Value::Int(t)])?
        .scalar_i64();
    let Some(upper) = upper else {
        return Ok(None);
    };
    // |x| via MAX of both signs (the engine has no ABS function — the
    // paper's SQL stays within basic arithmetic too).
    let lower = gdb
        .db
        .query_params(LOWER_FWD_SQL, &[Value::Int(s), Value::Int(t)])?
        .scalar_i64()
        .unwrap_or(0);
    let lower_rev = gdb
        .db
        .query_params(LOWER_REV_SQL, &[Value::Int(s), Value::Int(t)])?
        .scalar_i64()
        .unwrap_or(0);
    Ok(Some(DistanceBounds {
        lower: lower.max(lower_rev).max(0),
        upper,
    }))
}

/// The landmark triangle-inequality upper bound on δ(s, t), or `None` when
/// no index is built or no landmark reaches both endpoints. This is the
/// cheap single-aggregate probe the finders use to seed their Theorem-1
/// pruning bound; unlike [`estimate_distance`] it is a silent no-op
/// (`None`) on databases without an index.
pub fn upper_bound(gdb: &mut GraphDb, s: i64, t: i64) -> Result<Option<i64>> {
    if gdb.landmarks().is_none() {
        return Ok(None);
    }
    if s == t {
        return Ok(Some(0));
    }
    Ok(gdb
        .db
        .query_params(UPPER_SQL, &[Value::Int(s), Value::Int(t)])?
        .scalar_i64())
}

/// A landmark whose tree contains both `s` and `t`, or `None`. A common
/// landmark proves `s` and `t` are connected (storage is symmetric, so the
/// two tree paths concatenate into an s–t walk) — [`crate::reach`] uses
/// this as a constant-time shortcut before falling back to FEM search.
pub fn common_landmark(gdb: &mut GraphDb, s: i64, t: i64) -> Result<Option<i64>> {
    if gdb.landmarks().is_none() {
        return Ok(None);
    }
    Ok(gdb
        .db
        .query_params(COMMON_SQL, &[Value::Int(s), Value::Int(t)])?
        .scalar_i64())
}

/// The exact-or-nothing fast path: answers (s, t) without running FEM at
/// all when the landmark bounds pin the distance exactly (upper == lower
/// — which covers every pair where `s` or `t` *is* a landmark, and any
/// pair some landmark tree threads through). Returns `None` on uncovered
/// pairs — including every pair when no index is built — so callers fall
/// back to a full search. Never touches `TVisited` or any other FEM
/// working table.
///
/// Correctness of the recovered path: when `upper == lower == D`, the
/// witness landmark `lm` realizing the upper bound satisfies
/// `d(s,lm) + d(lm,t) = D = δ(s,t)`, so `lm` lies **on** a shortest s–t
/// path; walking `s`'s and `t`'s parent chains in `lm`'s stored tree and
/// concatenating them yields a walk of weight exactly `D` (a repeated
/// node would imply a positive-weight cycle cut shorter than `D`, so the
/// walk is simple).
pub fn exact_path(gdb: &mut GraphDb, s: i64, t: i64) -> Result<Option<Path>> {
    if gdb.landmarks().is_none() {
        return Ok(None);
    }
    gdb.check_node(s)?;
    gdb.check_node(t)?;
    if s == t {
        return Ok(Some(Path {
            nodes: vec![s],
            length: 0,
        }));
    }
    let Some(b) = estimate_distance(gdb, s, t)? else {
        return Ok(None);
    };
    if b.lower != b.upper {
        return Ok(None);
    }
    let d = b.upper;
    let lm = gdb
        .db
        .query_params(WITNESS_SQL, &[Value::Int(s), Value::Int(t), Value::Int(d)])?
        .scalar_i64()
        .ok_or_else(|| SqlError::Eval("landmark upper bound has no witness row".into()))?;
    let limit = gdb.num_nodes() + 1;
    // `s → … → lm` (tree edges traversed child-to-parent are valid under
    // symmetric storage), then `lm → … → t` (parent-to-child order).
    let mut nodes = walk_tree(gdb, lm, s, limit)?;
    let mut tail = walk_tree(gdb, lm, t, limit)?;
    tail.pop(); // both walks end at lm; keep one copy
    tail.reverse();
    nodes.extend(tail);
    Ok(Some(Path { nodes, length: d }))
}

/// Parent-chain walk `from → … → lm` in `lm`'s stored tree (inclusive of
/// both endpoints).
fn walk_tree(gdb: &mut GraphDb, lm: i64, from: i64, limit: usize) -> Result<Vec<i64>> {
    let mut nodes = vec![from];
    let mut cur = from;
    while cur != lm {
        let p = gdb
            .db
            .query_params(WALK_SQL, &[Value::Int(lm), Value::Int(cur)])?
            .scalar_i64()
            .ok_or_else(|| SqlError::Eval(format!("broken landmark parent chain at node {cur}")))?;
        if p == NO_NODE || p == cur {
            return Err(SqlError::Eval(format!(
                "landmark parent chain stuck at node {cur}"
            )));
        }
        cur = p;
        nodes.push(cur);
        if nodes.len() > limit {
            return Err(SqlError::Eval("landmark parent chain has a cycle".into()));
        }
    }
    Ok(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fempath_graph::generate;
    use fempath_inmem::dijkstra;

    #[test]
    fn bounds_bracket_the_true_distance() {
        let g = generate::power_law(300, 3, 1..=100, 3);
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        let pairs_stored = build_landmarks(&mut gdb, &[0, 50, 150, 250]).unwrap();
        assert!(pairs_stored >= 4 * 250, "landmarks cover the graph");
        for (s, t) in [(1i64, 299i64), (17, 200), (42, 137), (99, 100)] {
            let truth = dijkstra::shortest_path(&g, s as u32, t as u32)
                .unwrap()
                .distance as i64;
            let b = estimate_distance(&mut gdb, s, t).unwrap().unwrap();
            assert!(
                b.lower <= truth && truth <= b.upper,
                "{s}->{t}: bounds [{}, {}] must bracket {truth}",
                b.lower,
                b.upper
            );
        }
    }

    #[test]
    fn landmark_endpoint_is_exact() {
        let g = generate::grid(6, 6, 1..=10, 5);
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        build_landmarks(&mut gdb, &[0]).unwrap();
        // Estimating distance to the landmark itself is exact: the upper
        // bound d(s,0)+d(0,0) equals the lower bound |d(s,0)-0|.
        let truth = dijkstra::distances_from(&g, 0);
        for s in [5i64, 20, 35] {
            let b = estimate_distance(&mut gdb, s, 0).unwrap().unwrap();
            assert_eq!(b.lower, b.upper);
            assert_eq!(b.upper as u64, truth[s as usize]);
        }
    }

    #[test]
    fn disconnected_endpoints_give_none() {
        let g = fempath_graph::Graph::from_undirected_edges(4, vec![(0, 1, 1), (2, 3, 1)]);
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        build_landmarks(&mut gdb, &[0]).unwrap();
        // Landmark 0 never reaches node 2.
        assert_eq!(estimate_distance(&mut gdb, 1, 2).unwrap(), None);
        assert_eq!(exact_path(&mut gdb, 1, 2).unwrap(), None);
        assert_eq!(common_landmark(&mut gdb, 1, 2).unwrap(), None);
    }

    #[test]
    fn more_landmarks_tighten_the_upper_bound() {
        let g = generate::grid(8, 8, 1..=10, 7);
        let (s, t) = (0i64, 63i64);
        let mut one = GraphDb::in_memory(&g).unwrap();
        build_landmarks(&mut one, &[27]).unwrap();
        let b1 = estimate_distance(&mut one, s, t).unwrap().unwrap();
        let mut many = GraphDb::in_memory(&g).unwrap();
        build_landmarks(&mut many, &[27, 0, 7, 56, 63]).unwrap();
        let bm = estimate_distance(&mut many, s, t).unwrap().unwrap();
        assert!(bm.upper <= b1.upper, "{} vs {}", bm.upper, b1.upper);
        assert!(bm.lower >= b1.lower);
    }

    #[test]
    fn automatic_selection_builds_a_working_index() {
        let g = generate::power_law(200, 3, 1..=100, 13);
        for selection in [LandmarkSelection::Degree, LandmarkSelection::DegreeCoverage] {
            let mut gdb = GraphDb::in_memory(&g).unwrap();
            let stats = build_landmark_index(&mut gdb, 5, selection).unwrap();
            assert_eq!(stats.landmarks.len(), 5, "{selection:?}");
            // No landmark repeats.
            let mut uniq = stats.landmarks.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), 5, "{selection:?}: duplicate landmark");
            assert_eq!(gdb.landmarks().unwrap().k, 5);
            assert_eq!(gdb.landmarks().unwrap().pairs, stats.pairs);
            let b = estimate_distance(&mut gdb, 1, 199).unwrap().unwrap();
            let truth = dijkstra::shortest_path(&g, 1, 199).unwrap().distance as i64;
            assert!(b.lower <= truth && truth <= b.upper, "{selection:?}");
        }
    }

    #[test]
    fn coverage_selection_reaches_every_component() {
        // Two components; pure degree selection could stay in the first,
        // coverage must plant a landmark in both.
        let g = fempath_graph::Graph::from_undirected_edges(
            7,
            vec![(0, 1, 1), (0, 2, 1), (0, 3, 1), (4, 5, 1), (5, 6, 1)],
        );
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        let stats = build_landmark_index(&mut gdb, 2, LandmarkSelection::DegreeCoverage).unwrap();
        assert_eq!(stats.landmarks.len(), 2);
        let in_first = stats.landmarks.iter().any(|&l| l <= 3);
        let in_second = stats.landmarks.iter().any(|&l| l >= 4);
        assert!(in_first && in_second, "landmarks: {:?}", stats.landmarks);
        // Pairs inside the second component are now covered.
        assert!(estimate_distance(&mut gdb, 4, 6).unwrap().is_some());
    }

    #[test]
    fn selection_stops_early_on_tiny_graphs() {
        let g = fempath_graph::Graph::from_undirected_edges(2, vec![(0, 1, 5)]);
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        let stats = build_landmark_index(&mut gdb, 10, LandmarkSelection::DegreeCoverage).unwrap();
        assert!(stats.landmarks.len() <= 2, "{:?}", stats.landmarks);
        assert_eq!(
            exact_path(&mut gdb, 0, 1).unwrap().unwrap().length,
            5,
            "both nodes are in the landmark tree"
        );
    }

    #[test]
    fn exact_path_is_a_real_shortest_walk() {
        let g = generate::grid(7, 7, 1..=9, 21);
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        gdb.build_landmarks(4).unwrap();
        let mut covered = 0;
        for s in 0..49i64 {
            for t in 0..49i64 {
                let Some(p) = exact_path(&mut gdb, s, t).unwrap() else {
                    continue;
                };
                covered += 1;
                let truth = dijkstra::shortest_path(&g, s as u32, t as u32)
                    .expect("covered pair must be reachable")
                    .distance;
                assert_eq!(p.length as u64, truth, "{s}->{t}");
                assert_eq!(p.nodes.first(), Some(&s));
                assert_eq!(p.nodes.last(), Some(&t));
                let mut walked = 0u64;
                for w in p.nodes.windows(2) {
                    let arc = g
                        .out_arcs(w[0] as u32)
                        .iter()
                        .filter(|a| a.to == w[1] as u32)
                        .map(|a| a.weight)
                        .min()
                        .unwrap_or_else(|| panic!("{s}->{t}: edge {}->{} missing", w[0], w[1]));
                    walked += arc as u64;
                }
                assert_eq!(walked, truth, "{s}->{t}: walk weight");
            }
        }
        // At minimum every pair with a landmark endpoint is covered.
        assert!(covered >= 4 * 49, "only {covered} covered pairs");
    }

    #[test]
    fn fast_path_writes_no_fem_tables() {
        let g = generate::grid(5, 5, 1..=10, 2);
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        let stats = gdb.build_landmarks(2).unwrap();
        let lm = stats.landmarks[0];
        gdb.reset_visited().unwrap();
        let before = gdb.db.table_len("TVisited").unwrap();
        let p = exact_path(&mut gdb, 7, lm).unwrap();
        assert!(p.is_some(), "landmark endpoint is always covered");
        assert_eq!(
            gdb.db.table_len("TVisited").unwrap(),
            before,
            "fast path must not write FEM working tables"
        );
    }
}
