//! Landmark-based distance estimation over the relational store.
//!
//! The paper contrasts its *online* discovery with precomputed indices and
//! cites landmark estimation (Potamias et al. \[19\], Goldberg & Harrelson
//! \[2\]) as the representative offline alternative. This module implements
//! it on top of the FEM machinery: distances from `k` landmark nodes are
//! computed with [`crate::sssp::single_source`] and stored in a
//! `TLandmarks(lm, nid, d)` table; estimates then come from single SQL
//! aggregates using the triangle inequality:
//!
//! * upper bound:  `min over lm of d(s, lm) + d(lm, t)`
//! * lower bound:  `max over lm of |d(s, lm) − d(lm, t)|`

use crate::graphdb::GraphDb;
use crate::sssp::single_source;
use fempath_sql::{Result, SqlError};
use fempath_storage::Value;

/// Bounds on δ(s, t) derived from the landmark table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistanceBounds {
    /// `max |d(s,lm) − d(lm,t)|` — never exceeds the true distance.
    pub lower: i64,
    /// `min d(s,lm) + d(lm,t)` — never below the true distance.
    pub upper: i64,
}

/// Builds the landmark table from the given landmark nodes. Returns the
/// number of `(landmark, node)` distance pairs stored.
pub fn build_landmarks(gdb: &mut GraphDb, landmarks: &[i64]) -> Result<u64> {
    if landmarks.is_empty() {
        return Err(SqlError::Eval("need at least one landmark".into()));
    }
    gdb.db.execute("DROP TABLE IF EXISTS TLandmarks")?;
    gdb.db
        .execute("CREATE TABLE TLandmarks (lm INT, nid INT, d INT)")?;
    for &lm in landmarks {
        let res = single_source(gdb, lm)?;
        for chunk in res.entries.chunks(256) {
            let placeholders: Vec<&str> = chunk.iter().map(|_| "(?, ?, ?)").collect();
            let sql = format!(
                "INSERT INTO TLandmarks (lm, nid, d) VALUES {}",
                placeholders.join(", ")
            );
            let mut params = Vec::with_capacity(chunk.len() * 3);
            for e in chunk {
                params.push(Value::Int(lm));
                params.push(Value::Int(e.node));
                params.push(Value::Int(e.distance));
            }
            gdb.db.execute_params(&sql, &params)?;
        }
    }
    gdb.db
        .execute("CREATE CLUSTERED INDEX idx_tlandmarks ON TLandmarks(nid)")?;
    gdb.db.table_len("TLandmarks")
}

/// Estimates δ(s, t) from the landmark table via one SQL aggregate per
/// bound. Returns `None` when no landmark reaches both endpoints.
pub fn estimate_distance(gdb: &mut GraphDb, s: i64, t: i64) -> Result<Option<DistanceBounds>> {
    gdb.check_node(s)?;
    gdb.check_node(t)?;
    if !gdb.db.has_table("TLandmarks") {
        return Err(SqlError::Eval(
            "no landmark table: call build_landmarks first".into(),
        ));
    }
    if s == t {
        return Ok(Some(DistanceBounds { lower: 0, upper: 0 }));
    }
    let upper = gdb
        .db
        .query_params(
            "SELECT MIN(a.d + b.d) FROM TLandmarks a, TLandmarks b \
             WHERE a.nid = ? AND b.nid = ? AND a.lm = b.lm",
            &[Value::Int(s), Value::Int(t)],
        )?
        .scalar_i64();
    let Some(upper) = upper else {
        return Ok(None);
    };
    // |x| via MAX of both signs (the engine has no ABS function — the
    // paper's SQL stays within basic arithmetic too).
    let lower = gdb
        .db
        .query_params(
            "SELECT MAX(a.d - b.d) FROM TLandmarks a, TLandmarks b \
             WHERE a.nid = ? AND b.nid = ? AND a.lm = b.lm",
            &[Value::Int(s), Value::Int(t)],
        )?
        .scalar_i64()
        .unwrap_or(0);
    let lower_rev = gdb
        .db
        .query_params(
            "SELECT MAX(b.d - a.d) FROM TLandmarks a, TLandmarks b \
             WHERE a.nid = ? AND b.nid = ? AND a.lm = b.lm",
            &[Value::Int(s), Value::Int(t)],
        )?
        .scalar_i64()
        .unwrap_or(0);
    Ok(Some(DistanceBounds {
        lower: lower.max(lower_rev).max(0),
        upper,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fempath_graph::generate;
    use fempath_inmem::dijkstra;

    #[test]
    fn bounds_bracket_the_true_distance() {
        let g = generate::power_law(300, 3, 1..=100, 3);
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        let pairs_stored = build_landmarks(&mut gdb, &[0, 50, 150, 250]).unwrap();
        assert!(pairs_stored >= 4 * 250, "landmarks cover the graph");
        for (s, t) in [(1i64, 299i64), (17, 200), (42, 137), (99, 100)] {
            let truth = dijkstra::shortest_path(&g, s as u32, t as u32)
                .unwrap()
                .distance as i64;
            let b = estimate_distance(&mut gdb, s, t).unwrap().unwrap();
            assert!(
                b.lower <= truth && truth <= b.upper,
                "{s}->{t}: bounds [{}, {}] must bracket {truth}",
                b.lower,
                b.upper
            );
        }
    }

    #[test]
    fn landmark_endpoint_is_exact() {
        let g = generate::grid(6, 6, 1..=10, 5);
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        build_landmarks(&mut gdb, &[0]).unwrap();
        // Estimating distance to the landmark itself is exact: the upper
        // bound d(s,0)+d(0,0) equals the lower bound |d(s,0)-0|.
        let truth = dijkstra::distances_from(&g, 0);
        for s in [5i64, 20, 35] {
            let b = estimate_distance(&mut gdb, s, 0).unwrap().unwrap();
            assert_eq!(b.lower, b.upper);
            assert_eq!(b.upper as u64, truth[s as usize]);
        }
    }

    #[test]
    fn disconnected_endpoints_give_none() {
        let g = fempath_graph::Graph::from_undirected_edges(4, vec![(0, 1, 1), (2, 3, 1)]);
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        build_landmarks(&mut gdb, &[0]).unwrap();
        // Landmark 0 never reaches node 2.
        assert_eq!(estimate_distance(&mut gdb, 1, 2).unwrap(), None);
    }

    #[test]
    fn more_landmarks_tighten_the_upper_bound() {
        let g = generate::grid(8, 8, 1..=10, 7);
        let (s, t) = (0i64, 63i64);
        let mut one = GraphDb::in_memory(&g).unwrap();
        build_landmarks(&mut one, &[27]).unwrap();
        let b1 = estimate_distance(&mut one, s, t).unwrap().unwrap();
        let mut many = GraphDb::in_memory(&g).unwrap();
        build_landmarks(&mut many, &[27, 0, 7, 56, 63]).unwrap();
        let bm = estimate_distance(&mut many, s, t).unwrap().unwrap();
        assert!(bm.upper <= b1.upper, "{} vs {}", bm.upper, b1.upper);
        assert!(bm.lower >= b1.lower);
    }
}
