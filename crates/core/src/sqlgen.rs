//! SQL statement generation — the paper's Listings 2–4, parameterized.
//!
//! Three orthogonal axes:
//!
//! * **direction** ([`Dir`]): forward statements use `(d2s, p2s, f)`,
//!   backward ones `(d2t, p2t, b)`. Graphs are stored symmetrically (see
//!   DESIGN.md), so both directions join the edge relation on `fid`.
//! * **edge source** ([`EdgeSource`]): the raw `TEdges` table or the
//!   SegTable (`TOutSegs`/`TInSegs`, whose `pid` column carries the
//!   predecessor within the pre-computed segment — §4.2).
//! * **style** ([`SqlStyle`]): NSQL (window function + MERGE) vs TSQL
//!   (aggregate-join + UPDATE/INSERT), plus the no-MERGE fallback forced by
//!   the PostgreSQL dialect (§5.2).
//!
//! Every expansion statement carries the bidirectional pruning term of
//! Theorem 1 — `e.cost + q.dist + ? < ?` with parameters `(l_other,
//! minCost)`; passing `(0, INF)` disables pruning.

use crate::graphdb::{INF, NO_NODE};
use crate::stats::SqlStyle;

/// Search direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    Fwd,
    Bwd,
}

impl Dir {
    /// `(dist, pred, flag, other-dist, other-pred, other-flag)` columns.
    pub fn cols(
        self,
    ) -> (
        &'static str,
        &'static str,
        &'static str,
        &'static str,
        &'static str,
        &'static str,
    ) {
        match self {
            Dir::Fwd => ("d2s", "p2s", "f", "d2t", "p2t", "b"),
            Dir::Bwd => ("d2t", "p2t", "b", "d2s", "p2s", "f"),
        }
    }

    /// The opposite direction.
    pub fn flip(self) -> Dir {
        match self {
            Dir::Fwd => Dir::Bwd,
            Dir::Bwd => Dir::Fwd,
        }
    }
}

/// Which relation the E-operator joins against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeSource {
    /// The raw edge table.
    Edges,
    /// The SegTable (`TOutSegs` forward, `TInSegs` backward).
    SegTable,
}

impl EdgeSource {
    fn table(self, dir: Dir) -> &'static str {
        match (self, dir) {
            (EdgeSource::Edges, _) => "TEdges",
            (EdgeSource::SegTable, Dir::Fwd) => "TOutSegs",
            (EdgeSource::SegTable, Dir::Bwd) => "TInSegs",
        }
    }

    /// Column holding the predecessor to record: the expanding node itself
    /// for raw edges (`fid`), the stored within-segment predecessor for the
    /// SegTable (`pid`).
    fn pid_col(self) -> &'static str {
        match self {
            EdgeSource::Edges => "fid",
            EdgeSource::SegTable => "pid",
        }
    }
}

/// How the expansion statement identifies its frontier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontierPred {
    /// `q.nid = ?` — the single-node expansion of Listing 2(3). Adds one
    /// leading parameter.
    ByNid,
    /// `q.flag = 2` — the marked-set expansion of Listing 4(2).
    Marked,
}

/// Statement generator for one direction.
#[derive(Debug, Clone, Copy)]
pub struct SqlGen {
    pub dir: Dir,
    pub edges: EdgeSource,
    pub style: SqlStyle,
}

impl SqlGen {
    pub fn new(dir: Dir, edges: EdgeSource, style: SqlStyle) -> SqlGen {
        SqlGen { dir, edges, style }
    }

    /// Initialize `TVisited` with the source node (Listing 2(1)); params
    /// `[node, node]`.
    pub fn init(dir: Dir) -> String {
        match dir {
            Dir::Fwd => format!(
                "INSERT INTO TVisited (nid, d2s, p2s, f, d2t, p2t, b) \
                 VALUES (?, 0, ?, 0, {INF}, {NO_NODE}, 0)"
            ),
            Dir::Bwd => format!(
                "INSERT INTO TVisited (nid, d2s, p2s, f, d2t, p2t, b) \
                 VALUES (?, {INF}, {NO_NODE}, 0, 0, ?, 0)"
            ),
        }
    }

    /// Listing 2(2): the next node to expand (id + its distance).
    pub fn select_mid(&self) -> String {
        let (dist, _, flag, ..) = self.dir.cols();
        format!(
            "SELECT TOP 1 nid, {dist} FROM TVisited WHERE {flag} = 0 AND {dist} < {INF} \
             AND {dist} = (SELECT MIN({dist}) FROM TVisited WHERE {flag} = 0 AND {dist} < {INF})"
        )
    }

    /// Minimal candidate distance (Listing 4(4)); NULL when exhausted.
    pub fn min_candidate(&self) -> String {
        let (dist, _, flag, ..) = self.dir.cols();
        format!("SELECT MIN({dist}) FROM TVisited WHERE {flag} = 0 AND {dist} < {INF}")
    }

    /// Number of remaining candidates in this direction.
    pub fn candidate_count(&self) -> String {
        let (dist, _, flag, ..) = self.dir.cols();
        format!("SELECT COUNT(*) FROM TVisited WHERE {flag} = 0 AND {dist} < {INF}")
    }

    /// Fused statistics statement: minimal candidate distance and candidate
    /// count in one scan (one SQLCA round-trip instead of two).
    pub fn candidate_stats(&self) -> String {
        let (dist, _, flag, ..) = self.dir.cols();
        format!("SELECT MIN({dist}), COUNT(*) FROM TVisited WHERE {flag} = 0 AND {dist} < {INF}")
    }

    /// Mark a single node as frontier; params `[nid]`.
    pub fn mark_by_nid(&self) -> String {
        let (_, _, flag, ..) = self.dir.cols();
        format!("UPDATE TVisited SET {flag} = 2 WHERE nid = ? AND {flag} = 0")
    }

    /// Mark all candidates at one distance (set Dijkstra); params `[dist]`.
    pub fn mark_by_dist(&self) -> String {
        let (dist, _, flag, ..) = self.dir.cols();
        format!("UPDATE TVisited SET {flag} = 2 WHERE {flag} = 0 AND {dist} = ?")
    }

    /// Mark every candidate (BFS-style).
    pub fn mark_all(&self) -> String {
        let (dist, _, flag, ..) = self.dir.cols();
        format!("UPDATE TVisited SET {flag} = 2 WHERE {flag} = 0 AND {dist} < {INF}")
    }

    /// Listing 4(1): the selective frontier of BSEG; params `[k * lthd]`.
    pub fn mark_threshold(&self) -> String {
        let (dist, _, flag, ..) = self.dir.cols();
        format!(
            "UPDATE TVisited SET {flag} = 2 \
             WHERE ({dist} <= ? OR {dist} = (SELECT MIN({dist}) FROM TVisited \
             WHERE {flag} = 0 AND {dist} < {INF})) AND {flag} = 0 AND {dist} < {INF}"
        )
    }

    /// Listing 4(3): flip expanded frontier nodes to settled.
    pub fn reset_frontier(&self) -> String {
        let (_, _, flag, ..) = self.dir.cols();
        format!("UPDATE TVisited SET {flag} = 1 WHERE {flag} = 2")
    }

    /// Listing 3(2): finalize one node; params `[nid]`.
    pub fn settle_by_nid(&self) -> String {
        let (_, _, flag, ..) = self.dir.cols();
        format!("UPDATE TVisited SET {flag} = 1 WHERE nid = ?")
    }

    /// The window-function E-operator source (shared by the MERGE and the
    /// temp-table paths). Parameters: `[nid?]` (ByNid only), then
    /// `[l_other, minCost]` for the Theorem-1 pruning term.
    fn window_source(&self, frontier: FrontierPred) -> String {
        let (dist, ..) = self.dir.cols();
        let et = self.edges.table(self.dir);
        let pid = self.edges.pid_col();
        let fpred = self.frontier_pred(frontier);
        format!(
            "SELECT nid, np, cost FROM ( \
               SELECT e.tid AS nid, e.{pid} AS np, e.cost + q.{dist} AS cost, \
                      ROW_NUMBER() OVER (PARTITION BY e.tid ORDER BY e.cost + q.{dist}) AS rownum \
               FROM TVisited q, {et} e \
               WHERE q.nid = e.fid AND {fpred} AND e.cost + q.{dist} + ? < ? \
             ) tmp WHERE rownum = 1"
        )
    }

    /// The aggregate-join E-operator source (TSQL, §3.3): a GROUP BY for
    /// the minimum plus a second join to recover the parent.
    fn aggregate_source(&self, frontier: FrontierPred) -> String {
        let (dist, ..) = self.dir.cols();
        let et = self.edges.table(self.dir);
        let pid = self.edges.pid_col();
        let fpred = self.frontier_pred(frontier);
        let fpred2 = fpred.replace("q.", "q2."); // same predicate on the rejoin
        format!(
            "SELECT e2.tid AS nid, MIN(e2.{pid}) AS np, m.c AS cost \
             FROM TVisited q2, {et} e2, ( \
                SELECT e.tid AS mtid, MIN(e.cost + q.{dist}) AS c \
                FROM TVisited q, {et} e \
                WHERE q.nid = e.fid AND {fpred} AND e.cost + q.{dist} + ? < ? \
                GROUP BY e.tid \
             ) m \
             WHERE q2.nid = e2.fid AND {fpred2} AND e2.tid = m.mtid \
               AND e2.cost + q2.{dist} = m.c \
             GROUP BY e2.tid, m.c"
        )
    }

    fn frontier_pred(&self, frontier: FrontierPred) -> String {
        let (_, _, flag, ..) = self.dir.cols();
        match frontier {
            FrontierPred::ByNid => "q.nid = ?".to_string(),
            FrontierPred::Marked => format!("q.{flag} = 2"),
        }
    }

    /// The fused E+M statement (Listing 4(2)): MERGE with the E-operator
    /// inline. Requires a MERGE-capable dialect and NSQL style.
    /// Params: `[nid?]`, `l_other`, `minCost` (ByNid adds the leading one,
    /// and the aggregate source repeats the pruning pair).
    pub fn expand_merge(&self, frontier: FrontierPred) -> String {
        let (dist, pred, flag, odist, opred, oflag) = self.dir.cols();
        let source = match self.style {
            SqlStyle::New => self.window_source(frontier),
            SqlStyle::Traditional => self.aggregate_source(frontier),
        };
        format!(
            "MERGE INTO TVisited AS target USING ({source}) AS source (nid, np, cost) \
             ON source.nid = target.nid \
             WHEN MATCHED AND target.{dist} > source.cost THEN \
               UPDATE SET {dist} = source.cost, {pred} = source.np, {flag} = 0 \
             WHEN NOT MATCHED THEN \
               INSERT (nid, {dist}, {pred}, {flag}, {odist}, {opred}, {oflag}) \
               VALUES (source.nid, source.cost, source.np, 0, {INF}, {NO_NODE}, 0)"
        )
    }

    /// E-operator into the `TExp` temp table (split-operator mode and the
    /// no-MERGE dialect path). Same parameters as [`SqlGen::expand_merge`].
    pub fn expand_into_exp(&self, frontier: FrontierPred) -> String {
        let source = match self.style {
            SqlStyle::New => self.window_source(frontier),
            SqlStyle::Traditional => self.aggregate_source(frontier),
        };
        format!("INSERT INTO TExp (nid, p2s, cost) {source}")
    }

    /// M-operator from `TExp` via MERGE (split-operator mode).
    pub fn merge_from_exp(&self) -> String {
        let (dist, pred, flag, odist, opred, oflag) = self.dir.cols();
        format!(
            "MERGE INTO TVisited AS target USING TExp AS source ON source.nid = target.nid \
             WHEN MATCHED AND target.{dist} > source.cost THEN \
               UPDATE SET {dist} = source.cost, {pred} = source.p2s, {flag} = 0 \
             WHEN NOT MATCHED THEN \
               INSERT (nid, {dist}, {pred}, {flag}, {odist}, {opred}, {oflag}) \
               VALUES (source.nid, source.cost, source.p2s, 0, {INF}, {NO_NODE}, 0)"
        )
    }

    /// M-operator, update half (the traditional / PostgreSQL path).
    pub fn update_from_exp(&self) -> String {
        let (dist, pred, flag, ..) = self.dir.cols();
        format!(
            "UPDATE TVisited SET {dist} = TExp.cost, {pred} = TExp.p2s, {flag} = 0 FROM TExp \
             WHERE TVisited.nid = TExp.nid AND TVisited.{dist} > TExp.cost"
        )
    }

    /// M-operator, insert half (the traditional / PostgreSQL path).
    pub fn insert_from_exp(&self) -> String {
        let (dist, pred, flag, odist, opred, oflag) = self.dir.cols();
        format!(
            "INSERT INTO TVisited (nid, {dist}, {pred}, {flag}, {odist}, {opred}, {oflag}) \
             SELECT nid, cost, p2s, 0, {INF}, {NO_NODE}, 0 FROM TExp \
             WHERE nid NOT IN (SELECT nid FROM TVisited)"
        )
    }

    /// Listing 3(3) / Algorithm 2 line 18: predecessor (or successor) of a
    /// node; params `[nid]`.
    pub fn pred_of(&self) -> String {
        let (_, pred, ..) = self.dir.cols();
        format!("SELECT {pred} FROM TVisited WHERE nid = ?")
    }

    /// Distance of a node in this direction; params `[nid]`.
    pub fn dist_of(&self) -> String {
        let (dist, ..) = self.dir.cols();
        format!("SELECT {dist} FROM TVisited WHERE nid = ?")
    }

    /// Listing 3(1): is the node settled in this direction? params `[nid]`.
    pub fn settled(&self) -> String {
        let (_, _, flag, ..) = self.dir.cols();
        format!("SELECT nid FROM TVisited WHERE {flag} = 1 AND nid = ?")
    }
}

/// Builds the positional parameter list for [`SqlGen::expand_merge`] /
/// [`SqlGen::expand_into_exp`]. The aggregate (TSQL) source with a
/// [`FrontierPred::ByNid`] frontier repeats the node parameter because the
/// predicate appears in both the GROUP BY subquery and the parent-recovery
/// rejoin.
pub fn expand_params(
    style: SqlStyle,
    frontier: FrontierPred,
    nid: Option<i64>,
    l_other: i64,
    min_cost: i64,
) -> Vec<fempath_storage::Value> {
    use fempath_storage::Value;
    let mut p = Vec::with_capacity(4);
    if frontier == FrontierPred::ByNid {
        p.push(Value::Int(nid.expect("ByNid frontier needs a node id")));
    }
    p.push(Value::Int(l_other));
    p.push(Value::Int(min_cost));
    if style == SqlStyle::Traditional && frontier == FrontierPred::ByNid {
        p.push(Value::Int(nid.unwrap()));
    }
    p
}

/// Listing 4(5): minimal s–t distance discovered so far.
pub fn min_cost() -> &'static str {
    "SELECT MIN(d2s + d2t) FROM TVisited"
}

/// Listing 4(6): a node on the currently-best path; params `[minCost]`.
pub fn meet_node() -> &'static str {
    "SELECT TOP 1 nid FROM TVisited WHERE d2s + d2t = ?"
}

/// Clears the expansion temp table.
pub fn truncate_exp() -> &'static str {
    "TRUNCATE TABLE TExp"
}

#[cfg(test)]
mod tests {
    use super::*;
    use fempath_sql::parse_statement;

    fn all_gens() -> Vec<SqlGen> {
        let mut out = Vec::new();
        for dir in [Dir::Fwd, Dir::Bwd] {
            for edges in [EdgeSource::Edges, EdgeSource::SegTable] {
                for style in [SqlStyle::New, SqlStyle::Traditional] {
                    out.push(SqlGen::new(dir, edges, style));
                }
            }
        }
        out
    }

    #[test]
    fn every_generated_statement_parses() {
        for g in all_gens() {
            for sql in [
                g.select_mid(),
                g.min_candidate(),
                g.candidate_count(),
                g.mark_by_nid(),
                g.mark_by_dist(),
                g.mark_all(),
                g.mark_threshold(),
                g.reset_frontier(),
                g.expand_merge(FrontierPred::Marked),
                g.expand_merge(FrontierPred::ByNid),
                g.expand_into_exp(FrontierPred::Marked),
                g.merge_from_exp(),
                g.update_from_exp(),
                g.insert_from_exp(),
                g.pred_of(),
                g.dist_of(),
                g.settled(),
            ] {
                parse_statement(&sql).unwrap_or_else(|e| panic!("{sql}\n-> {e}"));
            }
        }
        for sql in [
            SqlGen::init(Dir::Fwd),
            SqlGen::init(Dir::Bwd),
            min_cost().to_string(),
            meet_node().to_string(),
            truncate_exp().to_string(),
        ] {
            parse_statement(&sql).unwrap_or_else(|e| panic!("{sql}\n-> {e}"));
        }
    }

    #[test]
    fn backward_statements_use_backward_columns() {
        let g = SqlGen::new(Dir::Bwd, EdgeSource::Edges, SqlStyle::New);
        let m = g.expand_merge(FrontierPred::Marked);
        assert!(m.contains("d2t = source.cost"));
        assert!(m.contains("p2t = source.np"));
        assert!(m.contains("b = 0"));
        assert!(g.min_candidate().contains("MIN(d2t)"));
    }

    #[test]
    fn segtable_statements_use_seg_tables_and_pid() {
        let f = SqlGen::new(Dir::Fwd, EdgeSource::SegTable, SqlStyle::New);
        assert!(f.expand_merge(FrontierPred::Marked).contains("TOutSegs"));
        assert!(f.expand_merge(FrontierPred::Marked).contains("e.pid"));
        let b = SqlGen::new(Dir::Bwd, EdgeSource::SegTable, SqlStyle::New);
        assert!(b.expand_merge(FrontierPred::Marked).contains("TInSegs"));
    }

    #[test]
    fn traditional_style_avoids_window_functions() {
        let g = SqlGen::new(Dir::Fwd, EdgeSource::Edges, SqlStyle::Traditional);
        let m = g.expand_merge(FrontierPred::Marked);
        assert!(!m.contains("ROW_NUMBER"));
        assert!(m.to_uppercase().contains("GROUP BY"));
        let n = SqlGen::new(Dir::Fwd, EdgeSource::Edges, SqlStyle::New);
        assert!(n.expand_merge(FrontierPred::Marked).contains("ROW_NUMBER"));
    }
}
