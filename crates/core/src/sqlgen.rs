//! SQL statement generation — the paper's Listings 2–4, parameterized.
//!
//! Three orthogonal axes:
//!
//! * **direction** ([`Dir`]): forward statements use `(d2s, p2s, f)`,
//!   backward ones `(d2t, p2t, b)`. Graphs are stored symmetrically (see
//!   DESIGN.md §4), so both directions join the edge relation on `fid`.
//! * **edge source** ([`EdgeSource`]): the raw `TEdges` table or the
//!   SegTable (`TOutSegs`/`TInSegs`, whose `pid` column carries the
//!   predecessor within the pre-computed segment — §4.2).
//! * **style** ([`SqlStyle`]): NSQL (window function + MERGE) vs TSQL
//!   (aggregate-join + UPDATE/INSERT), plus the no-MERGE fallback forced by
//!   the PostgreSQL dialect (§5.2).
//!
//! Every expansion statement carries the bidirectional pruning term of
//! Theorem 1 — `e.cost + q.dist + ? < ?` with parameters `(l_other,
//! minCost)`; passing `(0, INF)` disables pruning.

use crate::graphdb::{INF, NO_NODE};
use crate::stats::SqlStyle;

/// One generated statement plus the metadata the static analyzer needs:
/// a stable corpus name and whether the statement is *hot-path* — executed
/// per search iteration (or per result-path probe), where a full scan of
/// an indexed working table is a plan-shape regression (rule FC201).
///
/// The annotation policy (DESIGN.md §15): point probes (`dist_of`,
/// `pred_of`, `settled`, `walk_tree`) and the M-operator statements that
/// probe the visited table per expansion row are hot; the F-operator
/// aggregate scans (`select_mid`, `candidate_stats`), frontier marks and
/// whole-table resets are *expected* to scan and stay cold.
#[derive(Debug, Clone)]
pub struct AnnotatedSql {
    /// Stable corpus name, e.g. `fwd/edges/nsql/merge_from_exp`.
    pub name: String,
    pub sql: String,
    /// Analyze with [`fempath_sql::AnalyzeOptions::hot_path`] set.
    pub hot_path: bool,
}

impl AnnotatedSql {
    pub(crate) fn hot(name: impl Into<String>, sql: impl Into<String>) -> AnnotatedSql {
        AnnotatedSql {
            name: name.into(),
            sql: sql.into(),
            hot_path: true,
        }
    }

    pub(crate) fn cold(name: impl Into<String>, sql: impl Into<String>) -> AnnotatedSql {
        AnnotatedSql {
            name: name.into(),
            sql: sql.into(),
            hot_path: false,
        }
    }
}

/// Search direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    Fwd,
    Bwd,
}

impl Dir {
    /// `(dist, pred, flag, other-dist, other-pred, other-flag)` columns.
    pub fn cols(
        self,
    ) -> (
        &'static str,
        &'static str,
        &'static str,
        &'static str,
        &'static str,
        &'static str,
    ) {
        match self {
            Dir::Fwd => ("d2s", "p2s", "f", "d2t", "p2t", "b"),
            Dir::Bwd => ("d2t", "p2t", "b", "d2s", "p2s", "f"),
        }
    }

    /// The opposite direction.
    pub fn flip(self) -> Dir {
        match self {
            Dir::Fwd => Dir::Bwd,
            Dir::Bwd => Dir::Fwd,
        }
    }
}

/// Which relation the E-operator joins against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeSource {
    /// The raw edge table.
    Edges,
    /// The SegTable (`TOutSegs` forward, `TInSegs` backward).
    SegTable,
}

impl EdgeSource {
    fn table(self, dir: Dir) -> &'static str {
        match (self, dir) {
            (EdgeSource::Edges, _) => "TEdges",
            (EdgeSource::SegTable, Dir::Fwd) => "TOutSegs",
            (EdgeSource::SegTable, Dir::Bwd) => "TInSegs",
        }
    }

    /// Column holding the predecessor to record: the expanding node itself
    /// for raw edges (`fid`), the stored within-segment predecessor for the
    /// SegTable (`pid`).
    fn pid_col(self) -> &'static str {
        match self {
            EdgeSource::Edges => "fid",
            EdgeSource::SegTable => "pid",
        }
    }
}

/// How the expansion statement identifies its frontier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontierPred {
    /// `q.nid = ?` — the single-node expansion of Listing 2(3). Adds one
    /// leading parameter.
    ByNid,
    /// `q.flag = 2` — the marked-set expansion of Listing 4(2).
    Marked,
}

/// Statement generator for one direction.
#[derive(Debug, Clone, Copy)]
pub struct SqlGen {
    pub dir: Dir,
    pub edges: EdgeSource,
    pub style: SqlStyle,
}

impl SqlGen {
    pub fn new(dir: Dir, edges: EdgeSource, style: SqlStyle) -> SqlGen {
        SqlGen { dir, edges, style }
    }

    /// Initialize `TVisited` with the source node (Listing 2(1)); params
    /// `[node, node]`.
    pub fn init(dir: Dir) -> String {
        match dir {
            Dir::Fwd => format!(
                "INSERT INTO TVisited (nid, d2s, p2s, f, d2t, p2t, b) \
                 VALUES (?, 0, ?, 0, {INF}, {NO_NODE}, 0)"
            ),
            Dir::Bwd => format!(
                "INSERT INTO TVisited (nid, d2s, p2s, f, d2t, p2t, b) \
                 VALUES (?, {INF}, {NO_NODE}, 0, 0, ?, 0)"
            ),
        }
    }

    /// Listing 2(2): the next node to expand (id + its distance).
    pub fn select_mid(&self) -> String {
        let (dist, _, flag, ..) = self.dir.cols();
        format!(
            "SELECT TOP 1 nid, {dist} FROM TVisited WHERE {flag} = 0 AND {dist} < {INF} \
             AND {dist} = (SELECT MIN({dist}) FROM TVisited WHERE {flag} = 0 AND {dist} < {INF})"
        )
    }

    /// Minimal candidate distance (Listing 4(4)); NULL when exhausted.
    pub fn min_candidate(&self) -> String {
        let (dist, _, flag, ..) = self.dir.cols();
        format!("SELECT MIN({dist}) FROM TVisited WHERE {flag} = 0 AND {dist} < {INF}")
    }

    /// Number of remaining candidates in this direction.
    pub fn candidate_count(&self) -> String {
        let (dist, _, flag, ..) = self.dir.cols();
        format!("SELECT COUNT(*) FROM TVisited WHERE {flag} = 0 AND {dist} < {INF}")
    }

    /// Fused statistics statement: minimal candidate distance and candidate
    /// count in one scan (one SQLCA round-trip instead of two).
    pub fn candidate_stats(&self) -> String {
        let (dist, _, flag, ..) = self.dir.cols();
        format!("SELECT MIN({dist}), COUNT(*) FROM TVisited WHERE {flag} = 0 AND {dist} < {INF}")
    }

    /// Mark a single node as frontier; params `[nid]`.
    pub fn mark_by_nid(&self) -> String {
        let (_, _, flag, ..) = self.dir.cols();
        format!("UPDATE TVisited SET {flag} = 2 WHERE nid = ? AND {flag} = 0")
    }

    /// Mark all candidates at one distance (set Dijkstra); params `[dist]`.
    pub fn mark_by_dist(&self) -> String {
        let (dist, _, flag, ..) = self.dir.cols();
        format!("UPDATE TVisited SET {flag} = 2 WHERE {flag} = 0 AND {dist} = ?")
    }

    /// Mark every candidate (BFS-style).
    pub fn mark_all(&self) -> String {
        let (dist, _, flag, ..) = self.dir.cols();
        format!("UPDATE TVisited SET {flag} = 2 WHERE {flag} = 0 AND {dist} < {INF}")
    }

    /// Listing 4(1): the selective frontier of BSEG; params `[k * lthd]`.
    pub fn mark_threshold(&self) -> String {
        let (dist, _, flag, ..) = self.dir.cols();
        format!(
            "UPDATE TVisited SET {flag} = 2 \
             WHERE ({dist} <= ? OR {dist} = (SELECT MIN({dist}) FROM TVisited \
             WHERE {flag} = 0 AND {dist} < {INF})) AND {flag} = 0 AND {dist} < {INF}"
        )
    }

    /// Listing 4(3): flip expanded frontier nodes to settled.
    pub fn reset_frontier(&self) -> String {
        let (_, _, flag, ..) = self.dir.cols();
        format!("UPDATE TVisited SET {flag} = 1 WHERE {flag} = 2")
    }

    /// Listing 3(2): finalize one node; params `[nid]`.
    pub fn settle_by_nid(&self) -> String {
        let (_, _, flag, ..) = self.dir.cols();
        format!("UPDATE TVisited SET {flag} = 1 WHERE nid = ?")
    }

    /// The window-function E-operator source (shared by the MERGE and the
    /// temp-table paths). Parameters: `[nid?]` (ByNid only), then
    /// `[l_other, minCost]` for the Theorem-1 pruning term.
    fn window_source(&self, frontier: FrontierPred) -> String {
        let (dist, ..) = self.dir.cols();
        let et = self.edges.table(self.dir);
        let pid = self.edges.pid_col();
        let fpred = self.frontier_pred(frontier);
        format!(
            "SELECT nid, np, cost FROM ( \
               SELECT e.tid AS nid, e.{pid} AS np, e.cost + q.{dist} AS cost, \
                      ROW_NUMBER() OVER (PARTITION BY e.tid ORDER BY e.cost + q.{dist}) AS rownum \
               FROM TVisited q, {et} e \
               WHERE q.nid = e.fid AND {fpred} AND e.cost + q.{dist} + ? < ? \
             ) tmp WHERE rownum = 1"
        )
    }

    /// The aggregate-join E-operator source (TSQL, §3.3): a GROUP BY for
    /// the minimum plus a second join to recover the parent.
    fn aggregate_source(&self, frontier: FrontierPred) -> String {
        let (dist, ..) = self.dir.cols();
        let et = self.edges.table(self.dir);
        let pid = self.edges.pid_col();
        let fpred = self.frontier_pred(frontier);
        let fpred2 = fpred.replace("q.", "q2."); // same predicate on the rejoin
        format!(
            "SELECT e2.tid AS nid, MIN(e2.{pid}) AS np, m.c AS cost \
             FROM TVisited q2, {et} e2, ( \
                SELECT e.tid AS mtid, MIN(e.cost + q.{dist}) AS c \
                FROM TVisited q, {et} e \
                WHERE q.nid = e.fid AND {fpred} AND e.cost + q.{dist} + ? < ? \
                GROUP BY e.tid \
             ) m \
             WHERE q2.nid = e2.fid AND {fpred2} AND e2.tid = m.mtid \
               AND e2.cost + q2.{dist} = m.c \
             GROUP BY e2.tid, m.c"
        )
    }

    fn frontier_pred(&self, frontier: FrontierPred) -> String {
        let (_, _, flag, ..) = self.dir.cols();
        match frontier {
            FrontierPred::ByNid => "q.nid = ?".to_string(),
            FrontierPred::Marked => format!("q.{flag} = 2"),
        }
    }

    /// The fused E+M statement (Listing 4(2)): MERGE with the E-operator
    /// inline. Requires a MERGE-capable dialect and NSQL style.
    /// Params: `[nid?]`, `l_other`, `minCost` (ByNid adds the leading one,
    /// and the aggregate source repeats the pruning pair).
    pub fn expand_merge(&self, frontier: FrontierPred) -> String {
        let (dist, pred, flag, odist, opred, oflag) = self.dir.cols();
        let source = match self.style {
            SqlStyle::New => self.window_source(frontier),
            SqlStyle::Traditional => self.aggregate_source(frontier),
        };
        format!(
            "MERGE INTO TVisited AS target USING ({source}) AS source (nid, np, cost) \
             ON source.nid = target.nid \
             WHEN MATCHED AND target.{dist} > source.cost THEN \
               UPDATE SET {dist} = source.cost, {pred} = source.np, {flag} = 0 \
             WHEN NOT MATCHED THEN \
               INSERT (nid, {dist}, {pred}, {flag}, {odist}, {opred}, {oflag}) \
               VALUES (source.nid, source.cost, source.np, 0, {INF}, {NO_NODE}, 0)"
        )
    }

    /// E-operator into the `TExp` temp table (split-operator mode and the
    /// no-MERGE dialect path). Same parameters as [`SqlGen::expand_merge`].
    pub fn expand_into_exp(&self, frontier: FrontierPred) -> String {
        let source = match self.style {
            SqlStyle::New => self.window_source(frontier),
            SqlStyle::Traditional => self.aggregate_source(frontier),
        };
        format!("INSERT INTO TExp (nid, p2s, cost) {source}")
    }

    /// M-operator from `TExp` via MERGE (split-operator mode).
    pub fn merge_from_exp(&self) -> String {
        let (dist, pred, flag, odist, opred, oflag) = self.dir.cols();
        format!(
            "MERGE INTO TVisited AS target USING TExp AS source ON source.nid = target.nid \
             WHEN MATCHED AND target.{dist} > source.cost THEN \
               UPDATE SET {dist} = source.cost, {pred} = source.p2s, {flag} = 0 \
             WHEN NOT MATCHED THEN \
               INSERT (nid, {dist}, {pred}, {flag}, {odist}, {opred}, {oflag}) \
               VALUES (source.nid, source.cost, source.p2s, 0, {INF}, {NO_NODE}, 0)"
        )
    }

    /// M-operator, update half (the traditional / PostgreSQL path).
    pub fn update_from_exp(&self) -> String {
        let (dist, pred, flag, ..) = self.dir.cols();
        format!(
            "UPDATE TVisited SET {dist} = TExp.cost, {pred} = TExp.p2s, {flag} = 0 FROM TExp \
             WHERE TVisited.nid = TExp.nid AND TVisited.{dist} > TExp.cost"
        )
    }

    /// M-operator, insert half (the traditional / PostgreSQL path).
    pub fn insert_from_exp(&self) -> String {
        let (dist, pred, flag, odist, opred, oflag) = self.dir.cols();
        format!(
            "INSERT INTO TVisited (nid, {dist}, {pred}, {flag}, {odist}, {opred}, {oflag}) \
             SELECT nid, cost, p2s, 0, {INF}, {NO_NODE}, 0 FROM TExp \
             WHERE nid NOT IN (SELECT nid FROM TVisited WHERE nid IS NOT NULL)"
        )
    }

    /// Listing 3(3) / Algorithm 2 line 18: predecessor (or successor) of a
    /// node; params `[nid]`.
    pub fn pred_of(&self) -> String {
        let (_, pred, ..) = self.dir.cols();
        format!("SELECT {pred} FROM TVisited WHERE nid = ?")
    }

    /// Distance of a node in this direction; params `[nid]`.
    pub fn dist_of(&self) -> String {
        let (dist, ..) = self.dir.cols();
        format!("SELECT {dist} FROM TVisited WHERE nid = ?")
    }

    /// Listing 3(1): is the node settled in this direction? params `[nid]`.
    pub fn settled(&self) -> String {
        let (_, _, flag, ..) = self.dir.cols();
        format!("SELECT nid FROM TVisited WHERE {flag} = 1 AND nid = ?")
    }

    /// Stable corpus prefix for this generator configuration.
    fn tag(&self) -> String {
        let d = match self.dir {
            Dir::Fwd => "fwd",
            Dir::Bwd => "bwd",
        };
        let e = match self.edges {
            EdgeSource::Edges => "edges",
            EdgeSource::SegTable => "seg",
        };
        let s = match self.style {
            SqlStyle::New => "nsql",
            SqlStyle::Traditional => "tsql",
        };
        format!("{d}/{e}/{s}")
    }

    /// Every statement this generator can emit, annotated for the static
    /// analyzer ([`AnnotatedSql`]). MERGE statements are included only when
    /// `merge_supported` — the finders make the same dialect choice.
    ///
    /// Hot statements: the ByNid expansions (one index probe per expanded
    /// node), the three M-operator statements (probe `TVisited` per
    /// expansion row) and the per-node result probes. The F-operator
    /// aggregates and frontier marks intentionally scan and stay cold.
    pub fn annotated_corpus(&self, merge_supported: bool) -> Vec<AnnotatedSql> {
        let t = self.tag();
        let mut out = vec![
            AnnotatedSql::cold(format!("{t}/init"), SqlGen::init(self.dir)),
            AnnotatedSql::cold(format!("{t}/select_mid"), self.select_mid()),
            AnnotatedSql::cold(format!("{t}/min_candidate"), self.min_candidate()),
            AnnotatedSql::cold(format!("{t}/candidate_count"), self.candidate_count()),
            AnnotatedSql::cold(format!("{t}/candidate_stats"), self.candidate_stats()),
            AnnotatedSql::cold(format!("{t}/mark_by_nid"), self.mark_by_nid()),
            AnnotatedSql::cold(format!("{t}/mark_by_dist"), self.mark_by_dist()),
            AnnotatedSql::cold(format!("{t}/mark_all"), self.mark_all()),
            AnnotatedSql::cold(format!("{t}/mark_threshold"), self.mark_threshold()),
            AnnotatedSql::cold(format!("{t}/reset_frontier"), self.reset_frontier()),
            AnnotatedSql::cold(format!("{t}/settle_by_nid"), self.settle_by_nid()),
            AnnotatedSql::hot(
                format!("{t}/expand_into_exp/by_nid"),
                self.expand_into_exp(FrontierPred::ByNid),
            ),
            AnnotatedSql::cold(
                format!("{t}/expand_into_exp/marked"),
                self.expand_into_exp(FrontierPred::Marked),
            ),
            AnnotatedSql::hot(format!("{t}/update_from_exp"), self.update_from_exp()),
            AnnotatedSql::hot(format!("{t}/insert_from_exp"), self.insert_from_exp()),
            AnnotatedSql::hot(format!("{t}/pred_of"), self.pred_of()),
            AnnotatedSql::hot(format!("{t}/dist_of"), self.dist_of()),
            AnnotatedSql::hot(format!("{t}/settled"), self.settled()),
        ];
        if merge_supported {
            out.push(AnnotatedSql::hot(
                format!("{t}/expand_merge/by_nid"),
                self.expand_merge(FrontierPred::ByNid),
            ));
            out.push(AnnotatedSql::cold(
                format!("{t}/expand_merge/marked"),
                self.expand_merge(FrontierPred::Marked),
            ));
            out.push(AnnotatedSql::hot(
                format!("{t}/merge_from_exp"),
                self.merge_from_exp(),
            ));
        }
        out
    }
}

/// Builds the positional parameter list for [`SqlGen::expand_merge`] /
/// [`SqlGen::expand_into_exp`]. The aggregate (TSQL) source with a
/// [`FrontierPred::ByNid`] frontier repeats the node parameter because the
/// predicate appears in both the GROUP BY subquery and the parent-recovery
/// rejoin.
pub fn expand_params(
    style: SqlStyle,
    frontier: FrontierPred,
    nid: Option<i64>,
    l_other: i64,
    min_cost: i64,
) -> fempath_sql::Result<Vec<fempath_storage::Value>> {
    use fempath_storage::Value;
    let node =
        || nid.ok_or_else(|| fempath_sql::SqlError::Eval("ByNid frontier needs a node id".into()));
    let mut p = Vec::with_capacity(4);
    if frontier == FrontierPred::ByNid {
        p.push(Value::Int(node()?));
    }
    p.push(Value::Int(l_other));
    p.push(Value::Int(min_cost));
    if style == SqlStyle::Traditional && frontier == FrontierPred::ByNid {
        p.push(Value::Int(node()?));
    }
    Ok(p)
}

/// How the batched F-operator picks each query's frontier (the per-qid
/// analogue of the single-query frontier policies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchFrontier {
    /// All candidates at the query's own minimal distance — set Dijkstra
    /// (label-setting, the BSDJ analogue): no node expands twice, but one
    /// relational iteration per distinct distance value.
    PerQueryMin,
    /// Every candidate — BFS-style relaxation (label-correcting, the BBFS
    /// analogue): nodes may re-expand when their distance improves, but the
    /// iteration count drops to the graph's hop radius. Since per-iteration
    /// table scans are the dominant batch cost, this is the throughput
    /// default.
    #[default]
    All,
}

/// Statement generator for one direction of the **batched** multi-pair
/// execution mode (DESIGN.md §8): the Listings 2–4 statements with a `qid`
/// column threaded through, so one F/E/M iteration advances every in-flight
/// (s, t) query at once.
///
/// Three structural differences from [`SqlGen`]:
///
/// * the working tables are `TBVisited` / `TBExp`, keyed by `(qid, nid)`;
/// * the client scalars of Algorithm 2 (`lf`, `lb`, `nf`, `nb`, `minCost`,
///   `done`) live in the per-query bounds table `TBounds` instead of the
///   driver program, so the F-operator and the Theorem-1 pruning term read
///   them relationally (one row per query, joined on `qid`);
/// * pruning is structural (`prune` toggles the `TBounds` join) rather than
///   parameter-driven, which keeps every loop statement parameter-free and
///   therefore a single AST-cache entry.
#[derive(Debug, Clone, Copy)]
pub struct BatchSqlGen {
    pub dir: Dir,
    pub edges: EdgeSource,
    pub style: SqlStyle,
    /// Include the per-qid Theorem-1 pruning term (bidirectional searches
    /// only; single-directional batch Dijkstra has no `l_other`/`minCost`).
    pub prune: bool,
}

impl BatchSqlGen {
    pub fn new(dir: Dir, edges: EdgeSource, style: SqlStyle, prune: bool) -> BatchSqlGen {
        BatchSqlGen {
            dir,
            edges,
            style,
            prune,
        }
    }

    /// `(l, n)` — the `TBounds` columns holding this direction's minimal
    /// candidate distance and candidate count.
    fn bounds_cols(self) -> (&'static str, &'static str) {
        match self.dir {
            Dir::Fwd => ("lf", "nf"),
            Dir::Bwd => ("lb", "nb"),
        }
    }

    /// Same for the opposite direction (the Theorem-1 `l_other`).
    fn other_bounds_cols(self) -> (&'static str, &'static str) {
        match self.dir {
            Dir::Fwd => ("lb", "nb"),
            Dir::Bwd => ("lf", "nf"),
        }
    }

    /// Seeds every `(qid, s, t)` query's endpoint for one direction in a
    /// single multi-row INSERT (the batched Listing 2(1)).
    pub fn init_batch(dir: Dir, live: &[(i64, i64, i64)]) -> String {
        let rows: Vec<String> = live
            .iter()
            .map(|&(qid, s, t)| match dir {
                Dir::Fwd => format!("({qid}, {s}, 0, {s}, 0, {INF}, {NO_NODE}, 0)"),
                Dir::Bwd => format!("({qid}, {t}, {INF}, {NO_NODE}, 0, 0, {t}, 0)"),
            })
            .collect();
        format!(
            "INSERT INTO TBVisited (qid, nid, d2s, p2s, f, d2t, p2t, b) VALUES {}",
            rows.join(", ")
        )
    }

    /// Seeds every query's bounds row in a single multi-row INSERT; `nb`
    /// starts at 0 for single-directional searches, so the backward side
    /// begins exhausted. The landmark `bound` column starts at [`INF`]
    /// (no bound) — [`seed_bounds_batch`] tightens it when an index exists.
    pub fn init_bounds_batch(live: &[(i64, i64, i64)], bidi: bool) -> String {
        let nb = i64::from(bidi);
        let rows: Vec<String> = live
            .iter()
            .map(|&(qid, s, t)| format!("({qid}, {s}, {t}, 0, 0, 1, {nb}, {INF}, {INF}, 0)"))
            .collect();
        format!(
            "INSERT INTO TBounds (qid, s, t, lf, lb, nf, nb, mincost, bound, done) VALUES {}",
            rows.join(", ")
        )
    }

    /// The batched F-operator: mark each unfinished query's frontier.
    ///
    /// With [`BatchFrontier::PerQueryMin`] that is the candidates sitting
    /// at the query's own minimal distance (set Dijkstra), read from
    /// `TBounds`; with `alternate`, only queries whose *smaller* frontier
    /// is this direction participate (Algorithm 2 line 7, evaluated per
    /// qid; forward wins ties).
    ///
    /// With [`BatchFrontier::All`] every candidate of every live query
    /// expands (BFS-style label-correcting). Finished queries' rows are
    /// deleted at retirement, so no `TBounds` join is needed at all — the
    /// statement is the same single-scan mark the single-query BBFS uses,
    /// and both directions advance every iteration.
    pub fn mark_frontier(&self, frontier: BatchFrontier, alternate: bool) -> String {
        let (dist, _, flag, ..) = self.dir.cols();
        if frontier == BatchFrontier::All && !alternate {
            return format!("UPDATE TBVisited SET {flag} = 2 WHERE {flag} = 0 AND {dist} < {INF}");
        }
        let (l, n) = self.bounds_cols();
        let (_, on) = self.other_bounds_cols();
        let dir_sel = if alternate {
            let tie = match self.dir {
                Dir::Fwd => format!("TBounds.{n} <= TBounds.{on}"),
                Dir::Bwd => format!("TBounds.{n} < TBounds.{on}"),
            };
            format!(" AND (TBounds.{on} <= 0 OR {tie})")
        } else {
            String::new()
        };
        let fpred = match frontier {
            BatchFrontier::PerQueryMin => format!("TBVisited.{dist} = TBounds.{l}"),
            BatchFrontier::All => format!("TBVisited.{dist} < {INF}"),
        };
        format!(
            "UPDATE TBVisited SET {flag} = 2 FROM TBounds \
             WHERE TBVisited.qid = TBounds.qid AND TBounds.done = 0 \
               AND TBounds.{n} > 0{dir_sel} \
               AND TBVisited.{flag} = 0 AND {fpred}"
        )
    }

    /// The window-function E-operator source, per (qid, tid): the batched
    /// Listing 4(2) inner query. With pruning, `TBounds` joins in (after
    /// the frontier filter has cut the scan down to marked rows) to supply
    /// the per-qid `l_other`/`minCost` of Theorem 1.
    fn window_source(&self) -> String {
        let (dist, _, flag, ..) = self.dir.cols();
        let et = self.edges.table(self.dir);
        let pid = self.edges.pid_col();
        let (bounds, pruning) = self.pruning_clauses();
        format!(
            "SELECT qid, nid, np, cost FROM ( \
               SELECT q.qid AS qid, e.tid AS nid, e.{pid} AS np, e.cost + q.{dist} AS cost, \
                      ROW_NUMBER() OVER (PARTITION BY q.qid, e.tid ORDER BY e.cost + q.{dist}) AS rownum \
               FROM TBVisited q{bounds}, {et} e \
               WHERE q.nid = e.fid AND q.{flag} = 2{pruning} \
             ) tmp WHERE rownum = 1"
        )
    }

    /// The aggregate-join E-operator source (TSQL, §3.3), grouped by
    /// (qid, tid) with a rejoin recovering the parent.
    fn aggregate_source(&self) -> String {
        let (dist, _, flag, ..) = self.dir.cols();
        let et = self.edges.table(self.dir);
        let pid = self.edges.pid_col();
        let (bounds, pruning) = self.pruning_clauses();
        format!(
            "SELECT q2.qid AS qid, e2.tid AS nid, MIN(e2.{pid}) AS np, m.c AS cost \
             FROM TBVisited q2, {et} e2, ( \
                SELECT q.qid AS mqid, e.tid AS mtid, MIN(e.cost + q.{dist}) AS c \
                FROM TBVisited q{bounds}, {et} e \
                WHERE q.nid = e.fid AND q.{flag} = 2{pruning} \
                GROUP BY q.qid, e.tid \
             ) m \
             WHERE q2.nid = e2.fid AND q2.{flag} = 2 AND q2.qid = m.mqid \
               AND e2.tid = m.mtid AND e2.cost + q2.{dist} = m.c \
             GROUP BY q2.qid, e2.tid, m.c"
        )
    }

    /// `(extra FROM item, extra WHERE terms)` for the Theorem-1 pruning
    /// join, or empty strings when pruning is off. The bounds are joined
    /// through a three-column projection so the per-candidate hash join
    /// carries (and copies) only what the pruning term reads.
    ///
    /// The effective pruning ceiling `wmc` is the minimum of the
    /// *discovered* `mincost` (overwritten from `TBVisited` every
    /// iteration) and the landmark-seeded `bound` (DESIGN.md §12), built
    /// with 0/1 comparison arithmetic: `a + (b < a) * (b - a)` is `b` when
    /// `b < a` and `a` otherwise. Termination and meet-node recovery keep
    /// reading `mincost` alone — the seeded bound is never claimed to be
    /// realized by a `TBVisited` row.
    fn pruning_clauses(&self) -> (String, String) {
        if !self.prune {
            return (String::new(), String::new());
        }
        let (dist, ..) = self.dir.cols();
        let (ol, _) = self.other_bounds_cols();
        (
            format!(
                ", (SELECT qid AS wqid, {ol} AS wl, \
                 mincost + (bound < mincost) * (bound - mincost) AS wmc FROM TBounds) w"
            ),
            format!(" AND w.wqid = q.qid AND e.cost + q.{dist} + w.wl < w.wmc"),
        )
    }

    /// The fused E+M statement: MERGE on the composite `(qid, nid)` key.
    /// Parameter-free.
    pub fn expand_merge(&self) -> String {
        let (dist, pred, flag, odist, opred, oflag) = self.dir.cols();
        let source = match self.style {
            SqlStyle::New => self.window_source(),
            SqlStyle::Traditional => self.aggregate_source(),
        };
        format!(
            "MERGE INTO TBVisited AS target USING ({source}) AS source (qid, nid, np, cost) \
             ON source.qid = target.qid AND source.nid = target.nid \
             WHEN MATCHED AND target.{dist} > source.cost THEN \
               UPDATE SET {dist} = source.cost, {pred} = source.np, {flag} = 0 \
             WHEN NOT MATCHED THEN \
               INSERT (qid, nid, {dist}, {pred}, {flag}, {odist}, {opred}, {oflag}) \
               VALUES (source.qid, source.nid, source.cost, source.np, 0, {INF}, {NO_NODE}, 0)"
        )
    }

    /// E-operator into `TBExp` (split-operator mode and the no-MERGE
    /// dialect path). Parameter-free.
    pub fn expand_into_exp(&self) -> String {
        let source = match self.style {
            SqlStyle::New => self.window_source(),
            SqlStyle::Traditional => self.aggregate_source(),
        };
        format!("INSERT INTO TBExp (qid, nid, p2s, cost) {source}")
    }

    /// M-operator from `TBExp` via MERGE.
    pub fn merge_from_exp(&self) -> String {
        let (dist, pred, flag, odist, opred, oflag) = self.dir.cols();
        format!(
            "MERGE INTO TBVisited AS target USING TBExp AS source \
             ON source.qid = target.qid AND source.nid = target.nid \
             WHEN MATCHED AND target.{dist} > source.cost THEN \
               UPDATE SET {dist} = source.cost, {pred} = source.p2s, {flag} = 0 \
             WHEN NOT MATCHED THEN \
               INSERT (qid, nid, {dist}, {pred}, {flag}, {odist}, {opred}, {oflag}) \
               VALUES (source.qid, source.nid, source.cost, source.p2s, 0, {INF}, {NO_NODE}, 0)"
        )
    }

    /// M-operator, update half (the traditional / PostgreSQL path).
    pub fn update_from_exp(&self) -> String {
        let (dist, pred, flag, ..) = self.dir.cols();
        format!(
            "UPDATE TBVisited SET {dist} = TBExp.cost, {pred} = TBExp.p2s, {flag} = 0 FROM TBExp \
             WHERE TBVisited.qid = TBExp.qid AND TBVisited.nid = TBExp.nid \
               AND TBVisited.{dist} > TBExp.cost"
        )
    }

    /// M-operator, insert half. The composite-key anti-join uses the
    /// single-value encoding `qid·n + nid` (as the SegTable build does for
    /// `(src, nid)`); params `[n, n]` where `n` is the node count.
    pub fn insert_from_exp(&self) -> String {
        let (dist, pred, flag, odist, opred, oflag) = self.dir.cols();
        format!(
            "INSERT INTO TBVisited (qid, nid, {dist}, {pred}, {flag}, {odist}, {opred}, {oflag}) \
             SELECT qid, nid, cost, p2s, 0, {INF}, {NO_NODE}, 0 FROM TBExp \
             WHERE qid * ? + nid NOT IN (SELECT qid * ? + nid FROM TBVisited \
             WHERE qid IS NOT NULL AND nid IS NOT NULL)"
        )
    }

    /// Flip every expanded frontier node to settled (the batched
    /// Listing 4(3)).
    pub fn reset_frontier(&self) -> String {
        let (_, _, flag, ..) = self.dir.cols();
        format!("UPDATE TBVisited SET {flag} = 1 WHERE {flag} = 2")
    }

    /// Statistics collection, step 1: default this direction's bounds to
    /// "exhausted" for every unfinished query (queries with no surviving
    /// candidates drop out of the GROUP BY refresh below).
    pub fn clear_stats(&self) -> String {
        let (l, n) = self.bounds_cols();
        format!("UPDATE TBounds SET {l} = {INF}, {n} = 0 WHERE done = 0")
    }

    /// Statistics collection, step 2: fold the per-qid minimal candidate
    /// distance and candidate count (the batched Listing 4(4)) into
    /// `TBounds` in one statement.
    pub fn refresh_stats(&self) -> String {
        let (dist, _, flag, ..) = self.dir.cols();
        let (l, n) = self.bounds_cols();
        format!(
            "UPDATE TBounds SET {l} = src.l, {n} = src.c \
             FROM (SELECT qid, MIN({dist}) AS l, COUNT(*) AS c FROM TBVisited \
                   WHERE {flag} = 0 AND {dist} < {INF} GROUP BY qid) src \
             WHERE TBounds.qid = src.qid AND TBounds.done = 0"
        )
    }

    /// Retire queries whose target node is settled in this direction — the
    /// batched Listing 3(1), used by the single-directional batch Dijkstra.
    pub fn mark_done_target_settled(&self) -> String {
        let (_, _, flag, ..) = self.dir.cols();
        format!(
            "UPDATE TBounds SET done = 1 FROM TBVisited \
             WHERE TBVisited.qid = TBounds.qid AND TBVisited.nid = TBounds.t \
               AND TBVisited.{flag} = 1 AND TBounds.done = 0"
        )
    }

    /// Retire queries whose frontier in this direction is exhausted (the
    /// target is unreachable for a single-directional search).
    pub fn mark_done_exhausted(&self) -> String {
        let (_, n) = self.bounds_cols();
        format!("UPDATE TBounds SET done = 1 WHERE done = 0 AND {n} <= 0")
    }

    /// Distance of a node in this direction for one query; params
    /// `[qid, nid]`.
    pub fn dist_of(&self) -> String {
        let (dist, ..) = self.dir.cols();
        format!("SELECT {dist} FROM TBVisited WHERE qid = ? AND nid = ?")
    }

    /// Predecessor (or successor) of a node for one query; params
    /// `[qid, nid]`.
    pub fn pred_of(&self) -> String {
        let (_, pred, ..) = self.dir.cols();
        format!("SELECT {pred} FROM TBVisited WHERE qid = ? AND nid = ?")
    }

    /// Stable corpus prefix for this generator configuration.
    fn tag(&self) -> String {
        let d = match self.dir {
            Dir::Fwd => "fwd",
            Dir::Bwd => "bwd",
        };
        let s = match self.style {
            SqlStyle::New => "nsql",
            SqlStyle::Traditional => "tsql",
        };
        let e = match self.edges {
            EdgeSource::Edges => "edges",
            EdgeSource::SegTable => "seg",
        };
        let p = if self.prune { "prune" } else { "noprune" };
        format!("batch/{d}/{e}/{s}/{p}")
    }

    /// Every statement this batch generator can emit, annotated for the
    /// static analyzer. MERGE statements only when `merge_supported`.
    ///
    /// Unlike the single-query generator, the batched *expansions* stay
    /// cold: their frontier predicate is `flag = 2` over the whole batch,
    /// an intentional scan of `TBVisited` (that one scan advancing every
    /// in-flight query is the point of batching). The M-operator halves
    /// and the per-(qid, nid) probes are hot — they must go through the
    /// composite `(qid, nid)` index.
    pub fn annotated_corpus(&self, merge_supported: bool) -> Vec<AnnotatedSql> {
        let t = self.tag();
        let mut out = vec![
            AnnotatedSql::cold(
                format!("{t}/mark_frontier/min"),
                self.mark_frontier(BatchFrontier::PerQueryMin, false),
            ),
            AnnotatedSql::cold(
                format!("{t}/mark_frontier/min_alt"),
                self.mark_frontier(BatchFrontier::PerQueryMin, true),
            ),
            AnnotatedSql::cold(
                format!("{t}/mark_frontier/all"),
                self.mark_frontier(BatchFrontier::All, false),
            ),
            AnnotatedSql::cold(
                format!("{t}/mark_frontier/all_alt"),
                self.mark_frontier(BatchFrontier::All, true),
            ),
            AnnotatedSql::cold(format!("{t}/expand_into_exp"), self.expand_into_exp()),
            AnnotatedSql::hot(format!("{t}/update_from_exp"), self.update_from_exp()),
            AnnotatedSql::hot(format!("{t}/insert_from_exp"), self.insert_from_exp()),
            AnnotatedSql::cold(format!("{t}/reset_frontier"), self.reset_frontier()),
            AnnotatedSql::cold(format!("{t}/clear_stats"), self.clear_stats()),
            AnnotatedSql::cold(format!("{t}/refresh_stats"), self.refresh_stats()),
            AnnotatedSql::cold(
                format!("{t}/mark_done_target_settled"),
                self.mark_done_target_settled(),
            ),
            AnnotatedSql::cold(
                format!("{t}/mark_done_exhausted"),
                self.mark_done_exhausted(),
            ),
            AnnotatedSql::hot(format!("{t}/dist_of"), self.dist_of()),
            AnnotatedSql::hot(format!("{t}/pred_of"), self.pred_of()),
        ];
        if merge_supported {
            out.push(AnnotatedSql::cold(
                format!("{t}/expand_merge"),
                self.expand_merge(),
            ));
            out.push(AnnotatedSql::hot(
                format!("{t}/merge_from_exp"),
                self.merge_from_exp(),
            ));
        }
        out
    }
}

/// The free-function statements of the batch driver (plus the single-query
/// temp-table helpers), annotated for the static analyzer. Statements
/// referencing `TLandmarks` are included only when `has_landmarks`.
pub fn free_statement_corpus(has_landmarks: bool) -> Vec<AnnotatedSql> {
    let live = [(0i64, 0i64, 0i64), (1, 0, 0)];
    let mut out = vec![
        AnnotatedSql::cold("batch/init_fwd", BatchSqlGen::init_batch(Dir::Fwd, &live)),
        AnnotatedSql::cold("batch/init_bwd", BatchSqlGen::init_batch(Dir::Bwd, &live)),
        AnnotatedSql::cold(
            "batch/init_bounds/bidi",
            BatchSqlGen::init_bounds_batch(&live, true),
        ),
        AnnotatedSql::cold(
            "batch/init_bounds/single",
            BatchSqlGen::init_bounds_batch(&live, false),
        ),
        AnnotatedSql::cold("batch/reset_both", batch_reset_both()),
        AnnotatedSql::cold("batch/fused_stats", batch_fused_stats()),
        AnnotatedSql::cold("batch/mark_done_drained", batch_mark_done_drained()),
        AnnotatedSql::cold("batch/mark_done_met", batch_mark_done_met()),
        AnnotatedSql::cold("batch/read_done_bounds", batch_read_done_bounds()),
        AnnotatedSql::cold("batch/delete_done_visited", batch_delete_done_visited()),
        AnnotatedSql::cold("batch/delete_done_bounds", batch_delete_done_bounds()),
        AnnotatedSql::hot("batch/meet_node", batch_meet_node()),
        AnnotatedSql::cold("batch/truncate_exp", truncate_batch_exp()),
        AnnotatedSql::cold("single/min_cost", min_cost()),
        AnnotatedSql::cold("single/meet_node", meet_node()),
        AnnotatedSql::cold("single/truncate_exp", truncate_exp()),
    ];
    if has_landmarks {
        out.push(AnnotatedSql::cold("batch/seed_bounds", seed_bounds_batch()));
    }
    out
}

/// Seeds every in-flight query's landmark pruning bound in one statement
/// (DESIGN.md §12): per qid, the triangle-inequality upper bound
/// `U = min over lm of d(s, lm) + d(lm, t)` from `TLandmarks`, stored as
/// `U + 1` so the strict `<` of the Theorem-1 term keeps relaxations of
/// cost exactly `U` (the optimal path itself when the bound is tight).
/// Queries with no common landmark drop out of the GROUP BY and keep
/// `bound` = [`INF`]. Parameter-free; run once right after
/// [`BatchSqlGen::init_bounds_batch`].
pub fn seed_bounds_batch() -> String {
    "UPDATE TBounds SET bound = src.u + 1 \
     FROM (SELECT q.qid AS sqid, MIN(a.d + b.d) AS u \
           FROM TBounds q, TLandmarks a, TLandmarks b \
           WHERE a.nid = q.s AND b.nid = q.t AND a.lm = b.lm \
           GROUP BY q.qid) src \
     WHERE TBounds.qid = src.sqid"
        .to_string()
}

/// The fused Listing 4(3) of bidirectional batches: settle both directions'
/// expanded frontiers in one scan, exploiting 0/1 comparisons
/// (`flag - (flag = 2)` maps 2 → 1 and leaves 0 and 1 alone).
pub fn batch_reset_both() -> &'static str {
    "UPDATE TBVisited SET f = f - (f = 2), b = b - (b = 2) WHERE f = 2 OR b = 2"
}

/// The fused statistics statement of the [`BatchFrontier::All`] mode: one
/// scan of `TBVisited` folds, per qid, the current `minCost`, the count of
/// still-dirty rows (candidates in either direction), and both directions'
/// minimal dirty distances into `TBounds`. The flag indicators exploit
/// comparisons evaluating to 0/1: `dist + (flag <> 0) * INF` pushes settled
/// rows beyond [`INF`] so the `MIN` only sees dirty ones. The dirty count
/// lands in `nf` (`nb` is unused in this mode).
pub fn batch_fused_stats() -> String {
    format!(
        "UPDATE TBounds SET mincost = src.mc, nf = src.df, nb = src.db, \
                            lf = src.l, lb = src.ol \
         FROM (SELECT qid, MIN(d2s + d2t) AS mc, \
                      SUM(f = 0 AND d2s < {INF}) AS df, \
                      SUM(b = 0 AND d2t < {INF}) AS db, \
                      MIN(d2s + (f <> 0) * {INF}) AS l, \
                      MIN(d2t + (b <> 0) * {INF}) AS ol \
               FROM TBVisited GROUP BY qid) src \
         WHERE TBounds.qid = src.qid AND TBounds.done = 0"
    )
}

/// Drain termination for the [`BatchFrontier::All`] mode: a query with no
/// dirty rows left in either direction has fully propagated every
/// relaxation — its `minCost` is final.
pub fn batch_mark_done_drained() -> &'static str {
    "UPDATE TBounds SET done = 1 WHERE done = 0 AND nf <= 0 AND nb <= 0"
}

/// Bidirectional termination (§4.1), per qid: `minCost` is final once
/// `minCost <= lf + lb`. Exhausted directions hold `lf`/`lb` = [`INF`], so
/// this also retires queries with nothing left to expand.
pub fn batch_mark_done_met() -> String {
    "UPDATE TBounds SET done = 1 WHERE done = 0 AND mincost <= lf + lb".to_string()
}

/// Bounds of the queries retired this iteration, read before their rows
/// are deleted.
pub fn batch_read_done_bounds() -> &'static str {
    "SELECT qid, mincost FROM TBounds WHERE done = 1"
}

/// Drop retired queries' visited rows so later iterations only scan live
/// queries — the key to batch throughput on heterogeneous batches.
pub fn batch_delete_done_visited() -> &'static str {
    "DELETE FROM TBVisited WHERE qid IN (SELECT qid FROM TBounds WHERE done = 1)"
}

/// Drop retired queries' bounds rows.
pub fn batch_delete_done_bounds() -> &'static str {
    "DELETE FROM TBounds WHERE done = 1"
}

/// The batched Listing 4(6): a node on one query's best path; params
/// `[qid, minCost]`.
pub fn batch_meet_node() -> &'static str {
    "SELECT TOP 1 nid FROM TBVisited WHERE qid = ? AND d2s + d2t = ?"
}

/// Clears the batched expansion temp table.
pub fn truncate_batch_exp() -> &'static str {
    "TRUNCATE TABLE TBExp"
}

/// Listing 4(5): minimal s–t distance discovered so far.
pub fn min_cost() -> &'static str {
    "SELECT MIN(d2s + d2t) FROM TVisited"
}

/// Listing 4(6): a node on the currently-best path; params `[minCost]`.
pub fn meet_node() -> &'static str {
    "SELECT TOP 1 nid FROM TVisited WHERE d2s + d2t = ?"
}

/// Clears the expansion temp table.
pub fn truncate_exp() -> &'static str {
    "TRUNCATE TABLE TExp"
}

#[cfg(test)]
mod tests {
    use super::*;
    use fempath_sql::parse_statement;

    fn all_gens() -> Vec<SqlGen> {
        let mut out = Vec::new();
        for dir in [Dir::Fwd, Dir::Bwd] {
            for edges in [EdgeSource::Edges, EdgeSource::SegTable] {
                for style in [SqlStyle::New, SqlStyle::Traditional] {
                    out.push(SqlGen::new(dir, edges, style));
                }
            }
        }
        out
    }

    #[test]
    fn every_generated_statement_parses() {
        for g in all_gens() {
            for sql in [
                g.select_mid(),
                g.min_candidate(),
                g.candidate_count(),
                g.mark_by_nid(),
                g.mark_by_dist(),
                g.mark_all(),
                g.mark_threshold(),
                g.reset_frontier(),
                g.expand_merge(FrontierPred::Marked),
                g.expand_merge(FrontierPred::ByNid),
                g.expand_into_exp(FrontierPred::Marked),
                g.merge_from_exp(),
                g.update_from_exp(),
                g.insert_from_exp(),
                g.pred_of(),
                g.dist_of(),
                g.settled(),
            ] {
                parse_statement(&sql).unwrap_or_else(|e| panic!("{sql}\n-> {e}"));
            }
        }
        for sql in [
            SqlGen::init(Dir::Fwd),
            SqlGen::init(Dir::Bwd),
            min_cost().to_string(),
            meet_node().to_string(),
            truncate_exp().to_string(),
        ] {
            parse_statement(&sql).unwrap_or_else(|e| panic!("{sql}\n-> {e}"));
        }
    }

    fn all_batch_gens() -> Vec<BatchSqlGen> {
        let mut out = Vec::new();
        for dir in [Dir::Fwd, Dir::Bwd] {
            for style in [SqlStyle::New, SqlStyle::Traditional] {
                for prune in [false, true] {
                    out.push(BatchSqlGen::new(dir, EdgeSource::Edges, style, prune));
                }
            }
        }
        out
    }

    #[test]
    fn every_batch_statement_parses() {
        for g in all_batch_gens() {
            for sql in [
                g.mark_frontier(BatchFrontier::PerQueryMin, false),
                g.mark_frontier(BatchFrontier::PerQueryMin, true),
                g.mark_frontier(BatchFrontier::All, false),
                g.mark_frontier(BatchFrontier::All, true),
                g.expand_merge(),
                g.expand_into_exp(),
                g.merge_from_exp(),
                g.update_from_exp(),
                g.insert_from_exp(),
                g.reset_frontier(),
                g.clear_stats(),
                g.refresh_stats(),
                g.mark_done_target_settled(),
                g.mark_done_exhausted(),
                g.dist_of(),
                g.pred_of(),
            ] {
                parse_statement(&sql).unwrap_or_else(|e| panic!("{sql}\n-> {e}"));
            }
        }
        let live = [(0i64, 1i64, 2i64), (1, 3, 4)];
        for sql in [
            BatchSqlGen::init_batch(Dir::Fwd, &live),
            BatchSqlGen::init_batch(Dir::Bwd, &live),
            BatchSqlGen::init_bounds_batch(&live, true),
            BatchSqlGen::init_bounds_batch(&live, false),
            seed_bounds_batch(),
            batch_fused_stats(),
            batch_mark_done_met(),
            batch_mark_done_drained().to_string(),
            batch_reset_both().to_string(),
            batch_read_done_bounds().to_string(),
            batch_delete_done_visited().to_string(),
            batch_delete_done_bounds().to_string(),
            batch_meet_node().to_string(),
            truncate_batch_exp().to_string(),
        ] {
            parse_statement(&sql).unwrap_or_else(|e| panic!("{sql}\n-> {e}"));
        }
    }

    #[test]
    fn batch_pruning_is_structural() {
        let pruned = BatchSqlGen::new(Dir::Fwd, EdgeSource::Edges, SqlStyle::New, true);
        assert!(pruned.expand_merge().contains("w.wmc"));
        assert!(pruned.expand_merge().contains("lb AS wl"));
        // The ceiling is min(mincost, bound) via 0/1 comparison arithmetic,
        // so the landmark-seeded bound prunes even before any meet.
        assert!(pruned
            .expand_merge()
            .contains("mincost + (bound < mincost) * (bound - mincost) AS wmc"));
        let unpruned = BatchSqlGen::new(Dir::Fwd, EdgeSource::Edges, SqlStyle::New, false);
        assert!(!unpruned.expand_merge().contains("TBounds"));
        let bwd = BatchSqlGen::new(Dir::Bwd, EdgeSource::Edges, SqlStyle::New, true);
        assert!(bwd.expand_merge().contains("lf AS wl"));
        assert!(bwd.expand_merge().contains("d2t = source.cost"));
    }

    #[test]
    fn batch_frontier_directions_are_complementary() {
        let f = BatchSqlGen::new(Dir::Fwd, EdgeSource::Edges, SqlStyle::New, true);
        let b = BatchSqlGen::new(Dir::Bwd, EdgeSource::Edges, SqlStyle::New, true);
        // Forward wins ties (nf <= nb); backward takes strictly-smaller only.
        let fmin = f.mark_frontier(BatchFrontier::PerQueryMin, true);
        let bmin = b.mark_frontier(BatchFrontier::PerQueryMin, true);
        assert!(fmin.contains("TBounds.nf <= TBounds.nb"));
        assert!(bmin.contains("TBounds.nb < TBounds.nf"));
        assert!(fmin.contains("TBVisited.d2s = TBounds.lf"));
        // The BFS-style frontier marks every candidate (no minimal-distance
        // term); without alternation it needs no bounds join at all.
        let fall = f.mark_frontier(BatchFrontier::All, true);
        assert!(!fall.contains("TBVisited.d2s = TBounds.lf"));
        assert!(fall.contains("TBVisited.d2s <"));
        assert!(!f
            .mark_frontier(BatchFrontier::All, false)
            .contains("TBounds"));
        // Single-directional mode drops the alternation term entirely.
        assert!(!f
            .mark_frontier(BatchFrontier::PerQueryMin, false)
            .contains("TBounds.nb"));
    }

    #[test]
    fn backward_statements_use_backward_columns() {
        let g = SqlGen::new(Dir::Bwd, EdgeSource::Edges, SqlStyle::New);
        let m = g.expand_merge(FrontierPred::Marked);
        assert!(m.contains("d2t = source.cost"));
        assert!(m.contains("p2t = source.np"));
        assert!(m.contains("b = 0"));
        assert!(g.min_candidate().contains("MIN(d2t)"));
    }

    #[test]
    fn segtable_statements_use_seg_tables_and_pid() {
        let f = SqlGen::new(Dir::Fwd, EdgeSource::SegTable, SqlStyle::New);
        assert!(f.expand_merge(FrontierPred::Marked).contains("TOutSegs"));
        assert!(f.expand_merge(FrontierPred::Marked).contains("e.pid"));
        let b = SqlGen::new(Dir::Bwd, EdgeSource::SegTable, SqlStyle::New);
        assert!(b.expand_merge(FrontierPred::Marked).contains("TInSegs"));
    }

    #[test]
    fn traditional_style_avoids_window_functions() {
        let g = SqlGen::new(Dir::Fwd, EdgeSource::Edges, SqlStyle::Traditional);
        let m = g.expand_merge(FrontierPred::Marked);
        assert!(!m.contains("ROW_NUMBER"));
        assert!(m.to_uppercase().contains("GROUP BY"));
        let n = SqlGen::new(Dir::Fwd, EdgeSource::Edges, SqlStyle::New);
        assert!(n.expand_merge(FrontierPred::Marked).contains("ROW_NUMBER"));
    }
}
