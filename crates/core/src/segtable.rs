//! SegTable construction (§4.2) — itself an application of the FEM
//! framework, as the paper stresses in §5.3.
//!
//! Step 1 runs a *multi-source* bounded set-Dijkstra entirely in SQL over a
//! working table `TSegV(src, nid, d2s, p2s, f)` seeded with `(u, u, 0)` for
//! every node: each iteration marks the frontier (`d2s < k·w_min` or the
//! minimum — the construction analogue of Listing 4(1)), expands it against
//! `TEdges` restricted to `cost + d2s <= lthd`, and merges. Step 2 copies
//! the discovered segments into `TOutSegs`, merges in the residual original
//! edges (Definition 4, case 2), mirrors `TInSegs` (identical content for
//! symmetric graphs — see DESIGN.md §4) and indexes both per the configured
//! strategy.

use crate::graphdb::{GraphDb, SegTableInfo};
use crate::stats::SqlStyle;
use fempath_graph::IndexKind;
use fempath_sql::{Result, SqlError};
use fempath_storage::{IoStats, Value};
use std::time::{Duration, Instant};

/// Measurements of one SegTable build (Fig 9 reports size and time).
#[derive(Debug, Clone, Copy)]
pub struct SegTableStats {
    /// The index threshold.
    pub lthd: i64,
    /// Rows in `TOutSegs` — the paper's "encoding number" (Fig 9(a)/(b)).
    pub segments: u64,
    /// FEM iterations of step 1.
    pub iterations: u64,
    /// SQL statements issued.
    pub sql_statements: u64,
    /// Wall time.
    pub build_time: Duration,
    /// Buffer-pool/disk counter deltas.
    pub io: IoStats,
}

/// Builds the SegTable with the NSQL style (window + MERGE).
pub fn build_segtable(gdb: &mut GraphDb, lthd: i64) -> Result<SegTableStats> {
    build_segtable_with(gdb, lthd, SqlStyle::New)
}

/// Builds the SegTable with an explicit SQL style (Fig 9(f) compares both).
pub fn build_segtable_with(gdb: &mut GraphDb, lthd: i64, style: SqlStyle) -> Result<SegTableStats> {
    if lthd <= 0 {
        return Err(SqlError::Eval("lthd must be positive".into()));
    }
    let started = Instant::now();
    let io_start = gdb.db.io_stats();
    let stmts_start = gdb.db.statements_executed();
    let wmin = gdb.min_weight() as i64;
    let n = gdb.num_nodes() as i64;

    // Working table, clustered on (src, nid) so the MERGE probes are
    // clustered-index lookups and scans group by source.
    gdb.db.execute("DROP TABLE IF EXISTS TSegV")?;
    gdb.db.execute("DROP TABLE IF EXISTS TSegExp")?;
    gdb.db.execute("DROP TABLE IF EXISTS TOutSegs")?;
    gdb.db.execute("DROP TABLE IF EXISTS TInSegs")?;
    gdb.db
        .execute("CREATE TABLE TSegV (src INT, nid INT, d2s INT, p2s INT, f INT)")?;
    gdb.db
        .execute("CREATE UNIQUE CLUSTERED INDEX idx_tsegv ON TSegV(src, nid)")?;
    gdb.db.execute(
        "INSERT INTO TSegV (src, nid, d2s, p2s, f) SELECT nid, nid, 0, nid, 0 FROM TNodes",
    )?;

    let use_merge = gdb.merge_supported() && style == SqlStyle::New;
    if !use_merge {
        gdb.db
            .execute("CREATE TABLE TSegExp (src INT, nid INT, p2s INT, cost INT)")?;
    }

    let mark = "UPDATE TSegV SET f = 2 WHERE f = 0 AND (d2s < ? OR d2s = \
                (SELECT MIN(d2s) FROM TSegV WHERE f = 0))";
    let e_source = match style {
        SqlStyle::New => {
            "SELECT src, nid, np, cost FROM ( \
               SELECT q.src AS src, e.tid AS nid, e.fid AS np, e.cost + q.d2s AS cost, \
                      ROW_NUMBER() OVER (PARTITION BY q.src, e.tid ORDER BY e.cost + q.d2s) AS rownum \
               FROM TSegV q, TEdges e \
               WHERE q.nid = e.fid AND q.f = 2 AND e.cost + q.d2s <= ? AND e.tid <> q.src \
             ) tmp WHERE rownum = 1"
                .to_string()
        }
        SqlStyle::Traditional => {
            "SELECT q2.src AS src, e2.tid AS nid, MIN(e2.fid) AS np, m.c AS cost \
             FROM TSegV q2, TEdges e2, ( \
                SELECT q.src AS msrc, e.tid AS mtid, MIN(e.cost + q.d2s) AS c \
                FROM TSegV q, TEdges e \
                WHERE q.nid = e.fid AND q.f = 2 AND e.cost + q.d2s <= ? AND e.tid <> q.src \
                GROUP BY q.src, e.tid \
             ) m \
             WHERE q2.nid = e2.fid AND q2.f = 2 AND q2.src = m.msrc AND e2.tid = m.mtid \
               AND e2.cost + q2.d2s = m.c AND e2.tid <> q2.src \
             GROUP BY q2.src, e2.tid, m.c"
                .to_string()
        }
    };
    let expand_merge = format!(
        "MERGE INTO TSegV AS target USING ({e_source}) AS source (src, nid, np, cost) \
         ON source.src = target.src AND source.nid = target.nid \
         WHEN MATCHED AND target.d2s > source.cost THEN \
           UPDATE SET d2s = source.cost, p2s = source.np, f = 0 \
         WHEN NOT MATCHED THEN \
           INSERT (src, nid, d2s, p2s, f) VALUES (source.src, source.nid, source.cost, source.np, 0)"
    );
    let expand_into = format!("INSERT INTO TSegExp (src, nid, p2s, cost) {e_source}");
    let update_from = "UPDATE TSegV SET d2s = TSegExp.cost, p2s = TSegExp.p2s, f = 0 \
                       FROM TSegExp WHERE TSegV.src = TSegExp.src AND TSegV.nid = TSegExp.nid \
                       AND TSegV.d2s > TSegExp.cost";
    // Composite-key anti-join via single-value encoding (src·n + nid).
    let insert_new = "INSERT INTO TSegV (src, nid, d2s, p2s, f) \
                      SELECT src, nid, cost, p2s, 0 FROM TSegExp \
                      WHERE src * ? + nid NOT IN (SELECT src * ? + nid FROM TSegV)";
    let reset = "UPDATE TSegV SET f = 1 WHERE f = 2";

    let mut iterations = 0u64;
    let mut k = 1i64;
    loop {
        let marked = gdb
            .db
            .execute_params(mark, &[Value::Int(k.saturating_mul(wmin))])?
            .rows_affected;
        if marked == 0 {
            break;
        }
        if use_merge {
            gdb.db.execute_params(&expand_merge, &[Value::Int(lthd)])?;
        } else {
            gdb.db.execute("TRUNCATE TABLE TSegExp")?;
            gdb.db.execute_params(&expand_into, &[Value::Int(lthd)])?;
            gdb.db.execute(update_from)?;
            gdb.db
                .execute_params(insert_new, &[Value::Int(n), Value::Int(n)])?;
        }
        gdb.db.execute(reset)?;
        iterations += 1;
        k += 1;
        if iterations > 4 * lthd.max(4) as u64 + gdb.num_nodes() as u64 {
            return Err(SqlError::Eval(
                "SegTable construction exceeded its iteration bound".into(),
            ));
        }
    }

    // Step 2: materialize TOutSegs = segments + residual original edges.
    gdb.db
        .execute("CREATE TABLE TOutSegs (fid INT, tid INT, pid INT, cost INT)")?;
    gdb.db.execute(
        "INSERT INTO TOutSegs (fid, tid, pid, cost) \
         SELECT src, nid, p2s, d2s FROM TSegV WHERE nid <> src",
    )?;
    // Index before the residual-edge MERGE so its probes are index lookups.
    let (create_index, drop_after): (&str, bool) = match gdb.edges_index() {
        IndexKind::Clustered => (
            "CREATE CLUSTERED INDEX idx_toutsegs_fid ON TOutSegs(fid)",
            false,
        ),
        IndexKind::Secondary => ("CREATE INDEX idx_toutsegs_fid ON TOutSegs(fid)", false),
        IndexKind::NoIndex => ("CREATE INDEX idx_toutsegs_fid ON TOutSegs(fid)", true),
    };
    gdb.db.execute(create_index)?;
    // Definition 4 case 2: original edges whose endpoints have no segment.
    if use_merge {
        gdb.db.execute(
            "MERGE INTO TOutSegs AS target USING TEdges AS source \
             ON source.fid = target.fid AND source.tid = target.tid \
             WHEN NOT MATCHED THEN \
               INSERT (fid, tid, pid, cost) VALUES (source.fid, source.tid, source.fid, source.cost)",
        )?;
    } else {
        // No MERGE (PostgreSQL 9.0 dialect or TSQL style): composite-key
        // anti-join via the single-value encoding fid·n + tid.
        gdb.db.execute_params(
            "INSERT INTO TOutSegs (fid, tid, pid, cost) \
             SELECT fid, tid, fid, cost FROM TEdges \
             WHERE fid * ? + tid NOT IN (SELECT fid * ? + tid FROM TOutSegs)",
            &[Value::Int(n), Value::Int(n)],
        )?;
    }
    if drop_after {
        gdb.db.execute("DROP INDEX idx_toutsegs_fid")?;
    }

    // TInSegs: identical content for symmetric graphs (DESIGN.md §4).
    gdb.db
        .execute("CREATE TABLE TInSegs (fid INT, tid INT, pid INT, cost INT)")?;
    gdb.db.execute(
        "INSERT INTO TInSegs (fid, tid, pid, cost) SELECT fid, tid, pid, cost FROM TOutSegs",
    )?;
    match gdb.edges_index() {
        IndexKind::Clustered => {
            gdb.db
                .execute("CREATE CLUSTERED INDEX idx_tinsegs_fid ON TInSegs(fid)")?;
        }
        IndexKind::Secondary => {
            gdb.db
                .execute("CREATE INDEX idx_tinsegs_fid ON TInSegs(fid)")?;
        }
        IndexKind::NoIndex => {}
    }

    let segments = gdb.db.table_len("TOutSegs")?;
    gdb.db.execute("DROP TABLE TSegV")?;
    if !use_merge {
        gdb.db.execute("DROP TABLE TSegExp")?;
    }
    gdb.db.flush()?;
    gdb.set_segtable(SegTableInfo { lthd, segments });

    Ok(SegTableStats {
        lthd,
        segments,
        iterations,
        sql_statements: gdb.db.statements_executed() - stmts_start,
        build_time: started.elapsed(),
        io: gdb.db.io_stats().since(&io_start),
    })
}

/// Reads every segment `(fid, tid, cost)` back — used by tests to compare
/// against the in-memory bounded-Dijkstra oracle.
pub fn read_segments(gdb: &mut GraphDb) -> Result<Vec<(i64, i64, i64)>> {
    let rs = gdb.db.query("SELECT fid, tid, cost FROM TOutSegs")?;
    Ok(rs
        .rows
        .into_iter()
        .map(|r| {
            (
                r[0].as_i64().unwrap_or(-1),
                r[1].as_i64().unwrap_or(-1),
                r[2].as_i64().unwrap_or(-1),
            )
        })
        .collect())
}
