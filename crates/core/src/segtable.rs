//! SegTable construction (§4.2) — itself an application of the FEM
//! framework, as the paper stresses in §5.3.
//!
//! Step 1 runs a *multi-source* bounded set-Dijkstra entirely in SQL over a
//! working table `TSegV(src, nid, d2s, p2s, f)` seeded with `(u, u, 0)` for
//! every node: each iteration marks the frontier (`d2s < k·w_min` or the
//! minimum — the construction analogue of Listing 4(1)), expands it against
//! `TEdges` restricted to `cost + d2s <= lthd`, and merges. Step 2 copies
//! the discovered segments into `TOutSegs`, merges in the residual original
//! edges (Definition 4, case 2), mirrors `TInSegs` (identical content for
//! symmetric graphs — see DESIGN.md §4) and indexes both per the configured
//! strategy.

use crate::graphdb::{GraphDb, SegTableInfo};
use crate::sqlgen::AnnotatedSql;
use crate::stats::SqlStyle;
use fempath_graph::IndexKind;
use fempath_sql::{Result, SqlError};
use fempath_storage::{IoStats, Value};
use std::time::{Duration, Instant};

// Statement texts shared between [`build_segtable_with`] and
// [`build_statement_corpus`], so the analyzed corpus is byte-for-byte what
// the build executes.
const CREATE_TSEGV: &str = "CREATE TABLE TSegV (src INT, nid INT, d2s INT, p2s INT, f INT)";
const CREATE_TSEGV_IDX: &str = "CREATE UNIQUE CLUSTERED INDEX idx_tsegv ON TSegV(src, nid)";
const SEED_TSEGV: &str =
    "INSERT INTO TSegV (src, nid, d2s, p2s, f) SELECT nid, nid, 0, nid, 0 FROM TNodes";
const CREATE_TSEGEXP: &str = "CREATE TABLE TSegExp (src INT, nid INT, p2s INT, cost INT)";
const MARK: &str = "UPDATE TSegV SET f = 2 WHERE f = 0 AND (d2s < ? OR d2s = \
                    (SELECT MIN(d2s) FROM TSegV WHERE f = 0))";
const UPDATE_FROM: &str = "UPDATE TSegV SET d2s = TSegExp.cost, p2s = TSegExp.p2s, f = 0 \
                           FROM TSegExp WHERE TSegV.src = TSegExp.src AND TSegV.nid = TSegExp.nid \
                           AND TSegV.d2s > TSegExp.cost";
// Composite-key anti-join via single-value encoding (src·n + nid).
const INSERT_NEW: &str = "INSERT INTO TSegV (src, nid, d2s, p2s, f) \
                          SELECT src, nid, cost, p2s, 0 FROM TSegExp \
                          WHERE src * ? + nid NOT IN (SELECT src * ? + nid FROM TSegV \
                          WHERE src IS NOT NULL AND nid IS NOT NULL)";
const RESET: &str = "UPDATE TSegV SET f = 1 WHERE f = 2";
const CREATE_TOUTSEGS: &str = "CREATE TABLE TOutSegs (fid INT, tid INT, pid INT, cost INT)";
const COPY_SEGMENTS: &str = "INSERT INTO TOutSegs (fid, tid, pid, cost) \
                             SELECT src, nid, p2s, d2s FROM TSegV WHERE nid <> src";
const RESIDUAL_MERGE: &str = "MERGE INTO TOutSegs AS target USING TEdges AS source \
     ON source.fid = target.fid AND source.tid = target.tid \
     WHEN NOT MATCHED THEN \
       INSERT (fid, tid, pid, cost) VALUES (source.fid, source.tid, source.fid, source.cost)";
// No MERGE (PostgreSQL 9.0 dialect or TSQL style): composite-key anti-join
// via the single-value encoding fid·n + tid.
const RESIDUAL_ANTIJOIN: &str = "INSERT INTO TOutSegs (fid, tid, pid, cost) \
                                 SELECT fid, tid, fid, cost FROM TEdges \
                                 WHERE fid * ? + tid NOT IN (SELECT fid * ? + tid FROM TOutSegs \
                                 WHERE fid IS NOT NULL AND tid IS NOT NULL)";
const CREATE_TINSEGS: &str = "CREATE TABLE TInSegs (fid INT, tid INT, pid INT, cost INT)";
const MIRROR_TINSEGS: &str =
    "INSERT INTO TInSegs (fid, tid, pid, cost) SELECT fid, tid, pid, cost FROM TOutSegs";

fn e_source_sql(style: SqlStyle) -> &'static str {
    match style {
        SqlStyle::New => {
            "SELECT src, nid, np, cost FROM ( \
               SELECT q.src AS src, e.tid AS nid, e.fid AS np, e.cost + q.d2s AS cost, \
                      ROW_NUMBER() OVER (PARTITION BY q.src, e.tid ORDER BY e.cost + q.d2s) AS rownum \
               FROM TSegV q, TEdges e \
               WHERE q.nid = e.fid AND q.f = 2 AND e.cost + q.d2s <= ? AND e.tid <> q.src \
             ) tmp WHERE rownum = 1"
        }
        SqlStyle::Traditional => {
            "SELECT q2.src AS src, e2.tid AS nid, MIN(e2.fid) AS np, m.c AS cost \
             FROM TSegV q2, TEdges e2, ( \
                SELECT q.src AS msrc, e.tid AS mtid, MIN(e.cost + q.d2s) AS c \
                FROM TSegV q, TEdges e \
                WHERE q.nid = e.fid AND q.f = 2 AND e.cost + q.d2s <= ? AND e.tid <> q.src \
                GROUP BY q.src, e.tid \
             ) m \
             WHERE q2.nid = e2.fid AND q2.f = 2 AND q2.src = m.msrc AND e2.tid = m.mtid \
               AND e2.cost + q2.d2s = m.c AND e2.tid <> q2.src \
             GROUP BY q2.src, e2.tid, m.c"
        }
    }
}

fn expand_merge_sql(style: SqlStyle) -> String {
    let e_source = e_source_sql(style);
    format!(
        "MERGE INTO TSegV AS target USING ({e_source}) AS source (src, nid, np, cost) \
         ON source.src = target.src AND source.nid = target.nid \
         WHEN MATCHED AND target.d2s > source.cost THEN \
           UPDATE SET d2s = source.cost, p2s = source.np, f = 0 \
         WHEN NOT MATCHED THEN \
           INSERT (src, nid, d2s, p2s, f) VALUES (source.src, source.nid, source.cost, source.np, 0)"
    )
}

fn expand_into_sql(style: SqlStyle) -> String {
    let e_source = e_source_sql(style);
    format!("INSERT INTO TSegExp (src, nid, p2s, cost) {e_source}")
}

/// Recreates the build's working tables so the build corpus resolves when
/// analyzed after a real build (which drops them). The corpus walker calls
/// this, analyzes, and drops the tables again.
pub(crate) fn create_working_tables(db: &mut fempath_sql::Database) -> Result<()> {
    db.execute(CREATE_TSEGV)?;
    db.execute(CREATE_TSEGV_IDX)?;
    db.execute(CREATE_TSEGEXP)?;
    Ok(())
}

/// Every statement one SegTable build configuration issues, annotated for
/// the static analyzer. All statements are cold — the build runs once per
/// database, offline. `TSegV`/`TSegExp` are dropped after a real build, so
/// the corpus walker recreates them while analyzing.
pub fn build_statement_corpus(style: SqlStyle, use_merge: bool) -> Vec<AnnotatedSql> {
    let t = match style {
        SqlStyle::New => "seg/nsql",
        SqlStyle::Traditional => "seg/tsql",
    };
    let m = if use_merge { "merge" } else { "nomerge" };
    let mut out = vec![
        AnnotatedSql::cold(format!("{t}/{m}/create_tsegv"), CREATE_TSEGV),
        AnnotatedSql::cold(format!("{t}/{m}/create_tsegv_idx"), CREATE_TSEGV_IDX),
        AnnotatedSql::cold(format!("{t}/{m}/seed_tsegv"), SEED_TSEGV),
        AnnotatedSql::cold(format!("{t}/{m}/mark"), MARK),
        AnnotatedSql::cold(format!("{t}/{m}/reset"), RESET),
        AnnotatedSql::cold(format!("{t}/{m}/copy_segments"), COPY_SEGMENTS),
        AnnotatedSql::cold(format!("{t}/{m}/mirror_tinsegs"), MIRROR_TINSEGS),
    ];
    if use_merge {
        out.push(AnnotatedSql::cold(
            format!("{t}/{m}/expand_merge"),
            expand_merge_sql(style),
        ));
        out.push(AnnotatedSql::cold(
            format!("{t}/{m}/residual_merge"),
            RESIDUAL_MERGE,
        ));
    } else {
        out.push(AnnotatedSql::cold(
            format!("{t}/{m}/create_tsegexp"),
            CREATE_TSEGEXP,
        ));
        out.push(AnnotatedSql::cold(
            format!("{t}/{m}/expand_into"),
            expand_into_sql(style),
        ));
        out.push(AnnotatedSql::cold(
            format!("{t}/{m}/update_from"),
            UPDATE_FROM,
        ));
        out.push(AnnotatedSql::cold(
            format!("{t}/{m}/insert_new"),
            INSERT_NEW,
        ));
        out.push(AnnotatedSql::cold(
            format!("{t}/{m}/residual_antijoin"),
            RESIDUAL_ANTIJOIN,
        ));
    }
    out
}

/// Measurements of one SegTable build (Fig 9 reports size and time).
#[derive(Debug, Clone, Copy)]
pub struct SegTableStats {
    /// The index threshold.
    pub lthd: i64,
    /// Rows in `TOutSegs` — the paper's "encoding number" (Fig 9(a)/(b)).
    pub segments: u64,
    /// FEM iterations of step 1.
    pub iterations: u64,
    /// SQL statements issued.
    pub sql_statements: u64,
    /// Wall time.
    pub build_time: Duration,
    /// Buffer-pool/disk counter deltas.
    pub io: IoStats,
}

/// Builds the SegTable with the NSQL style (window + MERGE).
pub fn build_segtable(gdb: &mut GraphDb, lthd: i64) -> Result<SegTableStats> {
    build_segtable_with(gdb, lthd, SqlStyle::New)
}

/// Builds the SegTable with an explicit SQL style (Fig 9(f) compares both).
pub fn build_segtable_with(gdb: &mut GraphDb, lthd: i64, style: SqlStyle) -> Result<SegTableStats> {
    if lthd <= 0 {
        return Err(SqlError::Eval("lthd must be positive".into()));
    }
    let started = Instant::now();
    let io_start = gdb.db.io_stats();
    let stmts_start = gdb.db.statements_executed();
    let wmin = gdb.min_weight() as i64;
    let n = gdb.num_nodes() as i64;

    // Working table, clustered on (src, nid) so the MERGE probes are
    // clustered-index lookups and scans group by source.
    gdb.db.execute("DROP TABLE IF EXISTS TSegV")?;
    gdb.db.execute("DROP TABLE IF EXISTS TSegExp")?;
    gdb.db.execute("DROP TABLE IF EXISTS TOutSegs")?;
    gdb.db.execute("DROP TABLE IF EXISTS TInSegs")?;
    gdb.db.execute(CREATE_TSEGV)?;
    gdb.db.execute(CREATE_TSEGV_IDX)?;
    gdb.db.execute(SEED_TSEGV)?;

    let use_merge = gdb.merge_supported() && style == SqlStyle::New;
    if !use_merge {
        gdb.db.execute(CREATE_TSEGEXP)?;
    }

    let expand_merge = expand_merge_sql(style);
    let expand_into = expand_into_sql(style);

    let mut iterations = 0u64;
    let mut k = 1i64;
    loop {
        let marked = gdb
            .db
            .execute_params(MARK, &[Value::Int(k.saturating_mul(wmin))])?
            .rows_affected;
        if marked == 0 {
            break;
        }
        if use_merge {
            gdb.db.execute_params(&expand_merge, &[Value::Int(lthd)])?;
        } else {
            gdb.db.execute("TRUNCATE TABLE TSegExp")?;
            gdb.db.execute_params(&expand_into, &[Value::Int(lthd)])?;
            gdb.db.execute(UPDATE_FROM)?;
            gdb.db
                .execute_params(INSERT_NEW, &[Value::Int(n), Value::Int(n)])?;
        }
        gdb.db.execute(RESET)?;
        iterations += 1;
        k += 1;
        if iterations > 4 * lthd.max(4) as u64 + gdb.num_nodes() as u64 {
            return Err(SqlError::Eval(
                "SegTable construction exceeded its iteration bound".into(),
            ));
        }
    }

    // Step 2: materialize TOutSegs = segments + residual original edges.
    gdb.db.execute(CREATE_TOUTSEGS)?;
    gdb.db.execute(COPY_SEGMENTS)?;
    // Index before the residual-edge MERGE so its probes are index lookups.
    let (create_index, drop_after): (&str, bool) = match gdb.edges_index() {
        IndexKind::Clustered => (
            "CREATE CLUSTERED INDEX idx_toutsegs_fid ON TOutSegs(fid)",
            false,
        ),
        IndexKind::Secondary => ("CREATE INDEX idx_toutsegs_fid ON TOutSegs(fid)", false),
        IndexKind::NoIndex => ("CREATE INDEX idx_toutsegs_fid ON TOutSegs(fid)", true),
    };
    gdb.db.execute(create_index)?;
    // Definition 4 case 2: original edges whose endpoints have no segment.
    if use_merge {
        gdb.db.execute(RESIDUAL_MERGE)?;
    } else {
        gdb.db
            .execute_params(RESIDUAL_ANTIJOIN, &[Value::Int(n), Value::Int(n)])?;
    }
    if drop_after {
        gdb.db.execute("DROP INDEX idx_toutsegs_fid")?;
    }

    // TInSegs: identical content for symmetric graphs (DESIGN.md §4).
    gdb.db.execute(CREATE_TINSEGS)?;
    gdb.db.execute(MIRROR_TINSEGS)?;
    match gdb.edges_index() {
        IndexKind::Clustered => {
            gdb.db
                .execute("CREATE CLUSTERED INDEX idx_tinsegs_fid ON TInSegs(fid)")?;
        }
        IndexKind::Secondary => {
            gdb.db
                .execute("CREATE INDEX idx_tinsegs_fid ON TInSegs(fid)")?;
        }
        IndexKind::NoIndex => {}
    }

    let segments = gdb.db.table_len("TOutSegs")?;
    gdb.db.execute("DROP TABLE TSegV")?;
    if !use_merge {
        gdb.db.execute("DROP TABLE TSegExp")?;
    }
    gdb.db.flush()?;
    gdb.set_segtable(SegTableInfo { lthd, segments });

    Ok(SegTableStats {
        lthd,
        segments,
        iterations,
        sql_statements: gdb.db.statements_executed() - stmts_start,
        build_time: started.elapsed(),
        io: gdb.db.io_stats().since(&io_start),
    })
}

/// Reads every segment `(fid, tid, cost)` back — used by tests to compare
/// against the in-memory bounded-Dijkstra oracle.
pub fn read_segments(gdb: &mut GraphDb) -> Result<Vec<(i64, i64, i64)>> {
    let rs = gdb.db.query("SELECT fid, tid, cost FROM TOutSegs")?;
    Ok(rs
        .rows
        .into_iter()
        .map(|r| {
            (
                r[0].as_i64().unwrap_or(-1),
                r[1].as_i64().unwrap_or(-1),
                r[2].as_i64().unwrap_or(-1),
            )
        })
        .collect())
}
