//! Graph pattern matching in the FEM framework — the paper's first listed
//! future-work item, sketched in §3.1.
//!
//! §3.1 describes the scheme for general patterns: the visited set holds
//! *tuples* `(d⁰, …, dᵏ)` of data nodes matched to the query nodes handled
//! so far, and each iteration extends every tuple by one query node whose
//! label and connectivity requirements hold. This module implements the
//! path-pattern case (`l₀ → l₁ → … → lₖ`): iteration `k` joins the tuple
//! table with `TEdges` and `TLabels`, exactly one F/E/M round per query
//! node. The tuple table grows one column per iteration — relational
//! schema evolution standing in for the paper's tuple notation.

use crate::graphdb::GraphDb;
use fempath_sql::{Result, SqlError};
use fempath_storage::Value;

/// Installs (or replaces) node labels: `labels[v]` is the label of node
/// `v`. Creates `TLabels(nid, label)` with an index on `label`.
pub fn set_labels(gdb: &mut GraphDb, labels: &[i64]) -> Result<()> {
    if labels.len() != gdb.num_nodes() {
        return Err(SqlError::Eval(format!(
            "expected {} labels, got {}",
            gdb.num_nodes(),
            labels.len()
        )));
    }
    gdb.db.execute("DROP TABLE IF EXISTS TLabels")?;
    gdb.db
        .execute("CREATE TABLE TLabels (nid INT, label INT, PRIMARY KEY(nid))")?;
    for (chunk_start, chunk) in labels.chunks(256).enumerate().map(|(i, c)| (i * 256, c)) {
        let placeholders: Vec<&str> = chunk.iter().map(|_| "(?, ?)").collect();
        let sql = format!(
            "INSERT INTO TLabels (nid, label) VALUES {}",
            placeholders.join(", ")
        );
        let mut params = Vec::with_capacity(chunk.len() * 2);
        for (off, &l) in chunk.iter().enumerate() {
            params.push(Value::Int((chunk_start + off) as i64));
            params.push(Value::Int(l));
        }
        gdb.db.execute_params(&sql, &params)?;
    }
    gdb.db
        .execute("CREATE INDEX idx_tlabels_label ON TLabels(label)")?;
    Ok(())
}

/// Matches a label path `l₀ → l₁ → … → lₖ` and returns every embedding as
/// a node tuple. `isomorphic` additionally requires all tuple nodes to be
/// pairwise distinct (subgraph isomorphism vs homomorphism).
pub fn match_label_path(
    gdb: &mut GraphDb,
    labels: &[i64],
    isomorphic: bool,
) -> Result<Vec<Vec<i64>>> {
    if labels.is_empty() {
        return Ok(Vec::new());
    }
    if !gdb.db.has_table("TLabels") {
        return Err(SqlError::Eval(
            "no labels installed: call set_labels first".into(),
        ));
    }
    let cols = |k: usize| -> Vec<String> { (0..=k).map(|i| format!("n{i}")).collect() };

    // Iteration 0: seed tuples from the label index.
    gdb.db.execute("DROP TABLE IF EXISTS TMatch0")?;
    gdb.db.execute("CREATE TABLE TMatch0 (n0 INT)")?;
    gdb.db.execute_params(
        "INSERT INTO TMatch0 (n0) SELECT nid FROM TLabels WHERE label = ?",
        &[Value::Int(labels[0])],
    )?;

    // Iterations 1..k: extend each tuple by one edge + label check.
    #[allow(clippy::needless_range_loop)] // k names tables, not just labels[k]
    for k in 1..labels.len() {
        let col_defs: Vec<String> = cols(k).iter().map(|c| format!("{c} INT")).collect();
        gdb.db.execute(&format!("DROP TABLE IF EXISTS TMatch{k}"))?;
        gdb.db
            .execute(&format!("CREATE TABLE TMatch{k} ({})", col_defs.join(", ")))?;
        let qualified_prev: Vec<String> = cols(k - 1).iter().map(|c| format!("m.{c}")).collect();
        let mut distinct = String::new();
        if isomorphic {
            for c in cols(k - 1) {
                distinct.push_str(&format!(" AND e.tid <> m.{c}"));
            }
        }
        let sql = format!(
            "INSERT INTO TMatch{k} ({}) \
             SELECT {}, e.tid FROM TMatch{prev} m, TEdges e, TLabels l \
             WHERE m.n{prev} = e.fid AND l.nid = e.tid AND l.label = ?{distinct}",
            cols(k).join(", "),
            qualified_prev.join(", "),
            prev = k - 1,
        );
        gdb.db.execute_params(&sql, &[Value::Int(labels[k])])?;
        gdb.db.execute(&format!("DROP TABLE TMatch{}", k - 1))?;
    }

    let last = labels.len() - 1;
    let rs = gdb.db.query(&format!(
        "SELECT {} FROM TMatch{last}",
        cols(last).join(", ")
    ))?;
    gdb.db.execute(&format!("DROP TABLE TMatch{last}"))?;
    Ok(rs
        .rows
        .into_iter()
        .map(|r| r.iter().map(|v| v.as_i64().unwrap_or(-1)).collect())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fempath_graph::Graph;

    /// Brute-force oracle for label-path matching.
    fn oracle(g: &Graph, labels_of: &[i64], pattern: &[i64], iso: bool) -> Vec<Vec<i64>> {
        let mut tuples: Vec<Vec<i64>> = (0..g.num_nodes() as i64)
            .filter(|&v| labels_of[v as usize] == pattern[0])
            .map(|v| vec![v])
            .collect();
        for &want in &pattern[1..] {
            let mut next = Vec::new();
            for t in &tuples {
                let last = *t.last().unwrap() as u32;
                for a in g.out_arcs(last) {
                    let v = a.to as i64;
                    if labels_of[v as usize] != want {
                        continue;
                    }
                    if iso && t.contains(&v) {
                        continue;
                    }
                    let mut nt = t.clone();
                    nt.push(v);
                    next.push(nt);
                }
            }
            tuples = next;
        }
        tuples
    }

    fn sorted(mut v: Vec<Vec<i64>>) -> Vec<Vec<i64>> {
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn path_pattern_on_labeled_triangle() {
        // Triangle 0-1-2 with labels A=0, B=1, C=2.
        let g = Graph::from_undirected_edges(3, vec![(0, 1, 1), (1, 2, 1), (0, 2, 1)]);
        let labels = vec![0i64, 1, 2];
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        set_labels(&mut gdb, &labels).unwrap();
        let m = match_label_path(&mut gdb, &[0, 1, 2], true).unwrap();
        assert_eq!(sorted(m), vec![vec![0, 1, 2]]);
        // Pattern B -> A -> C.
        let m = match_label_path(&mut gdb, &[1, 0, 2], true).unwrap();
        assert_eq!(sorted(m), vec![vec![1, 0, 2]]);
        // No D label anywhere.
        assert!(match_label_path(&mut gdb, &[3], true).unwrap().is_empty());
    }

    #[test]
    fn matches_brute_force_on_random_labeled_graph() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let edges: Vec<(u32, u32, u32)> = (0..60)
            .map(|_| (rng.gen_range(0..30), rng.gen_range(0..30), 1))
            .filter(|(u, v, _)| u != v)
            .collect();
        let g = Graph::from_undirected_edges(30, edges);
        let labels: Vec<i64> = (0..30).map(|_| rng.gen_range(0..3)).collect();
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        set_labels(&mut gdb, &labels).unwrap();
        for pattern in [vec![0i64, 1], vec![2, 2, 0], vec![1, 0, 2, 1]] {
            for iso in [false, true] {
                let got = sorted(match_label_path(&mut gdb, &pattern, iso).unwrap());
                let want = sorted(oracle(&g, &labels, &pattern, iso));
                assert_eq!(got, want, "pattern {pattern:?} iso={iso}");
            }
        }
    }

    #[test]
    fn homomorphic_allows_revisits_isomorphic_does_not() {
        // Path graph 0(A) - 1(B): pattern A-B-A.
        let g = Graph::from_undirected_edges(2, vec![(0, 1, 1)]);
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        set_labels(&mut gdb, &[0, 1]).unwrap();
        let homo = match_label_path(&mut gdb, &[0, 1, 0], false).unwrap();
        assert_eq!(sorted(homo), vec![vec![0, 1, 0]]);
        let iso = match_label_path(&mut gdb, &[0, 1, 0], true).unwrap();
        assert!(iso.is_empty());
    }

    #[test]
    fn label_arity_checked() {
        let g = Graph::from_undirected_edges(3, vec![(0, 1, 1)]);
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        assert!(set_labels(&mut gdb, &[0, 1]).is_err());
        assert!(
            match_label_path(&mut gdb, &[0], true).is_err(),
            "labels not installed"
        );
    }
}
