//! Contention-free job dispatch for [`crate::PathService`] (DESIGN.md §13).
//!
//! The first service revision funneled every job through one
//! `Arc<Mutex<Receiver>>`: each dequeue bounced the same lock (and the
//! same cache line) across every worker, so adding workers added queueing
//! instead of throughput. This module replaces it with **per-worker
//! queues plus work-stealing**, the shape crossbeam's deque gives a
//! thread pool, implemented locally (no crates.io):
//!
//! * every worker owns a private FIFO ([`VecDeque`] behind its own
//!   mutex). Producers round-robin jobs across the queues, so in steady
//!   state each queue is touched by one producer and one consumer and
//!   the per-queue locks are essentially uncontended — dispatch cost no
//!   longer grows with the worker count;
//! * a worker whose own queue is empty **steals** the oldest job from a
//!   sibling (FIFO order keeps tail latency honest), so an uneven
//!   workload still keeps every core busy;
//! * idle workers park on one condvar and are woken per-push; a bounded
//!   `wait_timeout` is kept purely as a liveness backstop.
//!
//! Every queue keeps lightweight counters — jobs executed, jobs stolen,
//! queue-depth high-water mark, and a log₂-bucketed histogram of how
//! long jobs sat queued before a worker picked them up. The
//! `service-throughput` experiment surfaces them so a scaling regression
//! shows up as numbers, not vibes.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Number of log₂ microsecond buckets in a [`WaitHistogram`]: bucket `i`
/// counts waits in `[2^i, 2^(i+1))` µs, the last bucket is open-ended
/// (≥ ~32 ms — exactly the pathology the old single-queue service showed).
pub const WAIT_BUCKETS: usize = 16;

/// A log₂-bucketed histogram of queue-wait times in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaitHistogram {
    /// `buckets[i]` counts waits in `[2^i, 2^(i+1))` µs.
    pub buckets: [u64; WAIT_BUCKETS],
}

impl WaitHistogram {
    fn bucket(us: u64) -> usize {
        ((64 - us.max(1).leading_zeros() as usize) - 1).min(WAIT_BUCKETS - 1)
    }

    /// Total recorded waits.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Adds another histogram into this one.
    pub fn merge(&mut self, other: &WaitHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Upper edge (µs) of the bucket holding quantile `q` (0.0–1.0) —
    /// a conservative bound on the quantile, not an interpolation.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << WAIT_BUCKETS
    }
}

/// Counter snapshot for one worker queue (all monotonic except `depth`).
#[derive(Debug, Clone, Default)]
pub struct WorkerQueueStats {
    /// Jobs this worker executed (own queue + stolen).
    pub executed: u64,
    /// Jobs this worker took from a sibling's queue.
    pub stolen: u64,
    /// Jobs currently sitting in this worker's queue.
    pub depth: usize,
    /// High-water mark of this worker's queue depth.
    pub depth_hwm: u64,
    /// Queue-wait of jobs that sat in **this** worker's queue (whoever
    /// ended up executing them).
    pub wait: WaitHistogram,
}

struct Slot<T> {
    /// The jobs, each stamped with its enqueue time.
    queue: Mutex<VecDeque<(T, Instant)>>,
    executed: AtomicU64,
    stolen: AtomicU64,
    depth_hwm: AtomicU64,
    wait: [AtomicU64; WAIT_BUCKETS],
}

impl<T> Slot<T> {
    fn new() -> Slot<T> {
        Slot {
            queue: Mutex::new(VecDeque::new()),
            executed: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            depth_hwm: AtomicU64::new(0),
            wait: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record_wait(&self, queued_at: Instant) {
        let us = queued_at.elapsed().as_micros() as u64;
        // ORDERING: Relaxed — monotonic histogram counter, read racily
        // for reporting; nothing is ordered against it.
        self.wait[WaitHistogram::bucket(us)].fetch_add(1, Ordering::Relaxed);
    }
}

/// Locks a mutex, surviving poisoning: dispatch state is only plain
/// queue data, and no user code ever runs under these locks, so a
/// poisoned lock can only mean a sibling worker panicked *elsewhere* —
/// the queue contents are still coherent.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Per-worker job queues with work-stealing — the dispatch fabric under
/// [`crate::PathService`].
pub struct StealQueues<T> {
    slots: Vec<Slot<T>>,
    /// Jobs pushed but not yet taken, across all queues. Incremented
    /// *before* the queue push so a worker that observes `pending > 0`
    /// and finds every queue empty knows a push is mid-flight and must
    /// re-scan instead of parking through it.
    pending: AtomicUsize,
    /// Cleared by [`StealQueues::close`]; pushes are refused after.
    open: AtomicBool,
    /// Workers currently parked on `wake` — lets the push path skip the
    /// sleep lock entirely while every worker is busy.
    idle: AtomicUsize,
    sleep: Mutex<()>,
    wake: Condvar,
    /// Round-robin cursor for target selection.
    rr: AtomicUsize,
}

impl<T> StealQueues<T> {
    /// `workers` queues (min 1).
    pub fn new(workers: usize) -> StealQueues<T> {
        StealQueues {
            slots: (0..workers.max(1)).map(|_| Slot::new()).collect(),
            pending: AtomicUsize::new(0),
            open: AtomicBool::new(true),
            idle: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            rr: AtomicUsize::new(0),
        }
    }

    /// Number of worker queues.
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// Reserves `n` consecutive round-robin targets and returns the first
    /// — batch submission spreads its tiles from here so two concurrent
    /// batches don't pile onto the same workers.
    pub fn reserve_targets(&self, n: usize) -> usize {
        // ORDERING: Relaxed — the cursor only spreads load; any
        // interleaving of the RMWs yields distinct, valid targets.
        self.rr.fetch_add(n, Ordering::Relaxed) % self.slots.len()
    }

    /// Enqueues `job` on the next round-robin queue. Returns the job
    /// back when the pool is closed.
    pub fn push(&self, job: T) -> Result<(), T> {
        let target = self.reserve_targets(1);
        self.push_to(target, job)
    }

    /// Enqueues `job` on `worker`'s queue (stealable by every sibling).
    pub fn push_to(&self, worker: usize, job: T) -> Result<(), T> {
        if !self.open.load(Ordering::SeqCst) {
            return Err(job);
        }
        let slot = &self.slots[worker % self.slots.len()];
        self.pending.fetch_add(1, Ordering::SeqCst);
        {
            let mut q = lock(&slot.queue);
            q.push_back((job, Instant::now()));
            // ORDERING: Relaxed — diagnostic high-water mark; the queue
            // mutex already orders the len() read it records.
            slot.depth_hwm.fetch_max(q.len() as u64, Ordering::Relaxed);
        }
        if self.idle.load(Ordering::SeqCst) > 0 {
            // Taking (and dropping) the sleep lock orders this wakeup
            // against a worker that is between its last queue scan and
            // its `wait` — without it the notify could land in that
            // window and be lost.
            drop(lock(&self.sleep));
            self.wake.notify_one();
        }
        Ok(())
    }

    /// Blocks until a job is available for worker `me` (own queue first,
    /// then stealing, oldest job first) or the pool is closed *and*
    /// drained; `None` means "no more jobs, ever".
    pub fn pop(&self, me: usize) -> Option<T> {
        loop {
            if let Some(job) = self.try_take(me) {
                return Some(job);
            }
            if self.pending.load(Ordering::SeqCst) > 0 {
                // A push is mid-flight (pending is incremented before the
                // queue insert) — re-scan rather than park through it.
                std::hint::spin_loop();
                continue;
            }
            if !self.open.load(Ordering::SeqCst) {
                return None;
            }
            let guard = lock(&self.sleep);
            if self.pending.load(Ordering::SeqCst) > 0 || !self.open.load(Ordering::SeqCst) {
                continue;
            }
            self.idle.fetch_add(1, Ordering::SeqCst);
            // The timeout is a liveness backstop only; every push that
            // sees an idle worker notifies explicitly.
            let _ = self.wake.wait_timeout(guard, Duration::from_millis(20));
            self.idle.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn try_take(&self, me: usize) -> Option<T> {
        let n = self.slots.len();
        for k in 0..n {
            let victim = (me + k) % n;
            let taken = lock(&self.slots[victim].queue).pop_front();
            if let Some((job, queued_at)) = taken {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                self.slots[victim].record_wait(queued_at);
                // ORDERING: Relaxed — monotonic diagnostic counters read
                // racily by `queue_stats`; nothing is ordered against them.
                self.slots[me].executed.fetch_add(1, Ordering::Relaxed);
                if victim != me {
                    self.slots[me].stolen.fetch_add(1, Ordering::Relaxed);
                }
                return Some(job);
            }
        }
        None
    }

    /// Refuses further pushes and wakes every parked worker. Jobs already
    /// queued are still handed out, so workers drain before exiting.
    pub fn close(&self) {
        self.open.store(false, Ordering::SeqCst);
        drop(lock(&self.sleep));
        self.wake.notify_all();
    }

    /// True until [`StealQueues::close`].
    pub fn is_open(&self) -> bool {
        self.open.load(Ordering::SeqCst)
    }

    /// Counter snapshot for worker `i`'s queue.
    pub fn queue_stats(&self, i: usize) -> WorkerQueueStats {
        let slot = &self.slots[i];
        // ORDERING: Relaxed — racy snapshot of diagnostic counters; a
        // torn view across counters is acceptable for reporting.
        WorkerQueueStats {
            executed: slot.executed.load(Ordering::Relaxed),
            stolen: slot.stolen.load(Ordering::Relaxed),
            depth: lock(&slot.queue).len(),
            depth_hwm: slot.depth_hwm.load(Ordering::Relaxed),
            wait: WaitHistogram {
                buckets: std::array::from_fn(|b| slot.wait[b].load(Ordering::Relaxed)),
            },
        }
    }
}

/// Splits `len` items into at most `parts` contiguous `(offset, len)`
/// tiles whose sizes differ by at most one — the batch partitioner of
/// [`crate::PathService::query_batch`].
///
/// Unlike `div_ceil` tiling (which hands out ceil-sized tiles until the
/// items run out, so `len` just above `parts` leaves most workers idle
/// behind a few oversized tiles), every available worker gets a tile
/// whenever `len >= parts`.
pub fn partition_even(len: usize, parts: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let rem = len % parts;
    let mut tiles = Vec::with_capacity(parts);
    let mut offset = 0;
    for i in 0..parts {
        let tile = base + usize::from(i < rem);
        tiles.push((offset, tile));
        offset += tile;
    }
    debug_assert_eq!(offset, len);
    tiles
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn partition_even_spreads_just_above_worker_count() {
        // The div_ceil regression: 9 pairs on 8 workers used to become
        // five tiles (2,2,2,2,1) on five workers; now all eight workers
        // get a tile and no tile exceeds ceil(9/8) = 2.
        let tiles = partition_even(9, 8);
        assert_eq!(tiles.len(), 8, "every worker gets a tile");
        let sizes: Vec<usize> = tiles.iter().map(|&(_, l)| l).collect();
        assert_eq!(sizes, vec![2, 1, 1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn partition_even_invariants() {
        for len in 0..60usize {
            for parts in 1..10usize {
                let tiles = partition_even(len, parts);
                if len == 0 {
                    assert!(tiles.is_empty());
                    continue;
                }
                assert_eq!(tiles.len(), parts.min(len));
                // Contiguous, in order, covering exactly [0, len).
                let mut expect = 0;
                for &(off, l) in &tiles {
                    assert_eq!(off, expect);
                    assert!(l >= 1);
                    expect += l;
                }
                assert_eq!(expect, len);
                // Even: sizes differ by at most one, max is ceil(len/parts).
                let max = tiles.iter().map(|&(_, l)| l).max().unwrap();
                let min = tiles.iter().map(|&(_, l)| l).min().unwrap();
                assert!(max - min <= 1, "len={len} parts={parts}");
                assert_eq!(max, len.div_ceil(parts.min(len)));
            }
        }
    }

    #[test]
    fn wait_histogram_buckets_and_quantiles() {
        assert_eq!(WaitHistogram::bucket(0), 0);
        assert_eq!(WaitHistogram::bucket(1), 0);
        assert_eq!(WaitHistogram::bucket(2), 1);
        assert_eq!(WaitHistogram::bucket(3), 1);
        assert_eq!(WaitHistogram::bucket(4), 2);
        assert_eq!(WaitHistogram::bucket(u64::MAX), WAIT_BUCKETS - 1);
        let mut h = WaitHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
        h.buckets[0] = 90; // < 2 µs
        h.buckets[5] = 10; // 32–64 µs
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.5), 2);
        assert_eq!(h.quantile_us(0.99), 64);
        let mut m = WaitHistogram::default();
        m.merge(&h);
        m.merge(&h);
        assert_eq!(m.count(), 200);
    }

    #[test]
    fn push_pop_single_worker() {
        let q: StealQueues<u32> = StealQueues::new(1);
        q.push(7).unwrap();
        q.push(8).unwrap();
        assert_eq!(q.pop(0), Some(7), "FIFO order");
        assert_eq!(q.pop(0), Some(8));
        q.close();
        assert_eq!(q.pop(0), None);
        assert!(q.push(9).is_err(), "closed pool refuses jobs");
    }

    #[test]
    fn stealing_drains_sibling_queues() {
        let q: StealQueues<u32> = StealQueues::new(4);
        for v in 0..8 {
            q.push_to(0, v).unwrap(); // all jobs on worker 0's queue
        }
        // Worker 3 can drain them all by stealing.
        for v in 0..8 {
            assert_eq!(q.pop(3), Some(v), "steals oldest first");
        }
        let s = q.queue_stats(3);
        assert_eq!(s.executed, 8);
        assert_eq!(s.stolen, 8);
        assert_eq!(q.queue_stats(0).depth, 0);
        assert_eq!(q.queue_stats(0).depth_hwm, 8);
        assert_eq!(
            q.queue_stats(0).wait.count(),
            8,
            "waits land on the home queue"
        );
    }

    #[test]
    fn close_drains_queued_jobs_before_ending() {
        let q: StealQueues<u32> = StealQueues::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        let mut got = vec![q.pop(0), q.pop(1), q.pop(0)];
        got.sort();
        assert_eq!(got, vec![None, Some(1), Some(2)]);
    }

    #[test]
    fn concurrent_producers_and_stealing_workers() {
        let q: Arc<StealQueues<usize>> = Arc::new(StealQueues::new(3));
        let total = 3000usize;
        let sum = Arc::new(AtomicUsize::new(0));
        let taken = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for w in 0..3 {
            let q = q.clone();
            let sum = sum.clone();
            let taken = taken.clone();
            handles.push(std::thread::spawn(move || {
                while let Some(v) = q.pop(w) {
                    sum.fetch_add(v, Ordering::Relaxed);
                    taken.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for v in 0..total / 2 {
                        q.push(2 * v + p).unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        // Spin until the workers drained everything, then close.
        while taken.load(Ordering::Relaxed) < total {
            std::thread::yield_now();
        }
        q.close();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sum.load(Ordering::Relaxed), total * (total - 1) / 2);
        let executed: u64 = (0..3).map(|i| q.queue_stats(i).executed).sum();
        assert_eq!(executed as usize, total);
        let waits: u64 = (0..3).map(|i| q.queue_stats(i).wait.count()).sum();
        assert_eq!(waits as usize, total, "every job's queue wait is recorded");
    }
}
