//! Single-source shortest paths in the FEM framework.
//!
//! A forward-only set-Dijkstra (§4.1's frontier policy without the
//! backward search or early termination): each iteration settles *all*
//! candidates at the minimal distance until the reachable component is
//! exhausted. Returns the full distance/parent table — the building block
//! for landmark-style estimators the paper cites (\[19\], \[2\]).

use crate::graphdb::{GraphDb, INF, NO_NODE};
use crate::sqlgen::{expand_params, Dir, EdgeSource, FrontierPred, SqlGen};
use crate::stats::SqlStyle;
use fempath_sql::{Result, SqlError};
use fempath_storage::Value;

/// One settled node of an SSSP run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsspEntry {
    pub node: i64,
    pub distance: i64,
    /// Predecessor on a shortest path (`-1` for the source itself).
    pub parent: i64,
}

/// Result of a single-source run.
#[derive(Debug, Clone)]
pub struct SsspResult {
    /// Settled nodes (the source's component), unordered.
    pub entries: Vec<SsspEntry>,
    /// Set-at-a-time iterations used.
    pub iterations: u64,
}

/// Computes shortest distances from `s` to every reachable node, entirely
/// in SQL (forward set-Dijkstra over the FEM operators).
pub fn single_source(gdb: &mut GraphDb, s: i64) -> Result<SsspResult> {
    gdb.check_node(s)?;
    gdb.reset_visited()?;
    let gen = SqlGen::new(Dir::Fwd, EdgeSource::Edges, SqlStyle::New);
    let use_merge = gdb.merge_supported();
    if !use_merge {
        gdb.reset_exp()?;
    }
    gdb.db
        .execute_params(&SqlGen::init(Dir::Fwd), &[Value::Int(s), Value::Int(s)])?;

    let mut l = 0i64; // current candidate minimum (see bidi.rs invariant)
    let mut iterations = 0u64;
    let max_iters = 2 * gdb.num_nodes() as u64 + 16;
    loop {
        if l >= INF {
            break;
        }
        let marked = gdb
            .db
            .execute_params(&gen.mark_by_dist(), &[Value::Int(l)])?
            .rows_affected;
        if marked == 0 {
            break;
        }
        let params = expand_params(SqlStyle::New, FrontierPred::Marked, None, 0, INF)?;
        if use_merge {
            gdb.db
                .execute_params(&gen.expand_merge(FrontierPred::Marked), &params)?;
        } else {
            gdb.db.execute("TRUNCATE TABLE TExp")?;
            gdb.db
                .execute_params(&gen.expand_into_exp(FrontierPred::Marked), &params)?;
            gdb.db.execute(&gen.update_from_exp())?;
            gdb.db.execute(&gen.insert_from_exp())?;
        }
        gdb.db.execute(&gen.reset_frontier())?;
        l = gdb
            .db
            .query(&gen.min_candidate())?
            .scalar_i64()
            .unwrap_or(INF);
        iterations += 1;
        if iterations > max_iters {
            return Err(SqlError::Eval(
                "SSSP exceeded its iteration bound — likely a bug".into(),
            ));
        }
    }

    let rs = gdb
        .db
        .query("SELECT nid, d2s, p2s FROM TVisited WHERE d2s < 4000000000000000")?;
    let entries = rs
        .rows
        .into_iter()
        .map(|r| {
            let node = r[0].as_i64().unwrap_or(NO_NODE);
            let distance = r[1].as_i64().unwrap_or(INF);
            let parent = r[2].as_i64().unwrap_or(NO_NODE);
            SsspEntry {
                node,
                distance,
                parent: if node == s { NO_NODE } else { parent },
            }
        })
        .collect();
    Ok(SsspResult {
        entries,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fempath_graph::{generate, Graph};
    use fempath_inmem::dijkstra;
    use fempath_sql::Dialect;

    fn check_against_oracle(g: &Graph, gdb: &mut GraphDb, s: i64) {
        let res = single_source(gdb, s).unwrap();
        let oracle = dijkstra::distances_from(g, s as u32);
        let reachable = oracle.iter().filter(|&&d| d != u64::MAX).count();
        assert_eq!(res.entries.len(), reachable, "component size");
        for e in &res.entries {
            assert_eq!(
                e.distance as u64, oracle[e.node as usize],
                "distance of node {}",
                e.node
            );
            if e.node != s {
                // Parent is a real shortest-path predecessor.
                let via = oracle[e.parent as usize]
                    + g.out_arcs(e.parent as u32)
                        .iter()
                        .filter(|a| a.to == e.node as u32)
                        .map(|a| a.weight as u64)
                        .min()
                        .expect("parent edge exists");
                assert_eq!(via, e.distance as u64, "parent chain of {}", e.node);
            }
        }
    }

    #[test]
    fn sssp_matches_oracle_on_power_law() {
        let g = generate::power_law(300, 3, 1..=100, 5);
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        check_against_oracle(&g, &mut gdb, 0);
        check_against_oracle(&g, &mut gdb, 123);
    }

    #[test]
    fn sssp_on_disconnected_graph_covers_only_component() {
        let g = Graph::from_undirected_edges(6, vec![(0, 1, 3), (1, 2, 4), (3, 4, 1)]);
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        let res = single_source(&mut gdb, 0).unwrap();
        let mut nodes: Vec<i64> = res.entries.iter().map(|e| e.node).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![0, 1, 2]);
        check_against_oracle(&g, &mut gdb, 3);
    }

    #[test]
    fn sssp_works_without_merge_dialect() {
        let g = generate::grid(6, 6, 1..=10, 7);
        let mut gdb = GraphDb::new(
            &g,
            &crate::graphdb::GraphDbOptions {
                dialect: Dialect::POSTGRES,
                ..Default::default()
            },
        )
        .unwrap();
        check_against_oracle(&g, &mut gdb, 0);
    }

    #[test]
    fn iteration_count_respects_set_at_a_time_bound() {
        // Theorem 2's analysis: iterations <= max distance / wmin.
        let g = generate::grid(5, 5, 2..=10, 9);
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        let res = single_source(&mut gdb, 0).unwrap();
        let max_d = res.entries.iter().map(|e| e.distance).max().unwrap();
        assert!(
            res.iterations <= (max_d / gdb.min_weight() as i64) as u64 + 2,
            "{} iterations vs bound {}",
            res.iterations,
            max_d / gdb.min_weight() as i64 + 2
        );
    }
}
