//! # fempath-core
//!
//! The paper's primary contribution: the **FEM framework** for graph search
//! in a relational database, and relational shortest-path discovery with
//! its two optimizations — **bidirectional set Dijkstra** and the
//! **SegTable** index of pre-computed local shortest segments.
//!
//! * [`GraphDb`] — a database instance with one graph loaded,
//! * [`fem`] — the generic F/E/M iteration skeleton (§3.1) and its batched
//!   multi-query variant (DESIGN.md §8),
//! * [`algo`] — DJ, BDJ, BSDJ, BBFS and BSEG (§3.4, §4), plus the batched
//!   BatchDJ / BatchBDJ finders answering many (s, t) pairs per iteration,
//! * [`segtable`] — SegTable construction (§4.2),
//! * [`landmarks`] — the landmark distance index: triangle-inequality
//!   bounds seeded into Theorem-1 pruning and an exact fast path for
//!   covered pairs (DESIGN.md §12),
//! * [`service`] — the concurrent [`PathService`] over `Arc`-shared
//!   read-only graph snapshots (DESIGN.md §10) with work-stealing
//!   dispatch and batch partitioning ([`dispatch`], DESIGN.md §13),
//! * [`prim`] — Prim's MST via FEM (the §3.1 extension),
//! * [`stats`] — per-phase / per-operator measurement.
//!
//! ```
//! use fempath_core::{BsdjFinder, GraphDb, ShortestPathFinder};
//! use fempath_graph::generate;
//!
//! let g = generate::grid(6, 6, 1..=10, 7);
//! let mut db = GraphDb::in_memory(&g).unwrap();
//! let out = BsdjFinder::default().find_path(&mut db, 0, 35).unwrap();
//! let path = out.path.expect("grid is connected");
//! assert_eq!(path.nodes.first(), Some(&0));
//! assert_eq!(path.nodes.last(), Some(&35));
//! ```

#![forbid(unsafe_code)]

pub mod algo;
pub mod cache;
pub mod dispatch;
pub mod fem;
pub mod graphdb;
pub mod landmarks;
pub mod pattern;
pub mod prim;
pub mod reach;
pub mod segtable;
pub mod service;
pub mod sqlgen;
pub mod sssp;
pub mod stats;

pub use algo::{
    BatchBdjFinder, BatchDjFinder, BatchFrontier, BatchOutcome, BatchShortestPathFinder,
    BbfsFinder, BdjFinder, BsdjFinder, BsegFinder, DjFinder, FrontierPolicy, Path, PathOutcome,
    ShortestPathFinder,
};
pub use cache::{CacheStats, ResultCache};
pub use dispatch::{partition_even, StealQueues, WaitHistogram};
pub use fem::{run_batch_fem, run_fem, BatchFemSearch, FemSearch};
pub use fempath_sql::ExecMode;
pub use graphdb::{
    GraphDb, GraphDbOptions, GraphSnapshot, LandmarkInfo, SegTableInfo, INF, NO_NODE,
};
pub use landmarks::{
    build_landmark_index, build_landmarks, estimate_distance, DistanceBounds, LandmarkSelection,
    LandmarkStats,
};
pub use pattern::{match_label_path, set_labels};
pub use prim::{prim_mst, MstResult};
pub use reach::{component_size, reachable};
pub use segtable::{build_segtable, build_segtable_with, SegTableStats};
pub use service::{
    PathService, PathServiceOptions, ServiceAlgorithm, ServiceStats, WorkerStats,
    DEFAULT_CACHE_BYTES,
};
pub use sssp::{single_source, SsspEntry, SsspResult};
pub use stats::{FemOperator, Phase, QueryStats, SqlStyle};

/// Result alias shared with the SQL layer.
pub type Result<T> = fempath_sql::Result<T>;
