//! Prim's minimal spanning tree in the FEM framework.
//!
//! §3.1 of the paper sketches exactly this: visited nodes carry
//! `(p2s, w, f)` — the tentative parent, the connecting edge weight, and
//! the in-tree flag — and each iteration selects the cheapest non-tree
//! node, finalizes it, and relaxes its neighbours. Implemented over
//! [`crate::fem::FemSearch`] to demonstrate that the framework generalizes
//! beyond shortest paths.

use crate::fem::{run_fem, FemSearch};
use crate::graphdb::GraphDb;
use fempath_sql::{Database, Result, SqlError};
use fempath_storage::Value;

/// Result of the relational Prim run.
#[derive(Debug, Clone)]
pub struct MstResult {
    /// Tree edges `(node, parent, weight)`, one per non-root node of the
    /// start node's component.
    pub edges: Vec<(i64, i64, i64)>,
    /// Sum of tree edge weights.
    pub total_weight: i64,
    /// FEM iterations (= nodes added to the tree).
    pub iterations: u64,
}

struct PrimSearch {
    start: i64,
    mid: Option<i64>,
}

impl FemSearch for PrimSearch {
    fn init(&mut self, db: &mut Database) -> Result<()> {
        db.execute("DROP TABLE IF EXISTS TMst")?;
        db.execute("CREATE TABLE TMst (nid INT, w INT, p2s INT, f INT, PRIMARY KEY(nid))")?;
        db.execute_params(
            "INSERT INTO TMst (nid, w, p2s, f) VALUES (?, 0, -1, 0)",
            &[Value::Int(self.start)],
        )?;
        Ok(())
    }

    fn select_frontier(&mut self, db: &mut Database, _k: u64) -> Result<u64> {
        // The non-tree node with the cheapest connecting edge.
        let rs = db.query(
            "SELECT TOP 1 nid FROM TMst WHERE f = 0 \
             AND w = (SELECT MIN(w) FROM TMst WHERE f = 0)",
        )?;
        match rs.scalar_i64() {
            Some(mid) => {
                self.mid = Some(mid);
                // Finalize immediately: the selected node joins the tree.
                db.execute_params("UPDATE TMst SET f = 1 WHERE nid = ?", &[Value::Int(mid)])?;
                Ok(1)
            }
            None => {
                self.mid = None;
                Ok(0)
            }
        }
    }

    fn expand_and_merge(&mut self, db: &mut Database, _k: u64) -> Result<u64> {
        let mid = self.mid.ok_or_else(|| {
            SqlError::Eval("expand_and_merge called without a selected frontier node".into())
        })?;
        // Relax the neighbours of the newly added node. Unlike shortest
        // paths, the comparison key is the single edge weight.
        Ok(db
            .execute_params(
                "MERGE INTO TMst AS target USING ( \
                   SELECT nid, np, w FROM ( \
                     SELECT e.tid AS nid, e.fid AS np, e.cost AS w, \
                            ROW_NUMBER() OVER (PARTITION BY e.tid ORDER BY e.cost) AS rn \
                     FROM TEdges e WHERE e.fid = ? \
                   ) tmp WHERE rn = 1 \
                 ) AS source (nid, np, w) ON source.nid = target.nid \
                 WHEN MATCHED AND target.f = 0 AND target.w > source.w THEN \
                   UPDATE SET w = source.w, p2s = source.np \
                 WHEN NOT MATCHED THEN \
                   INSERT (nid, w, p2s, f) VALUES (source.nid, source.w, source.np, 0)",
                &[Value::Int(mid)],
            )?
            .rows_affected)
    }
}

/// Computes the MST of the component containing `start`, entirely in SQL.
pub fn prim_mst(gdb: &mut GraphDb, start: i64) -> Result<MstResult> {
    gdb.check_node(start)?;
    let mut search = PrimSearch { start, mid: None };
    let iterations = run_fem(&mut gdb.db, &mut search)?;
    let rs = gdb
        .db
        .query("SELECT nid, p2s, w FROM TMst WHERE p2s >= 0 AND f = 1")?;
    let mut edges = Vec::with_capacity(rs.len());
    let mut total = 0i64;
    for row in &rs.rows {
        let col = |i: usize| {
            row[i]
                .as_i64()
                .ok_or_else(|| SqlError::Eval("TMst holds non-integer columns".into()))
        };
        let (n, p, w) = (col(0)?, col(1)?, col(2)?);
        edges.push((n, p, w));
        total += w;
    }
    gdb.db.execute("DROP TABLE TMst")?;
    Ok(MstResult {
        edges,
        total_weight: total,
        iterations,
    })
}
