//! [`PathService`]: a concurrent shortest-path query service.
//!
//! The paper's FEM framework already splits state into a large immutable
//! edge relation and small per-query working tables; this module turns
//! that split into a serving architecture (DESIGN.md §10, §13). The graph
//! is loaded once, frozen into an [`GraphSnapshot`] (an `Arc`-shared
//! read-only page image plus a cross-session plan cache), and a pool of
//! worker threads each owns a private session — its own buffer pool,
//! copy-on-write overlay for the working tables, and prepared-statement
//! set.
//!
//! Dispatch is contention-free (DESIGN.md §13): every worker owns a
//! private queue, producers round-robin jobs across the queues, and an
//! idle worker steals the oldest job from a busy sibling
//! ([`crate::dispatch`]). Batches are **partitioned across the pool** —
//! [`PathService::query_batch`] splits the pairs into per-worker tiles of
//! near-equal size, each tile runs the batched bidirectional FEM finder
//! in its own session, and the per-tile results are merged back by
//! offset. A worker that panics mid-query answers that caller with an
//! error, rebuilds its session and keeps serving — one poisoned query
//! can neither hang its caller nor take down the pool.
//!
//! Two serving-tier layers sit on top of the pool (DESIGN.md §16):
//!
//! * **Versioned edge mutations** — [`PathService::insert_edge`] /
//!   [`PathService::delete_edge`] validate the mutation against an admin
//!   session, append it to a shared mutation log and advance the graph
//!   version. Workers replay the log's tail into their private sessions
//!   before each job, so every answer reflects all mutations published
//!   before the query was issued. Landmark bounds go stale on the first
//!   mutation and each session disables its fast path rather than risk
//!   an inadmissible bound.
//! * **A sharded result cache** — hot `(s, t)` pairs are answered from a
//!   [`ResultCache`] keyed by graph version, consulted before any worker
//!   is involved. Mutations invalidate by version bump, never by sweep.
//!
//! ```
//! use fempath_core::PathService;
//! use fempath_graph::generate;
//!
//! let g = generate::grid(6, 6, 1..=10, 7);
//! let svc = PathService::new(&g, 4).unwrap();
//! let out = svc.query(0, 35).unwrap();
//! assert!(out.path.is_some(), "grid is connected");
//! let paths = svc.query_batch(&[(0, 35), (5, 30), (7, 7)]).unwrap();
//! assert_eq!(paths.len(), 3);
//! let stats = svc.stats();
//! assert!(stats.total_executed() >= 2, "singles + batch tiles all count");
//! ```

use crate::algo::{
    BatchBdjFinder, BatchShortestPathFinder, BbfsFinder, BdjFinder, BsdjFinder, DjFinder, Path,
    PathOutcome, ShortestPathFinder,
};
use crate::cache::{CacheStats, ResultCache};
use crate::dispatch::{partition_even, StealQueues, WaitHistogram, WorkerQueueStats};
use crate::graphdb::{GraphDb, GraphDbOptions, GraphSnapshot};
use crate::stats::QueryStats;
use fempath_graph::Graph;
use fempath_sql::{Result, SqlError};
use std::collections::hash_map::Entry as MapEntry;
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;

/// Default [`ResultCache`] byte budget for a service
/// ([`PathServiceOptions::cache_bytes`]): enough for tens of thousands
/// of typical path entries without mattering next to the buffer pool.
pub const DEFAULT_CACHE_BYTES: usize = 4 << 20;

/// Which relational finder answers single-pair queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ServiceAlgorithm {
    /// Single-directional Dijkstra (Algorithm 1) — mostly for comparison.
    Dj,
    /// Bidirectional Dijkstra — the service default.
    #[default]
    Bdj,
    /// Bidirectional set Dijkstra (the paper's strongest raw-edge finder).
    Bsdj,
    /// Bidirectional BFS-style relaxation.
    Bbfs,
}

impl ServiceAlgorithm {
    fn finder(self) -> Box<dyn ShortestPathFinder + Send> {
        match self {
            ServiceAlgorithm::Dj => Box::new(DjFinder::default()),
            ServiceAlgorithm::Bdj => Box::new(BdjFinder::default()),
            ServiceAlgorithm::Bsdj => Box::new(BsdjFinder::default()),
            ServiceAlgorithm::Bbfs => Box::new(BbfsFinder::default()),
        }
    }
}

/// Configuration for a [`PathService`].
#[derive(Debug, Clone)]
pub struct PathServiceOptions {
    /// Worker threads (and concurrent sessions). 0 is clamped to 1.
    pub workers: usize,
    /// Database build options (buffer budget, dialect, index strategies).
    pub graphdb: GraphDbOptions,
    /// Finder answering single-pair queries; batches always run the
    /// batched bidirectional finder.
    pub algorithm: ServiceAlgorithm,
    /// Landmarks to build into the shared snapshot before freezing
    /// (DESIGN.md §12). 0 skips the index; with one, single-pair queries
    /// covered by a landmark tree are answered without running FEM, and
    /// every finder seeds its Theorem-1 bound from the index.
    pub landmarks: usize,
    /// Byte budget of the version-keyed result cache (DESIGN.md §16).
    /// 0 disables caching entirely — every query runs a finder, and
    /// `query_batch` skips hot-pair deduplication.
    pub cache_bytes: usize,
}

impl Default for PathServiceOptions {
    fn default() -> Self {
        PathServiceOptions {
            workers: 4,
            graphdb: GraphDbOptions::default(),
            algorithm: ServiceAlgorithm::default(),
            landmarks: 0,
            cache_bytes: DEFAULT_CACHE_BYTES,
        }
    }
}

/// One edge mutation in the shared log, replayed by every worker session
/// in log order. Validation happened against the admin session before
/// the entry was published, so replay cannot fail on a healthy session.
#[derive(Debug, Clone, Copy)]
enum EdgeMutation {
    /// Undirected insert: both arcs under symmetric storage.
    Insert { u: i64, v: i64, w: i64 },
    /// Undirected delete of every parallel edge between the endpoints.
    Delete { u: i64, v: i64 },
}

/// The shared mutation log (DESIGN.md §16): an append-only entry vector
/// plus the current graph version mirrored into an atomic so the query
/// front door reads it without touching the lock.
struct MutationLog {
    entries: RwLock<Vec<EdgeMutation>>,
    /// Always `base_version + entries.len()`; stored after the entry is
    /// pushed, under the write lock.
    version: AtomicU64,
}

/// State shared between the service handle and every worker thread.
struct ServiceShared {
    snapshot: Arc<GraphSnapshot>,
    /// Graph version of the frozen snapshot (mutation log baseline).
    base_version: u64,
    log: MutationLog,
    /// `None` when [`PathServiceOptions::cache_bytes`] is 0.
    cache: Option<ResultCache>,
    /// Single-pair queries answered by the landmark exact-path fast
    /// path instead of a FEM finder (DESIGN.md §12).
    lm_fast_path_hits: AtomicU64,
}

/// One unit of work dispatched to the pool.
enum Job {
    Single {
        s: i64,
        t: i64,
        reply: Sender<Result<PathOutcome>>,
    },
    Batch {
        pairs: Vec<(i64, i64)>,
        /// Index of `pairs[0]` in the caller's slice.
        offset: usize,
        reply: Sender<(usize, Result<Vec<Option<Path>>>)>,
    },
    /// Test-only: panics inside the worker, exercising the
    /// panic-isolation path ([`PathService::debug_inject_panic`]).
    #[cfg(any(test, feature = "failpoints"))]
    InjectPanic { reply: Sender<Result<PathOutcome>> },
}

/// Counter snapshot for one service worker (see [`PathService::stats`]).
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Jobs (singles, batch tiles) this worker executed.
    pub executed: u64,
    /// Jobs this worker stole from a sibling's queue.
    pub stolen: u64,
    /// Jobs currently queued on this worker.
    pub queue_depth: usize,
    /// High-water mark of this worker's queue depth.
    pub queue_depth_hwm: u64,
    /// Queue-wait histogram of jobs enqueued on this worker (log₂ µs
    /// buckets) — how long work sat before any worker picked it up.
    pub wait: WaitHistogram,
}

impl From<WorkerQueueStats> for WorkerStats {
    fn from(q: WorkerQueueStats) -> WorkerStats {
        WorkerStats {
            executed: q.executed,
            stolen: q.stolen,
            queue_depth: q.depth,
            queue_depth_hwm: q.depth_hwm,
            wait: q.wait,
        }
    }
}

/// Instrumentation for a [`PathService`] (DESIGN.md §13, §16):
/// per-worker queue depths, steal counts and queue-wait histograms, plus
/// the serving-tier counters — result-cache hit/miss/eviction/stale
/// totals, landmark fast-path hits and the current graph version. All
/// counters are cheap relaxed atomics — reading them does not perturb
/// the pool.
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// One entry per worker, in worker order.
    pub workers: Vec<WorkerStats>,
    /// Result-cache counters (all zero when the cache is disabled).
    pub cache: CacheStats,
    /// Single-pair queries answered by the landmark exact-path fast path
    /// (DESIGN.md §12) instead of running a FEM finder.
    pub lm_fast_path_hits: u64,
    /// Current graph version: the snapshot's epoch plus one per edge
    /// mutation applied through this service.
    pub graph_version: u64,
}

impl ServiceStats {
    /// Jobs executed across the pool.
    pub fn total_executed(&self) -> u64 {
        self.workers.iter().map(|w| w.executed).sum()
    }

    /// Jobs that crossed worker queues (work-stealing events). High
    /// steal counts with low waits mean the pool is balancing fine;
    /// high waits point at true saturation, not dispatch contention.
    pub fn total_stolen(&self) -> u64 {
        self.workers.iter().map(|w| w.stolen).sum()
    }

    /// Largest queue-depth high-water mark across workers.
    pub fn max_queue_depth_hwm(&self) -> u64 {
        self.workers
            .iter()
            .map(|w| w.queue_depth_hwm)
            .max()
            .unwrap_or(0)
    }

    /// Queue-wait quantile (µs) over every job in the pool.
    pub fn wait_quantile_us(&self, q: f64) -> u64 {
        let mut merged = WaitHistogram::default();
        for w in &self.workers {
            merged.merge(&w.wait);
        }
        merged.quantile_us(q)
    }

    /// Cache hit rate over all lookups so far (0.0 when none happened).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache.hits + self.cache.misses;
        if total == 0 {
            0.0
        } else {
            self.cache.hits as f64 / total as f64
        }
    }
}

/// A concurrent shortest-path service over one frozen graph.
///
/// Construction loads and freezes the graph, then spawns the worker pool;
/// [`PathService::query`] and [`PathService::query_batch`] may be called
/// from any number of threads concurrently (`&self`, `Send + Sync`).
/// Dropping the service shuts the pool down.
pub struct PathService {
    shared: Arc<ServiceShared>,
    queues: Arc<StealQueues<Job>>,
    workers: Vec<JoinHandle<()>>,
    /// Serialization point for mutations: validates each one before it
    /// is published to the log, and by construction always sits at the
    /// current graph version.
    admin: Mutex<GraphDb>,
}

impl PathService {
    /// Loads `graph` and serves it with `workers` threads and default
    /// options.
    pub fn new(graph: &Graph, workers: usize) -> Result<PathService> {
        PathService::with_options(
            graph,
            &PathServiceOptions {
                workers,
                ..Default::default()
            },
        )
    }

    /// Loads `graph` with explicit options.
    pub fn with_options(graph: &Graph, opts: &PathServiceOptions) -> Result<PathService> {
        let mut gdb = GraphDb::new(graph, &opts.graphdb)?;
        if opts.landmarks > 0 {
            gdb.build_landmarks(opts.landmarks)?;
        }
        Ok(PathService::from_snapshot_with_cache(
            Arc::new(gdb.freeze()?),
            opts.workers,
            opts.algorithm,
            opts.cache_bytes,
        ))
    }

    /// Serves an existing snapshot — use this to pre-build the SegTable
    /// or landmark tables into the shared image first
    /// ([`GraphDb::freeze`]), or to run several services over one image.
    /// The result cache runs at its default budget; use
    /// [`PathService::from_snapshot_with_cache`] to size or disable it.
    pub fn from_snapshot(
        snapshot: Arc<GraphSnapshot>,
        workers: usize,
        algorithm: ServiceAlgorithm,
    ) -> PathService {
        PathService::from_snapshot_with_cache(snapshot, workers, algorithm, DEFAULT_CACHE_BYTES)
    }

    /// [`PathService::from_snapshot`] with an explicit result-cache byte
    /// budget; 0 disables caching (every query runs a finder).
    pub fn from_snapshot_with_cache(
        snapshot: Arc<GraphSnapshot>,
        workers: usize,
        algorithm: ServiceAlgorithm,
        cache_bytes: usize,
    ) -> PathService {
        let workers = workers.max(1);
        let base_version = snapshot.graph_version();
        let admin = Mutex::new(snapshot.session());
        let shared = Arc::new(ServiceShared {
            snapshot,
            base_version,
            log: MutationLog {
                entries: RwLock::new(Vec::new()),
                version: AtomicU64::new(base_version),
            },
            cache: (cache_bytes > 0).then(|| ResultCache::new(cache_bytes)),
            lm_fast_path_hits: AtomicU64::new(0),
        });
        let queues = Arc::new(StealQueues::new(workers));
        let handles = (0..workers)
            .map(|me| {
                let queues = queues.clone();
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared, &queues, me, algorithm))
            })
            .collect();
        PathService {
            shared,
            queues,
            workers: handles,
            admin,
        }
    }

    /// Current graph version: the snapshot's data epoch plus one per
    /// mutation applied through this service. Result-cache entries are
    /// keyed by it, so a bump orphans every older entry at once.
    pub fn graph_version(&self) -> u64 {
        // ORDERING: Acquire pairs with the Release store in
        // `apply_mutation` — a reader that observes the bumped version
        // also observes the pushed log entry.
        self.shared.log.version.load(Ordering::Acquire)
    }

    /// Inserts the undirected edge `(u, v)` with weight `w` into the
    /// served graph and returns the number of arcs added (2, or 1 for a
    /// self-loop). Bumps the graph version: cached results become
    /// unreachable, sessions stop using pre-mutation landmark bounds,
    /// and every worker replays the mutation before its next job. Fails
    /// (leaving the version untouched) if either endpoint does not exist
    /// or `w` is not positive.
    pub fn insert_edge(&self, u: i64, v: i64, w: i64) -> Result<u64> {
        self.apply_mutation(EdgeMutation::Insert { u, v, w })
    }

    /// Deletes every parallel edge between `u` and `v` (both arcs under
    /// symmetric storage) and returns the number of arcs removed. Bumps
    /// the graph version even when nothing matched — deletion intent
    /// must invalidate cached results regardless.
    pub fn delete_edge(&self, u: i64, v: i64) -> Result<u64> {
        self.apply_mutation(EdgeMutation::Delete { u, v })
    }

    /// Validates `m` on the admin session, publishes it to the log and
    /// advances the shared graph version. The log's write lock is the
    /// mutation serialization point: entries land in the order the admin
    /// session applied them, so worker replay converges on the admin's
    /// exact state.
    fn apply_mutation(&self, m: EdgeMutation) -> Result<u64> {
        let mut entries = self
            .shared
            .log
            .entries
            .write()
            .unwrap_or_else(|e| e.into_inner());
        let mut admin = self.admin.lock().unwrap_or_else(|e| e.into_inner());
        let affected = match m {
            EdgeMutation::Insert { u, v, w } => admin.insert_edge(u, v, w)?,
            EdgeMutation::Delete { u, v } => admin.delete_edge(u, v)?,
        };
        entries.push(m);
        // ORDERING: Release pairs with the Acquire loads in
        // `graph_version` and `catch_up`; the store happens after the
        // push, still under the write lock, so observing the new version
        // implies the new entry is visible.
        self.shared.log.version.store(
            self.shared.base_version + entries.len() as u64,
            Ordering::Release,
        );
        Ok(affected)
    }

    /// Shortest path from `s` to `t`: answered from the result cache
    /// when a verdict for the current graph version is resident
    /// (including cached "unreachable" verdicts), else by the next free
    /// worker — which publishes its answer back to the cache.
    pub fn query(&self, s: i64, t: i64) -> Result<PathOutcome> {
        if let Some(cache) = &self.shared.cache {
            if let Some(path) = cache.lookup(s, t, self.graph_version()) {
                return Ok(PathOutcome {
                    path,
                    stats: QueryStats::default(),
                });
            }
        }
        let (reply, result) = channel();
        self.queues
            .push(Job::Single { s, t, reply })
            .map_err(|_| worker_pool_down())?;
        result.recv().map_err(|_| worker_pool_down())?
    }

    /// Answers many (s, t) pairs; `paths[i]` answers `pairs[i]`.
    ///
    /// With the cache enabled, each pair first consults the result
    /// cache; hits (positive or negative) are answered inline. The
    /// misses are **deduplicated** — a pair that appears many times in
    /// one batch is computed once and fanned back out to every slot —
    /// and only the unique misses go to the pool.
    ///
    /// The dispatched pairs are **partitioned across the worker pool**:
    /// split into contiguous tiles whose sizes differ by at most one
    /// (every worker gets a tile whenever there are at least as many
    /// pairs as workers), one tile per worker queue — an idle worker
    /// steals a queued tile, so a slow tile cannot strand the rest. Each
    /// tile runs the batched bidirectional FEM finder (DESIGN.md §8) in
    /// one worker session and the results are merged back by offset, in
    /// input order.
    pub fn query_batch(&self, pairs: &[(i64, i64)]) -> Result<Vec<Option<Path>>> {
        if pairs.is_empty() {
            return Ok(Vec::new());
        }
        let Some(cache) = &self.shared.cache else {
            return self.dispatch_batch(pairs);
        };
        let version = self.graph_version();
        let mut out: Vec<Option<Path>> = vec![None; pairs.len()];
        // Unique missed pairs, each with the output slots it answers.
        let mut unique: Vec<(i64, i64)> = Vec::new();
        let mut owners: Vec<Vec<usize>> = Vec::new();
        let mut slot: HashMap<(i64, i64), usize> = HashMap::new();
        for (i, &(s, t)) in pairs.iter().enumerate() {
            if let Some(hit) = cache.lookup(s, t, version) {
                out[i] = hit;
                continue;
            }
            match slot.entry((s, t)) {
                MapEntry::Occupied(o) => owners[*o.get()].push(i),
                MapEntry::Vacant(v) => {
                    v.insert(unique.len());
                    owners.push(vec![i]);
                    unique.push((s, t));
                }
            }
        }
        if unique.is_empty() {
            return Ok(out);
        }
        let answers = self.dispatch_batch(&unique)?;
        for (u, p) in answers.into_iter().enumerate() {
            for &i in &owners[u] {
                out[i] = p.clone();
            }
        }
        Ok(out)
    }

    /// Partitions `pairs` into per-worker tiles and merges the tile
    /// results back by offset (the cache-independent dispatch core of
    /// [`PathService::query_batch`]).
    fn dispatch_batch(&self, pairs: &[(i64, i64)]) -> Result<Vec<Option<Path>>> {
        let tiles = partition_even(pairs.len(), self.workers.len());
        // Spread this batch's tiles starting at the shared round-robin
        // cursor so concurrent batches interleave across the pool
        // instead of all starting on worker 0.
        let first = self.queues.reserve_targets(tiles.len());
        let (reply, results) = channel();
        let mut outstanding = 0usize;
        for (k, &(offset, len)) in tiles.iter().enumerate() {
            self.queues
                .push_to(
                    first + k,
                    Job::Batch {
                        pairs: pairs[offset..offset + len].to_vec(),
                        offset,
                        reply: reply.clone(),
                    },
                )
                .map_err(|_| worker_pool_down())?;
            outstanding += 1;
        }
        // Drop our own sender clone: if a worker dies without replying,
        // the channel closes and recv() errors instead of hanging forever.
        drop(reply);
        let mut out: Vec<Option<Path>> = vec![None; pairs.len()];
        let mut first_err: Option<SqlError> = None;
        for _ in 0..outstanding {
            let (offset, res) = results.recv().map_err(|_| worker_pool_down())?;
            match res {
                Ok(paths) => {
                    for (i, p) in paths.into_iter().enumerate() {
                        out[offset + i] = p;
                    }
                }
                Err(e) => first_err = Some(first_err.unwrap_or(e)),
            }
        }
        match first_err {
            None => Ok(out),
            Some(e) => Err(e),
        }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The shared snapshot backing the pool.
    pub fn snapshot(&self) -> &Arc<GraphSnapshot> {
        &self.shared.snapshot
    }

    /// Dispatch and serving-tier instrumentation: per-worker
    /// executed/stolen counts, queue depths and queue-wait histograms
    /// (DESIGN.md §13), plus result-cache counters, landmark fast-path
    /// hits and the current graph version (DESIGN.md §16).
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            workers: (0..self.workers.len())
                .map(|i| self.queues.queue_stats(i).into())
                .collect(),
            cache: self
                .shared
                .cache
                .as_ref()
                .map(ResultCache::stats)
                .unwrap_or_default(),
            // ORDERING: Relaxed — a monotone stats counter read for
            // reporting; no other memory depends on it.
            lm_fast_path_hits: self.shared.lm_fast_path_hits.load(Ordering::Relaxed),
            graph_version: self.graph_version(),
        }
    }

    /// Test-only: makes one worker panic mid-job and returns what its
    /// caller observes. The panic must surface as an error on *this*
    /// call — never a hang — and the pool (including the panicked
    /// worker, which rebuilds its session) must keep serving. Compiled
    /// only for tests and under the `failpoints` feature, so production
    /// builds cannot reach it.
    #[cfg(any(test, feature = "failpoints"))]
    #[doc(hidden)]
    pub fn debug_inject_panic(&self) -> Result<PathOutcome> {
        let (reply, result) = channel();
        self.queues
            .push(Job::InjectPanic { reply })
            .map_err(|_| worker_pool_down())?;
        result.recv().map_err(|_| worker_pool_down())?
    }
}

impl Drop for PathService {
    fn drop(&mut self) {
        // Refuse new jobs and wake every parked worker; workers drain
        // whatever is still queued, then exit their loops.
        self.queues.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PathService>();
};

fn worker_pool_down() -> SqlError {
    SqlError::Eval("path service worker pool is shut down".into())
}

/// One worker's mutable state: its private session plus how many log
/// entries it has replayed into it. The pair moves together — a rebuilt
/// session starts back at the snapshot, so `applied` resets with it.
struct WorkerSession {
    db: GraphDb,
    applied: u64,
}

/// Runs one job body with panic isolation: a panic inside the finder (or
/// injected by a test) is caught, the session — whose working tables may
/// be mid-operation — is rebuilt from the snapshot (dropping its replayed
/// mutations; `catch_up` re-applies them before the next job), and the
/// caller gets a `worker_pool_down` error instead of a dropped reply.
/// Sibling workers are untouched: no dispatch lock is ever held around
/// job execution, so there is nothing to poison.
fn run_isolated<R>(
    ws: &mut WorkerSession,
    shared: &ServiceShared,
    f: impl FnOnce(&mut GraphDb) -> Result<R>,
) -> Result<R> {
    match std::panic::catch_unwind(AssertUnwindSafe(|| f(&mut ws.db))) {
        Ok(res) => res,
        Err(_) => {
            ws.db = shared.snapshot.session();
            ws.applied = 0;
            Err(worker_pool_down())
        }
    }
}

/// Replays the mutation log's unapplied tail into the worker session, so
/// the session's graph (and its data version) reflect every mutation
/// published before this job. The common no-mutation case is a single
/// atomic load; each replayed mutation bumps the session's own version,
/// keeping it aligned with `base_version + applied`.
fn catch_up(ws: &mut WorkerSession, shared: &ServiceShared) -> Result<()> {
    // ORDERING: Acquire pairs with the Release store in
    // `apply_mutation` — observing the bumped version guarantees the
    // pushed entries are visible under the read lock below.
    if shared.log.version.load(Ordering::Acquire) == shared.base_version + ws.applied {
        return Ok(());
    }
    let entries = shared.log.entries.read().unwrap_or_else(|e| e.into_inner());
    while (ws.applied as usize) < entries.len() {
        match entries[ws.applied as usize] {
            EdgeMutation::Insert { u, v, w } => {
                ws.db.insert_edge(u, v, w)?;
            }
            EdgeMutation::Delete { u, v } => {
                ws.db.delete_edge(u, v)?;
            }
        }
        ws.applied += 1;
    }
    Ok(())
}

/// Answers `job` with `err` without executing it (replay failed — the
/// session cannot reach the published graph state).
fn reply_error(job: Job, err: SqlError) {
    match job {
        Job::Single { reply, .. } => {
            let _ = reply.send(Err(err));
        }
        Job::Batch { offset, reply, .. } => {
            let _ = reply.send((offset, Err(err)));
        }
        #[cfg(any(test, feature = "failpoints"))]
        Job::InjectPanic { reply } => {
            let _ = reply.send(Err(err));
        }
    }
}

/// One worker: a private session over the shared snapshot, draining its
/// own queue (and stealing from siblings) until the service closes the
/// pool and the queues run dry. Before each job the session replays any
/// mutations published since its last one; after each successful job the
/// answer is published to the result cache under the version it was
/// computed at.
fn worker_loop(
    shared: &ServiceShared,
    queues: &StealQueues<Job>,
    me: usize,
    algorithm: ServiceAlgorithm,
) {
    let mut ws = WorkerSession {
        db: shared.snapshot.session(),
        applied: 0,
    };
    let finder = algorithm.finder();
    let batch_finder = BatchBdjFinder::default();
    while let Some(job) = queues.pop(me) {
        if catch_up(&mut ws, shared).is_err() {
            // Replay into a live session failed (it should not: every
            // entry was validated by the admin session). Rebuild from
            // the snapshot and replay from scratch; if even that fails,
            // answer this caller with the error and keep serving.
            ws.db = shared.snapshot.session();
            ws.applied = 0;
            if let Err(e) = catch_up(&mut ws, shared) {
                reply_error(job, e);
                continue;
            }
        }
        // The version every result computed in this job belongs to:
        // mutations racing in after this point may make it stale, in
        // which case the version-keyed cache ignores the insert.
        let version = ws.db.graph_version();
        match job {
            Job::Single { s, t, reply } => {
                let res = run_isolated(&mut ws, shared, |session| {
                    // Landmark fast path (DESIGN.md §12): a covered pair —
                    // bounds already proven tight — is answered straight
                    // from the index, no FEM table ever written. Uncovered
                    // pairs (and every pair once a mutation staled the
                    // index) fall through to the configured finder.
                    match crate::landmarks::exact_path(session, s, t)? {
                        Some(path) => {
                            // ORDERING: Relaxed — monotone stats counter,
                            // nothing is ordered against it.
                            shared.lm_fast_path_hits.fetch_add(1, Ordering::Relaxed);
                            Ok(PathOutcome {
                                path: Some(path),
                                stats: QueryStats::default(),
                            })
                        }
                        None => finder.find_path(session, s, t),
                    }
                });
                if let (Some(cache), Ok(out)) = (&shared.cache, &res) {
                    cache.insert(s, t, version, out.path.clone());
                }
                let _ = reply.send(res);
            }
            Job::Batch {
                pairs,
                offset,
                reply,
            } => {
                let res = run_isolated(&mut ws, shared, |session| {
                    batch_finder
                        .find_paths(session, &pairs)
                        .map(|out| out.paths)
                });
                if let (Some(cache), Ok(paths)) = (&shared.cache, &res) {
                    for (&(s, t), p) in pairs.iter().zip(paths) {
                        cache.insert(s, t, version, p.clone());
                    }
                }
                let _ = reply.send((offset, res));
            }
            #[cfg(any(test, feature = "failpoints"))]
            Job::InjectPanic { reply } => {
                let res = run_isolated(&mut ws, shared, |_| -> Result<PathOutcome> {
                    panic!("injected worker panic (test hook)")
                });
                let _ = reply.send(res);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fempath_graph::generate;

    #[test]
    fn serves_single_queries() {
        let g = generate::grid(5, 5, 1..=10, 3);
        let svc = PathService::new(&g, 2).unwrap();
        let out = svc.query(0, 24).unwrap();
        let p = out.path.expect("grid is connected");
        assert_eq!(p.nodes.first(), Some(&0));
        assert_eq!(p.nodes.last(), Some(&24));
        // Trivial and invalid queries behave like the direct finders.
        assert_eq!(svc.query(3, 3).unwrap().path.unwrap().length, 0);
        assert!(svc.query(0, 999).is_err());
    }

    #[test]
    fn serves_batches_in_caller_order() {
        let g = generate::grid(4, 4, 1..=10, 9);
        let svc = PathService::new(&g, 3).unwrap();
        let pairs = vec![(0, 15), (1, 1), (15, 0), (2, 13), (0, 5)];
        let paths = svc.query_batch(&pairs).unwrap();
        assert_eq!(paths.len(), pairs.len());
        for (i, &(s, t)) in pairs.iter().enumerate() {
            let p = paths[i].as_ref().expect("grid is connected");
            assert_eq!(p.nodes.first(), Some(&s));
            assert_eq!(p.nodes.last(), Some(&t));
        }
        // Forward and reverse of the same pair agree on length.
        assert_eq!(
            paths[0].as_ref().unwrap().length,
            paths[2].as_ref().unwrap().length
        );
    }

    #[test]
    fn batch_is_partitioned_across_workers_not_tiled_onto_one() {
        // 9 pairs on 8 workers: the old div_ceil tiling produced five
        // tiles (four of size 2); balanced partitioning produces eight
        // tiles and every job is accounted for in the dispatch stats.
        let g = generate::grid(4, 4, 1..=10, 9);
        let svc = PathService::new(&g, 8).unwrap();
        let pairs: Vec<(i64, i64)> = (0..9).map(|i| (i % 16, (i * 5 + 3) % 16)).collect();
        let paths = svc.query_batch(&pairs).unwrap();
        assert_eq!(paths.len(), 9);
        let stats = svc.stats();
        assert_eq!(
            stats.total_executed(),
            8,
            "9 pairs on 8 workers must become 8 tiles, not 5"
        );
        // Every tile's queue wait was recorded.
        let waits: u64 = stats.workers.iter().map(|w| w.wait.count()).sum();
        assert_eq!(waits, 8);
    }

    #[test]
    fn stats_account_for_every_job() {
        let g = generate::grid(4, 4, 1..=10, 5);
        let svc = PathService::new(&g, 3).unwrap();
        for i in 0..12 {
            svc.query(i % 16, (i * 7) % 16).unwrap();
        }
        let pairs: Vec<(i64, i64)> = (0..7).map(|i| (i, (i + 5) % 16)).collect();
        svc.query_batch(&pairs).unwrap();
        let stats = svc.stats();
        assert_eq!(stats.workers.len(), 3);
        // 12 singles + min(7, 3) = 3 batch tiles (all pairs distinct, so
        // the cache front door forwards every one).
        assert_eq!(stats.total_executed(), 15);
        assert!(
            stats.wait_quantile_us(1.0) > 0,
            "waits are recorded in open-ended log2 buckets"
        );
        for w in &stats.workers {
            assert_eq!(w.queue_depth, 0, "queues drain after the calls return");
        }
    }

    #[test]
    fn sessions_share_plans_after_warmup() {
        let g = generate::grid(4, 4, 1..=10, 5);
        let svc = PathService::new(&g, 2).unwrap();
        svc.query(0, 15).unwrap();
        assert!(
            svc.snapshot().shared_plan_count() > 0,
            "first query should publish its plans to the shared cache"
        );
    }

    #[test]
    fn repeat_queries_hit_the_cache() {
        let g = generate::grid(4, 4, 1..=10, 5);
        let svc = PathService::new(&g, 2).unwrap();
        let first = svc.query(0, 15).unwrap().path.expect("connected");
        let second = svc.query(0, 15).unwrap().path.expect("connected");
        assert_eq!(first.length, second.length);
        assert_eq!(first.nodes, second.nodes);
        let stats = svc.stats();
        assert_eq!(stats.cache.hits, 1, "second query must be a cache hit");
        assert_eq!(
            stats.total_executed(),
            1,
            "only the first query ran a finder"
        );
        // Batches hit the same cache: the hot pair plus its duplicate
        // run zero new jobs.
        let paths = svc.query_batch(&[(0, 15), (0, 15)]).unwrap();
        assert!(paths.iter().all(|p| p.is_some()));
        assert_eq!(svc.stats().total_executed(), 1);
    }

    #[test]
    fn mutations_bump_version_and_invalidate_cached_results() {
        let g = generate::grid(4, 4, 1..=10, 7);
        let svc = PathService::new(&g, 2).unwrap();
        let v0 = svc.graph_version();
        let before = svc.query(0, 15).unwrap().path.expect("connected").length;
        assert!(before > 1, "grid detour must cost more than the shortcut");
        // A unit-weight shortcut must win immediately — through the
        // cache, not around it.
        assert_eq!(svc.insert_edge(0, 15, 1).unwrap(), 2);
        assert_eq!(svc.graph_version(), v0 + 1);
        assert_eq!(svc.query(0, 15).unwrap().path.expect("connected").length, 1);
        // Deleting it restores the old distance for singles and batches.
        assert_eq!(svc.delete_edge(0, 15).unwrap(), 2);
        assert_eq!(
            svc.query(0, 15).unwrap().path.expect("connected").length,
            before
        );
        let paths = svc.query_batch(&[(0, 15), (15, 0)]).unwrap();
        assert_eq!(paths[0].as_ref().expect("connected").length, before);
        let stats = svc.stats();
        assert_eq!(stats.graph_version, v0 + 2);
        assert!(
            stats.cache.stale >= 1,
            "mutations must strand cached entries"
        );
        // Invalid mutations never advance the version.
        assert!(svc.insert_edge(0, 999, 1).is_err());
        assert!(svc.insert_edge(0, 1, 0).is_err());
        assert_eq!(svc.graph_version(), v0 + 2);
    }

    #[test]
    fn cache_disabled_service_still_serves_and_counts_nothing() {
        let g = generate::grid(4, 4, 1..=10, 11);
        let svc = PathService::with_options(
            &g,
            &PathServiceOptions {
                workers: 2,
                cache_bytes: 0,
                ..Default::default()
            },
        )
        .unwrap();
        svc.query(0, 15).unwrap();
        svc.query(0, 15).unwrap();
        let stats = svc.stats();
        assert_eq!(stats.cache, CacheStats::default());
        assert_eq!(stats.total_executed(), 2, "no cache, every query runs");
        // Mutations still work without a cache.
        assert_eq!(svc.insert_edge(0, 15, 1).unwrap(), 2);
        assert_eq!(svc.query(0, 15).unwrap().path.expect("connected").length, 1);
    }

    #[test]
    fn landmark_fast_path_hits_are_counted_and_stop_after_mutation() {
        let g = generate::grid(4, 4, 1..=10, 13);
        let svc = PathService::with_options(
            &g,
            &PathServiceOptions {
                workers: 2,
                landmarks: 16,  // every node a landmark: all pairs covered
                cache_bytes: 0, // isolate the landmark counter from caching
                ..Default::default()
            },
        )
        .unwrap();
        svc.query(0, 15).unwrap();
        assert_eq!(svc.stats().lm_fast_path_hits, 1);
        // A mutation stales the landmark index; sessions disable the
        // fast path rather than serve a pre-mutation bound.
        svc.insert_edge(0, 15, 1).unwrap();
        assert_eq!(svc.query(0, 15).unwrap().path.expect("connected").length, 1);
        assert_eq!(
            svc.stats().lm_fast_path_hits,
            1,
            "post-mutation queries must not use pre-mutation landmarks"
        );
    }
}
