//! [`PathService`]: a concurrent shortest-path query service.
//!
//! The paper's FEM framework already splits state into a large immutable
//! edge relation and small per-query working tables; this module turns
//! that split into a serving architecture (DESIGN.md §10, §13). The graph
//! is loaded once, frozen into an [`GraphSnapshot`] (an `Arc`-shared
//! read-only page image plus a cross-session plan cache), and a pool of
//! worker threads each owns a private session — its own buffer pool,
//! copy-on-write overlay for the working tables, and prepared-statement
//! set.
//!
//! Dispatch is contention-free (DESIGN.md §13): every worker owns a
//! private queue, producers round-robin jobs across the queues, and an
//! idle worker steals the oldest job from a busy sibling
//! ([`crate::dispatch`]). Batches are **partitioned across the pool** —
//! [`PathService::query_batch`] splits the pairs into per-worker tiles of
//! near-equal size, each tile runs the batched bidirectional FEM finder
//! in its own session, and the per-tile results are merged back by
//! offset. A worker that panics mid-query answers that caller with an
//! error, rebuilds its session and keeps serving — one poisoned query
//! can neither hang its caller nor take down the pool.
//!
//! ```
//! use fempath_core::PathService;
//! use fempath_graph::generate;
//!
//! let g = generate::grid(6, 6, 1..=10, 7);
//! let svc = PathService::new(&g, 4).unwrap();
//! let out = svc.query(0, 35).unwrap();
//! assert!(out.path.is_some(), "grid is connected");
//! let paths = svc.query_batch(&[(0, 35), (5, 30), (7, 7)]).unwrap();
//! assert_eq!(paths.len(), 3);
//! let stats = svc.stats();
//! assert!(stats.total_executed() >= 2, "singles + batch tiles all count");
//! ```

use crate::algo::{
    BatchBdjFinder, BatchShortestPathFinder, BbfsFinder, BdjFinder, BsdjFinder, DjFinder, Path,
    PathOutcome, ShortestPathFinder,
};
use crate::dispatch::{partition_even, StealQueues, WaitHistogram, WorkerQueueStats};
use crate::graphdb::{GraphDb, GraphDbOptions, GraphSnapshot};
use crate::stats::QueryStats;
use fempath_graph::Graph;
use fempath_sql::{Result, SqlError};
use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Which relational finder answers single-pair queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ServiceAlgorithm {
    /// Single-directional Dijkstra (Algorithm 1) — mostly for comparison.
    Dj,
    /// Bidirectional Dijkstra — the service default.
    #[default]
    Bdj,
    /// Bidirectional set Dijkstra (the paper's strongest raw-edge finder).
    Bsdj,
    /// Bidirectional BFS-style relaxation.
    Bbfs,
}

impl ServiceAlgorithm {
    fn finder(self) -> Box<dyn ShortestPathFinder + Send> {
        match self {
            ServiceAlgorithm::Dj => Box::new(DjFinder::default()),
            ServiceAlgorithm::Bdj => Box::new(BdjFinder::default()),
            ServiceAlgorithm::Bsdj => Box::new(BsdjFinder::default()),
            ServiceAlgorithm::Bbfs => Box::new(BbfsFinder::default()),
        }
    }
}

/// Configuration for a [`PathService`].
#[derive(Debug, Clone)]
pub struct PathServiceOptions {
    /// Worker threads (and concurrent sessions). 0 is clamped to 1.
    pub workers: usize,
    /// Database build options (buffer budget, dialect, index strategies).
    pub graphdb: GraphDbOptions,
    /// Finder answering single-pair queries; batches always run the
    /// batched bidirectional finder.
    pub algorithm: ServiceAlgorithm,
    /// Landmarks to build into the shared snapshot before freezing
    /// (DESIGN.md §12). 0 skips the index; with one, single-pair queries
    /// covered by a landmark tree are answered without running FEM, and
    /// every finder seeds its Theorem-1 bound from the index.
    pub landmarks: usize,
}

impl Default for PathServiceOptions {
    fn default() -> Self {
        PathServiceOptions {
            workers: 4,
            graphdb: GraphDbOptions::default(),
            algorithm: ServiceAlgorithm::default(),
            landmarks: 0,
        }
    }
}

/// One unit of work dispatched to the pool.
enum Job {
    Single {
        s: i64,
        t: i64,
        reply: Sender<Result<PathOutcome>>,
    },
    Batch {
        pairs: Vec<(i64, i64)>,
        /// Index of `pairs[0]` in the caller's slice.
        offset: usize,
        reply: Sender<(usize, Result<Vec<Option<Path>>>)>,
    },
    /// Test-only: panics inside the worker, exercising the
    /// panic-isolation path ([`PathService::debug_inject_panic`]).
    InjectPanic { reply: Sender<Result<PathOutcome>> },
}

/// Counter snapshot for one service worker (see [`PathService::stats`]).
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Jobs (singles, batch tiles) this worker executed.
    pub executed: u64,
    /// Jobs this worker stole from a sibling's queue.
    pub stolen: u64,
    /// Jobs currently queued on this worker.
    pub queue_depth: usize,
    /// High-water mark of this worker's queue depth.
    pub queue_depth_hwm: u64,
    /// Queue-wait histogram of jobs enqueued on this worker (log₂ µs
    /// buckets) — how long work sat before any worker picked it up.
    pub wait: WaitHistogram,
}

impl From<WorkerQueueStats> for WorkerStats {
    fn from(q: WorkerQueueStats) -> WorkerStats {
        WorkerStats {
            executed: q.executed,
            stolen: q.stolen,
            queue_depth: q.depth,
            queue_depth_hwm: q.depth_hwm,
            wait: q.wait,
        }
    }
}

/// Dispatch instrumentation for a [`PathService`] (DESIGN.md §13):
/// per-worker queue depths, steal counts and queue-wait histograms. All
/// counters are cheap relaxed atomics — reading them does not perturb
/// the pool.
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// One entry per worker, in worker order.
    pub workers: Vec<WorkerStats>,
}

impl ServiceStats {
    /// Jobs executed across the pool.
    pub fn total_executed(&self) -> u64 {
        self.workers.iter().map(|w| w.executed).sum()
    }

    /// Jobs that crossed worker queues (work-stealing events). High
    /// steal counts with low waits mean the pool is balancing fine;
    /// high waits point at true saturation, not dispatch contention.
    pub fn total_stolen(&self) -> u64 {
        self.workers.iter().map(|w| w.stolen).sum()
    }

    /// Largest queue-depth high-water mark across workers.
    pub fn max_queue_depth_hwm(&self) -> u64 {
        self.workers
            .iter()
            .map(|w| w.queue_depth_hwm)
            .max()
            .unwrap_or(0)
    }

    /// Queue-wait quantile (µs) over every job in the pool.
    pub fn wait_quantile_us(&self, q: f64) -> u64 {
        let mut merged = WaitHistogram::default();
        for w in &self.workers {
            merged.merge(&w.wait);
        }
        merged.quantile_us(q)
    }
}

/// A concurrent shortest-path service over one frozen graph.
///
/// Construction loads and freezes the graph, then spawns the worker pool;
/// [`PathService::query`] and [`PathService::query_batch`] may be called
/// from any number of threads concurrently (`&self`, `Send + Sync`).
/// Dropping the service shuts the pool down.
pub struct PathService {
    snapshot: Arc<GraphSnapshot>,
    queues: Arc<StealQueues<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl PathService {
    /// Loads `graph` and serves it with `workers` threads and default
    /// options.
    pub fn new(graph: &Graph, workers: usize) -> Result<PathService> {
        PathService::with_options(
            graph,
            &PathServiceOptions {
                workers,
                ..Default::default()
            },
        )
    }

    /// Loads `graph` with explicit options.
    pub fn with_options(graph: &Graph, opts: &PathServiceOptions) -> Result<PathService> {
        let mut gdb = GraphDb::new(graph, &opts.graphdb)?;
        if opts.landmarks > 0 {
            gdb.build_landmarks(opts.landmarks)?;
        }
        Ok(PathService::from_snapshot(
            Arc::new(gdb.freeze()?),
            opts.workers,
            opts.algorithm,
        ))
    }

    /// Serves an existing snapshot — use this to pre-build the SegTable
    /// or landmark tables into the shared image first
    /// ([`GraphDb::freeze`]), or to run several services over one image.
    pub fn from_snapshot(
        snapshot: Arc<GraphSnapshot>,
        workers: usize,
        algorithm: ServiceAlgorithm,
    ) -> PathService {
        let workers = workers.max(1);
        let queues = Arc::new(StealQueues::new(workers));
        let handles = (0..workers)
            .map(|me| {
                let queues = queues.clone();
                let snapshot = snapshot.clone();
                std::thread::spawn(move || worker_loop(&snapshot, &queues, me, algorithm))
            })
            .collect();
        PathService {
            snapshot,
            queues,
            workers: handles,
        }
    }

    /// Shortest path from `s` to `t`, answered by the next free worker.
    pub fn query(&self, s: i64, t: i64) -> Result<PathOutcome> {
        let (reply, result) = channel();
        self.queues
            .push(Job::Single { s, t, reply })
            .map_err(|_| worker_pool_down())?;
        result.recv().map_err(|_| worker_pool_down())?
    }

    /// Answers many (s, t) pairs; `paths[i]` answers `pairs[i]`.
    ///
    /// The pairs are **partitioned across the worker pool**: split into
    /// contiguous tiles whose sizes differ by at most one (every worker
    /// gets a tile whenever `pairs.len() >= workers`), one tile per
    /// worker queue — an idle worker steals a queued tile, so a slow
    /// tile cannot strand the rest. Each tile runs the batched
    /// bidirectional FEM finder (DESIGN.md §8) in one worker session and
    /// the results are merged back by offset, in input order.
    pub fn query_batch(&self, pairs: &[(i64, i64)]) -> Result<Vec<Option<Path>>> {
        if pairs.is_empty() {
            return Ok(Vec::new());
        }
        let tiles = partition_even(pairs.len(), self.workers.len());
        // Spread this batch's tiles starting at the shared round-robin
        // cursor so concurrent batches interleave across the pool
        // instead of all starting on worker 0.
        let first = self.queues.reserve_targets(tiles.len());
        let (reply, results) = channel();
        let mut outstanding = 0usize;
        for (k, &(offset, len)) in tiles.iter().enumerate() {
            self.queues
                .push_to(
                    first + k,
                    Job::Batch {
                        pairs: pairs[offset..offset + len].to_vec(),
                        offset,
                        reply: reply.clone(),
                    },
                )
                .map_err(|_| worker_pool_down())?;
            outstanding += 1;
        }
        // Drop our own sender clone: if a worker dies without replying,
        // the channel closes and recv() errors instead of hanging forever.
        drop(reply);
        let mut out: Vec<Option<Path>> = vec![None; pairs.len()];
        let mut first_err: Option<SqlError> = None;
        for _ in 0..outstanding {
            let (offset, res) = results.recv().map_err(|_| worker_pool_down())?;
            match res {
                Ok(paths) => {
                    for (i, p) in paths.into_iter().enumerate() {
                        out[offset + i] = p;
                    }
                }
                Err(e) => first_err = Some(first_err.unwrap_or(e)),
            }
        }
        match first_err {
            None => Ok(out),
            Some(e) => Err(e),
        }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The shared snapshot backing the pool.
    pub fn snapshot(&self) -> &Arc<GraphSnapshot> {
        &self.snapshot
    }

    /// Dispatch instrumentation: per-worker executed/stolen counts,
    /// queue depths and queue-wait histograms (DESIGN.md §13).
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            workers: (0..self.workers.len())
                .map(|i| self.queues.queue_stats(i).into())
                .collect(),
        }
    }

    /// Test-only: makes one worker panic mid-job and returns what its
    /// caller observes. The panic must surface as an error on *this*
    /// call — never a hang — and the pool (including the panicked
    /// worker, which rebuilds its session) must keep serving.
    #[doc(hidden)]
    pub fn debug_inject_panic(&self) -> Result<PathOutcome> {
        let (reply, result) = channel();
        self.queues
            .push(Job::InjectPanic { reply })
            .map_err(|_| worker_pool_down())?;
        result.recv().map_err(|_| worker_pool_down())?
    }
}

impl Drop for PathService {
    fn drop(&mut self) {
        // Refuse new jobs and wake every parked worker; workers drain
        // whatever is still queued, then exit their loops.
        self.queues.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PathService>();
};

fn worker_pool_down() -> SqlError {
    SqlError::Eval("path service worker pool is shut down".into())
}

/// Runs one job body with panic isolation: a panic inside the finder (or
/// injected by a test) is caught, the session — whose working tables may
/// be mid-operation — is rebuilt from the snapshot, and the caller gets
/// a `worker_pool_down` error instead of a dropped reply. Sibling
/// workers are untouched: no dispatch lock is ever held around job
/// execution, so there is nothing to poison.
fn run_isolated<R>(
    session: &mut GraphDb,
    snapshot: &GraphSnapshot,
    f: impl FnOnce(&mut GraphDb) -> Result<R>,
) -> Result<R> {
    match std::panic::catch_unwind(AssertUnwindSafe(|| f(session))) {
        Ok(res) => res,
        Err(_) => {
            *session = snapshot.session();
            Err(worker_pool_down())
        }
    }
}

/// One worker: a private session over the shared snapshot, draining its
/// own queue (and stealing from siblings) until the service closes the
/// pool and the queues run dry.
fn worker_loop(
    snapshot: &GraphSnapshot,
    queues: &StealQueues<Job>,
    me: usize,
    algorithm: ServiceAlgorithm,
) {
    let mut session = snapshot.session();
    let finder = algorithm.finder();
    let batch_finder = BatchBdjFinder::default();
    while let Some(job) = queues.pop(me) {
        match job {
            Job::Single { s, t, reply } => {
                let res = run_isolated(&mut session, snapshot, |session| {
                    // Landmark fast path (DESIGN.md §12): a covered pair —
                    // bounds already proven tight — is answered straight
                    // from the index, no FEM table ever written. Uncovered
                    // pairs fall through to the configured finder.
                    match crate::landmarks::exact_path(session, s, t)? {
                        Some(path) => Ok(PathOutcome {
                            path: Some(path),
                            stats: QueryStats::default(),
                        }),
                        None => finder.find_path(session, s, t),
                    }
                });
                let _ = reply.send(res);
            }
            Job::Batch {
                pairs,
                offset,
                reply,
            } => {
                let res = run_isolated(&mut session, snapshot, |session| {
                    batch_finder
                        .find_paths(session, &pairs)
                        .map(|out| out.paths)
                });
                let _ = reply.send((offset, res));
            }
            Job::InjectPanic { reply } => {
                let res = run_isolated(&mut session, snapshot, |_| -> Result<PathOutcome> {
                    panic!("injected worker panic (test hook)")
                });
                let _ = reply.send(res);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fempath_graph::generate;

    #[test]
    fn serves_single_queries() {
        let g = generate::grid(5, 5, 1..=10, 3);
        let svc = PathService::new(&g, 2).unwrap();
        let out = svc.query(0, 24).unwrap();
        let p = out.path.expect("grid is connected");
        assert_eq!(p.nodes.first(), Some(&0));
        assert_eq!(p.nodes.last(), Some(&24));
        // Trivial and invalid queries behave like the direct finders.
        assert_eq!(svc.query(3, 3).unwrap().path.unwrap().length, 0);
        assert!(svc.query(0, 999).is_err());
    }

    #[test]
    fn serves_batches_in_caller_order() {
        let g = generate::grid(4, 4, 1..=10, 9);
        let svc = PathService::new(&g, 3).unwrap();
        let pairs = vec![(0, 15), (1, 1), (15, 0), (2, 13), (0, 5)];
        let paths = svc.query_batch(&pairs).unwrap();
        assert_eq!(paths.len(), pairs.len());
        for (i, &(s, t)) in pairs.iter().enumerate() {
            let p = paths[i].as_ref().expect("grid is connected");
            assert_eq!(p.nodes.first(), Some(&s));
            assert_eq!(p.nodes.last(), Some(&t));
        }
        // Forward and reverse of the same pair agree on length.
        assert_eq!(
            paths[0].as_ref().unwrap().length,
            paths[2].as_ref().unwrap().length
        );
    }

    #[test]
    fn batch_is_partitioned_across_workers_not_tiled_onto_one() {
        // 9 pairs on 8 workers: the old div_ceil tiling produced five
        // tiles (four of size 2); balanced partitioning produces eight
        // tiles and every job is accounted for in the dispatch stats.
        let g = generate::grid(4, 4, 1..=10, 9);
        let svc = PathService::new(&g, 8).unwrap();
        let pairs: Vec<(i64, i64)> = (0..9).map(|i| (i % 16, (i * 5 + 3) % 16)).collect();
        let paths = svc.query_batch(&pairs).unwrap();
        assert_eq!(paths.len(), 9);
        let stats = svc.stats();
        assert_eq!(
            stats.total_executed(),
            8,
            "9 pairs on 8 workers must become 8 tiles, not 5"
        );
        // Every tile's queue wait was recorded.
        let waits: u64 = stats.workers.iter().map(|w| w.wait.count()).sum();
        assert_eq!(waits, 8);
    }

    #[test]
    fn stats_account_for_every_job() {
        let g = generate::grid(4, 4, 1..=10, 5);
        let svc = PathService::new(&g, 3).unwrap();
        for i in 0..12 {
            svc.query(i % 16, (i * 7) % 16).unwrap();
        }
        let pairs: Vec<(i64, i64)> = (0..7).map(|i| (i, (i + 5) % 16)).collect();
        svc.query_batch(&pairs).unwrap();
        let stats = svc.stats();
        assert_eq!(stats.workers.len(), 3);
        // 12 singles + min(7, 3) = 3 batch tiles.
        assert_eq!(stats.total_executed(), 15);
        assert!(
            stats.wait_quantile_us(1.0) > 0,
            "waits are recorded in open-ended log2 buckets"
        );
        for w in &stats.workers {
            assert_eq!(w.queue_depth, 0, "queues drain after the calls return");
        }
    }

    #[test]
    fn sessions_share_plans_after_warmup() {
        let g = generate::grid(4, 4, 1..=10, 5);
        let svc = PathService::new(&g, 2).unwrap();
        svc.query(0, 15).unwrap();
        assert!(
            svc.snapshot().shared_plan_count() > 0,
            "first query should publish its plans to the shared cache"
        );
    }
}
