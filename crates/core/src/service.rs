//! [`PathService`]: a concurrent shortest-path query service.
//!
//! The paper's FEM framework already splits state into a large immutable
//! edge relation and small per-query working tables; this module turns
//! that split into a serving architecture (DESIGN.md §10). The graph is
//! loaded once, frozen into an [`GraphSnapshot`] (an `Arc`-shared
//! read-only page image plus a cross-session plan cache), and a pool of
//! worker threads each owns a private session — its own buffer pool,
//! copy-on-write overlay for the working tables, and prepared-statement
//! set. Queries are dispatched over a channel and answered in parallel;
//! batched queries are tiled across the pool and advanced by the batched
//! FEM finders.
//!
//! ```
//! use fempath_core::PathService;
//! use fempath_graph::generate;
//!
//! let g = generate::grid(6, 6, 1..=10, 7);
//! let svc = PathService::new(&g, 4).unwrap();
//! let out = svc.query(0, 35).unwrap();
//! assert!(out.path.is_some(), "grid is connected");
//! let paths = svc.query_batch(&[(0, 35), (5, 30), (7, 7)]).unwrap();
//! assert_eq!(paths.len(), 3);
//! ```

use crate::algo::{
    BatchBdjFinder, BatchShortestPathFinder, BbfsFinder, BdjFinder, BsdjFinder, DjFinder, Path,
    PathOutcome, ShortestPathFinder,
};
use crate::graphdb::{GraphDb, GraphDbOptions, GraphSnapshot};
use crate::stats::QueryStats;
use fempath_graph::Graph;
use fempath_sql::{Result, SqlError};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Which relational finder answers single-pair queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ServiceAlgorithm {
    /// Single-directional Dijkstra (Algorithm 1) — mostly for comparison.
    Dj,
    /// Bidirectional Dijkstra — the service default.
    #[default]
    Bdj,
    /// Bidirectional set Dijkstra (the paper's strongest raw-edge finder).
    Bsdj,
    /// Bidirectional BFS-style relaxation.
    Bbfs,
}

impl ServiceAlgorithm {
    fn finder(self) -> Box<dyn ShortestPathFinder + Send> {
        match self {
            ServiceAlgorithm::Dj => Box::new(DjFinder::default()),
            ServiceAlgorithm::Bdj => Box::new(BdjFinder::default()),
            ServiceAlgorithm::Bsdj => Box::new(BsdjFinder::default()),
            ServiceAlgorithm::Bbfs => Box::new(BbfsFinder::default()),
        }
    }
}

/// Configuration for a [`PathService`].
#[derive(Debug, Clone)]
pub struct PathServiceOptions {
    /// Worker threads (and concurrent sessions). 0 is clamped to 1.
    pub workers: usize,
    /// Database build options (buffer budget, dialect, index strategies).
    pub graphdb: GraphDbOptions,
    /// Finder answering single-pair queries; batches always run the
    /// batched bidirectional finder.
    pub algorithm: ServiceAlgorithm,
    /// Landmarks to build into the shared snapshot before freezing
    /// (DESIGN.md §12). 0 skips the index; with one, single-pair queries
    /// covered by a landmark tree are answered without running FEM, and
    /// every finder seeds its Theorem-1 bound from the index.
    pub landmarks: usize,
}

impl Default for PathServiceOptions {
    fn default() -> Self {
        PathServiceOptions {
            workers: 4,
            graphdb: GraphDbOptions::default(),
            algorithm: ServiceAlgorithm::default(),
            landmarks: 0,
        }
    }
}

/// One unit of work dispatched to the pool.
enum Job {
    Single {
        s: i64,
        t: i64,
        reply: Sender<Result<PathOutcome>>,
    },
    Batch {
        pairs: Vec<(i64, i64)>,
        /// Index of `pairs[0]` in the caller's slice.
        offset: usize,
        reply: Sender<(usize, Result<Vec<Option<Path>>>)>,
    },
}

/// A concurrent shortest-path service over one frozen graph.
///
/// Construction loads and freezes the graph, then spawns the worker pool;
/// [`PathService::query`] and [`PathService::query_batch`] may be called
/// from any number of threads concurrently (`&self`, `Send + Sync`).
/// Dropping the service shuts the pool down.
pub struct PathService {
    snapshot: Arc<GraphSnapshot>,
    queue: Sender<Job>,
    workers: Vec<JoinHandle<()>>,
}

impl PathService {
    /// Loads `graph` and serves it with `workers` threads and default
    /// options.
    pub fn new(graph: &Graph, workers: usize) -> Result<PathService> {
        PathService::with_options(
            graph,
            &PathServiceOptions {
                workers,
                ..Default::default()
            },
        )
    }

    /// Loads `graph` with explicit options.
    pub fn with_options(graph: &Graph, opts: &PathServiceOptions) -> Result<PathService> {
        let mut gdb = GraphDb::new(graph, &opts.graphdb)?;
        if opts.landmarks > 0 {
            gdb.build_landmarks(opts.landmarks)?;
        }
        Ok(PathService::from_snapshot(
            Arc::new(gdb.freeze()?),
            opts.workers,
            opts.algorithm,
        ))
    }

    /// Serves an existing snapshot — use this to pre-build the SegTable
    /// or landmark tables into the shared image first
    /// ([`GraphDb::freeze`]), or to run several services over one image.
    pub fn from_snapshot(
        snapshot: Arc<GraphSnapshot>,
        workers: usize,
        algorithm: ServiceAlgorithm,
    ) -> PathService {
        let workers = workers.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|_| {
                let rx = rx.clone();
                let snapshot = snapshot.clone();
                std::thread::spawn(move || worker_loop(&snapshot, &rx, algorithm))
            })
            .collect();
        PathService {
            snapshot,
            queue: tx,
            workers: handles,
        }
    }

    /// Shortest path from `s` to `t`, answered by the next free worker.
    pub fn query(&self, s: i64, t: i64) -> Result<PathOutcome> {
        let (reply, result) = channel();
        self.queue
            .send(Job::Single { s, t, reply })
            .map_err(|_| worker_pool_down())?;
        result.recv().map_err(|_| worker_pool_down())?
    }

    /// Answers many (s, t) pairs, tiling them across the worker pool;
    /// `paths[i]` answers `pairs[i]`. Each tile runs the batched
    /// bidirectional FEM finder (DESIGN.md §8) in one worker session.
    pub fn query_batch(&self, pairs: &[(i64, i64)]) -> Result<Vec<Option<Path>>> {
        if pairs.is_empty() {
            return Ok(Vec::new());
        }
        let chunk = pairs.len().div_ceil(self.workers.len()).max(1);
        let (reply, results) = channel();
        let mut outstanding = 0usize;
        for (i, tile) in pairs.chunks(chunk).enumerate() {
            self.queue
                .send(Job::Batch {
                    pairs: tile.to_vec(),
                    offset: i * chunk,
                    reply: reply.clone(),
                })
                .map_err(|_| worker_pool_down())?;
            outstanding += 1;
        }
        // Drop our own sender clone: if a worker dies without replying,
        // the channel closes and recv() errors instead of hanging forever.
        drop(reply);
        let mut out: Vec<Option<Path>> = vec![None; pairs.len()];
        let mut first_err: Option<SqlError> = None;
        for _ in 0..outstanding {
            let (offset, res) = results.recv().map_err(|_| worker_pool_down())?;
            match res {
                Ok(paths) => {
                    for (i, p) in paths.into_iter().enumerate() {
                        out[offset + i] = p;
                    }
                }
                Err(e) => first_err = Some(first_err.unwrap_or(e)),
            }
        }
        match first_err {
            None => Ok(out),
            Some(e) => Err(e),
        }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The shared snapshot backing the pool.
    pub fn snapshot(&self) -> &Arc<GraphSnapshot> {
        &self.snapshot
    }
}

impl Drop for PathService {
    fn drop(&mut self) {
        // Closing the queue ends every worker's recv loop.
        let (dead, _) = channel();
        self.queue = dead;
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PathService>();
};

fn worker_pool_down() -> SqlError {
    SqlError::Eval("path service worker pool is shut down".into())
}

/// One worker: a private session over the shared snapshot, draining the
/// job queue until the service drops the sender side.
fn worker_loop(
    snapshot: &GraphSnapshot,
    rx: &Arc<Mutex<Receiver<Job>>>,
    algorithm: ServiceAlgorithm,
) {
    let mut session = snapshot.session();
    let finder = algorithm.finder();
    let batch_finder = BatchBdjFinder::default();
    loop {
        // Hold the lock only to dequeue, never while executing.
        let job = match rx.lock() {
            Ok(q) => q.recv(),
            Err(_) => return, // poisoned: a sibling worker panicked
        };
        match job {
            Err(_) => return, // queue closed: service dropped
            Ok(Job::Single { s, t, reply }) => {
                // Landmark fast path (DESIGN.md §12): a covered pair —
                // bounds already proven tight — is answered straight from
                // the index, no FEM table ever written. Uncovered pairs
                // fall through to the configured finder.
                let res = match crate::landmarks::exact_path(&mut session, s, t) {
                    Ok(Some(path)) => Ok(PathOutcome {
                        path: Some(path),
                        stats: QueryStats::default(),
                    }),
                    Ok(None) => finder.find_path(&mut session, s, t),
                    Err(e) => Err(e),
                };
                let _ = reply.send(res);
            }
            Ok(Job::Batch {
                pairs,
                offset,
                reply,
            }) => {
                let res = batch_finder
                    .find_paths(&mut session, &pairs)
                    .map(|out| out.paths);
                let _ = reply.send((offset, res));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fempath_graph::generate;

    #[test]
    fn serves_single_queries() {
        let g = generate::grid(5, 5, 1..=10, 3);
        let svc = PathService::new(&g, 2).unwrap();
        let out = svc.query(0, 24).unwrap();
        let p = out.path.expect("grid is connected");
        assert_eq!(p.nodes.first(), Some(&0));
        assert_eq!(p.nodes.last(), Some(&24));
        // Trivial and invalid queries behave like the direct finders.
        assert_eq!(svc.query(3, 3).unwrap().path.unwrap().length, 0);
        assert!(svc.query(0, 999).is_err());
    }

    #[test]
    fn serves_batches_in_caller_order() {
        let g = generate::grid(4, 4, 1..=10, 9);
        let svc = PathService::new(&g, 3).unwrap();
        let pairs = vec![(0, 15), (1, 1), (15, 0), (2, 13), (0, 5)];
        let paths = svc.query_batch(&pairs).unwrap();
        assert_eq!(paths.len(), pairs.len());
        for (i, &(s, t)) in pairs.iter().enumerate() {
            let p = paths[i].as_ref().expect("grid is connected");
            assert_eq!(p.nodes.first(), Some(&s));
            assert_eq!(p.nodes.last(), Some(&t));
        }
        // Forward and reverse of the same pair agree on length.
        assert_eq!(
            paths[0].as_ref().unwrap().length,
            paths[2].as_ref().unwrap().length
        );
    }

    #[test]
    fn sessions_share_plans_after_warmup() {
        let g = generate::grid(4, 4, 1..=10, 5);
        let svc = PathService::new(&g, 2).unwrap();
        svc.query(0, 15).unwrap();
        assert!(
            svc.snapshot().shared_plan_count() > 0,
            "first query should publish its plans to the shared cache"
        );
    }
}
