//! The generic FEM framework (§3.1–§3.2).
//!
//! A graph search in the FEM framework is an iteration of three relational
//! operators over a visited-node table:
//!
//! * **F-operator** — select frontier nodes from the visited nodes,
//! * **E-operator** — expand the frontier against an edge relation,
//! * **M-operator** — merge the expansion back into the visited nodes,
//!
//! plus auxiliary statements (initialization, termination detection, result
//! recovery). The shortest-path finders in [`crate::algo`] instantiate the
//! pattern with their own frontier policies; [`FemSearch`]/[`run_fem`]
//! expose the skeleton directly so *other* graph searches can be written
//! the same way — [`crate::prim`] implements Prim's minimal spanning tree
//! (the second example of §3.1) on top of it.

use fempath_sql::{Database, Result};

/// One FEM-style graph search: the three operators plus a continuation
/// test. Implementations keep their own client-side scalars (the paper's
/// `mid`, `minCost`, …) between calls.
pub trait FemSearch {
    /// Initializes the visited-node table (the A¹ set).
    fn init(&mut self, db: &mut Database) -> Result<()>;

    /// F-operator for iteration `k`: selects (marks) frontier nodes and
    /// returns how many were selected. Returning 0 stops the iteration.
    fn select_frontier(&mut self, db: &mut Database, k: u64) -> Result<u64>;

    /// E- and M-operators for iteration `k`: expands the frontier and
    /// merges it into the visited nodes. Returns the number of visited
    /// rows affected (the SQLCA counter of Algorithms 1/2).
    fn expand_and_merge(&mut self, db: &mut Database, k: u64) -> Result<u64>;

    /// Post-iteration hook (termination detection, statistics). Returning
    /// `false` stops the iteration.
    fn after_iteration(&mut self, db: &mut Database, k: u64, affected: u64) -> Result<bool> {
        let _ = (db, k, affected);
        Ok(true)
    }
}

/// Drives a [`FemSearch`] to completion; returns the number of completed
/// iterations.
pub fn run_fem(db: &mut Database, search: &mut impl FemSearch) -> Result<u64> {
    search.init(db)?;
    let mut k = 1u64;
    loop {
        let frontier = search.select_frontier(db, k)?;
        if frontier == 0 {
            return Ok(k - 1);
        }
        let affected = search.expand_and_merge(db, k)?;
        if !search.after_iteration(db, k, affected)? {
            return Ok(k);
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy FEM search: computes hop-reachability from node 0 by marking
    /// and expanding everything each round (BFS).
    struct Reach {
        iterations_seen: u64,
    }

    impl FemSearch for Reach {
        fn init(&mut self, db: &mut Database) -> Result<()> {
            db.execute("DROP TABLE IF EXISTS R")?;
            db.execute("CREATE TABLE R (nid INT, f INT, PRIMARY KEY(nid))")?;
            db.execute("INSERT INTO R VALUES (0, 0)")?;
            Ok(())
        }

        fn select_frontier(&mut self, db: &mut Database, _k: u64) -> Result<u64> {
            Ok(db.execute("UPDATE R SET f = 2 WHERE f = 0")?.rows_affected)
        }

        fn expand_and_merge(&mut self, db: &mut Database, _k: u64) -> Result<u64> {
            let n = db
                .execute(
                    "MERGE INTO R AS target USING ( \
                       SELECT DISTINCT e.tid AS nid FROM R q, TEdges e \
                       WHERE q.nid = e.fid AND q.f = 2 \
                     ) AS source (nid) ON source.nid = target.nid \
                     WHEN NOT MATCHED THEN INSERT (nid, f) VALUES (source.nid, 0)",
                )?
                .rows_affected;
            db.execute("UPDATE R SET f = 1 WHERE f = 2")?;
            Ok(n)
        }

        fn after_iteration(&mut self, _db: &mut Database, k: u64, _affected: u64) -> Result<bool> {
            self.iterations_seen = k;
            Ok(true)
        }
    }

    #[test]
    fn fem_bfs_reaches_component() {
        let g = fempath_graph::Graph::from_undirected_edges(
            6,
            vec![(0, 1, 1), (1, 2, 1), (2, 3, 1), (4, 5, 1)],
        );
        let mut db = Database::in_memory(128);
        fempath_graph::load_graph(&mut db, &g, &fempath_graph::LoadOptions::default()).unwrap();
        let mut search = Reach { iterations_seen: 0 };
        let iters = run_fem(&mut db, &mut search).unwrap();
        // Nodes 0..=3 reachable; 4, 5 are in the other component.
        assert_eq!(db.table_len("R").unwrap(), 4);
        assert!(iters >= 3, "needs at least the graph's hop radius");
    }
}
