//! The generic FEM framework (§3.1–§3.2).
//!
//! A graph search in the FEM framework is an iteration of three relational
//! operators over a visited-node table:
//!
//! * **F-operator** — select frontier nodes from the visited nodes,
//! * **E-operator** — expand the frontier against an edge relation,
//! * **M-operator** — merge the expansion back into the visited nodes,
//!
//! plus auxiliary statements (initialization, termination detection, result
//! recovery). The shortest-path finders in [`crate::algo`] instantiate the
//! pattern with their own frontier policies; [`FemSearch`]/[`run_fem`]
//! expose the skeleton directly so *other* graph searches can be written
//! the same way — [`crate::prim`] implements Prim's minimal spanning tree
//! (the second example of §3.1) on top of it.

use fempath_sql::{Database, Result};

/// One FEM-style graph search: the three operators plus a continuation
/// test. Implementations keep their own client-side scalars (the paper's
/// `mid`, `minCost`, …) between calls.
pub trait FemSearch {
    /// Initializes the visited-node table (the A¹ set).
    fn init(&mut self, db: &mut Database) -> Result<()>;

    /// F-operator for iteration `k`: selects (marks) frontier nodes and
    /// returns how many were selected. Returning 0 stops the iteration.
    fn select_frontier(&mut self, db: &mut Database, k: u64) -> Result<u64>;

    /// E- and M-operators for iteration `k`: expands the frontier and
    /// merges it into the visited nodes. Returns the number of visited
    /// rows affected (the SQLCA counter of Algorithms 1/2).
    fn expand_and_merge(&mut self, db: &mut Database, k: u64) -> Result<u64>;

    /// Post-iteration hook (termination detection, statistics). Returning
    /// `false` stops the iteration.
    fn after_iteration(&mut self, db: &mut Database, k: u64, affected: u64) -> Result<bool> {
        let _ = (db, k, affected);
        Ok(true)
    }
}

/// Drives a [`FemSearch`] to completion; returns the number of completed
/// iterations.
pub fn run_fem(db: &mut Database, search: &mut impl FemSearch) -> Result<u64> {
    search.init(db)?;
    let mut k = 1u64;
    loop {
        let frontier = search.select_frontier(db, k)?;
        if frontier == 0 {
            return Ok(k - 1);
        }
        let affected = search.expand_and_merge(db, k)?;
        if !search.after_iteration(db, k, affected)? {
            return Ok(k);
        }
        k += 1;
    }
}

/// One **batched** FEM-style graph search (DESIGN.md §8): the same three
/// operators, but every working table carries a `qid` column so a single
/// relational iteration advances a whole batch of independent queries.
///
/// Where [`FemSearch`] implementations keep per-query scalars (`mid`,
/// `minCost`, …) in the driver program, a batched search keeps them
/// *relational* — one row per query in a bounds table — because one
/// statement must read a different scalar for every qid it touches.
/// Termination is likewise per query: [`BatchFemSearch::active_queries`]
/// retires finished qids and reports how many remain.
///
/// [`crate::algo::batch`] instantiates this shape for shortest paths (with
/// its own driver, for per-statement measurement); [`run_batch_fem`] is the
/// plain skeleton for writing other batched searches the same way.
pub trait BatchFemSearch {
    /// Initializes the visited-node and bounds tables for every query in
    /// the batch (the per-qid A¹ sets).
    fn init(&mut self, db: &mut Database) -> Result<()>;

    /// F-operator for iteration `k`: marks each unfinished query's frontier
    /// and returns how many rows were marked across the batch.
    fn select_frontier(&mut self, db: &mut Database, k: u64) -> Result<u64>;

    /// E- and M-operators for iteration `k`: expands every marked frontier
    /// and merges per qid. Returns the affected-row count.
    fn expand_and_merge(&mut self, db: &mut Database, k: u64) -> Result<u64>;

    /// Post-iteration bookkeeping: refresh per-query statistics, retire
    /// finished queries, and return the number still active. Returning 0
    /// stops the iteration.
    fn active_queries(&mut self, db: &mut Database, k: u64) -> Result<u64>;
}

/// Drives a [`BatchFemSearch`] until every query in the batch has finished;
/// returns the number of completed iterations.
///
/// A search whose `select_frontier` marks nothing while queries are still
/// active is stuck — `active_queries` is expected to have retired qids that
/// can make no further progress — so the driver stops rather than spin.
pub fn run_batch_fem(db: &mut Database, search: &mut impl BatchFemSearch) -> Result<u64> {
    search.init(db)?;
    let mut k = 1u64;
    loop {
        let frontier = search.select_frontier(db, k)?;
        if frontier > 0 {
            search.expand_and_merge(db, k)?;
        }
        if search.active_queries(db, k)? == 0 {
            return Ok(k);
        }
        if frontier == 0 {
            return Ok(k - 1);
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy FEM search: computes hop-reachability from node 0 by marking
    /// and expanding everything each round (BFS).
    struct Reach {
        iterations_seen: u64,
    }

    impl FemSearch for Reach {
        fn init(&mut self, db: &mut Database) -> Result<()> {
            db.execute("DROP TABLE IF EXISTS R")?;
            db.execute("CREATE TABLE R (nid INT, f INT, PRIMARY KEY(nid))")?;
            db.execute("INSERT INTO R VALUES (0, 0)")?;
            Ok(())
        }

        fn select_frontier(&mut self, db: &mut Database, _k: u64) -> Result<u64> {
            Ok(db.execute("UPDATE R SET f = 2 WHERE f = 0")?.rows_affected)
        }

        fn expand_and_merge(&mut self, db: &mut Database, _k: u64) -> Result<u64> {
            let n = db
                .execute(
                    "MERGE INTO R AS target USING ( \
                       SELECT DISTINCT e.tid AS nid FROM R q, TEdges e \
                       WHERE q.nid = e.fid AND q.f = 2 \
                     ) AS source (nid) ON source.nid = target.nid \
                     WHEN NOT MATCHED THEN INSERT (nid, f) VALUES (source.nid, 0)",
                )?
                .rows_affected;
            db.execute("UPDATE R SET f = 1 WHERE f = 2")?;
            Ok(n)
        }

        fn after_iteration(&mut self, _db: &mut Database, k: u64, _affected: u64) -> Result<bool> {
            self.iterations_seen = k;
            Ok(true)
        }
    }

    #[test]
    fn fem_bfs_reaches_component() {
        let g = fempath_graph::Graph::from_undirected_edges(
            6,
            vec![(0, 1, 1), (1, 2, 1), (2, 3, 1), (4, 5, 1)],
        );
        let mut db = Database::in_memory(128);
        fempath_graph::load_graph(&mut db, &g, &fempath_graph::LoadOptions::default()).unwrap();
        let mut search = Reach { iterations_seen: 0 };
        let iters = run_fem(&mut db, &mut search).unwrap();
        // Nodes 0..=3 reachable; 4, 5 are in the other component.
        assert_eq!(db.table_len("R").unwrap(), 4);
        assert!(iters >= 3, "needs at least the graph's hop radius");
    }

    /// The batched toy search: hop-reachability from several source nodes
    /// at once, one qid per source, each with its own termination.
    struct BatchReach {
        sources: Vec<i64>,
    }

    impl BatchFemSearch for BatchReach {
        fn init(&mut self, db: &mut Database) -> Result<()> {
            db.execute("DROP TABLE IF EXISTS BR")?;
            db.execute("DROP TABLE IF EXISTS BRActive")?;
            db.execute("CREATE TABLE BR (qid INT, nid INT, f INT, PRIMARY KEY(qid, nid))")?;
            db.execute("CREATE TABLE BRActive (qid INT, grew INT)")?;
            for (qid, &s) in self.sources.iter().enumerate() {
                db.execute_params(
                    "INSERT INTO BR VALUES (?, ?, 0)",
                    &[
                        fempath_storage::Value::Int(qid as i64),
                        fempath_storage::Value::Int(s),
                    ],
                )?;
                db.execute_params(
                    "INSERT INTO BRActive VALUES (?, 1)",
                    &[fempath_storage::Value::Int(qid as i64)],
                )?;
            }
            Ok(())
        }

        fn select_frontier(&mut self, db: &mut Database, _k: u64) -> Result<u64> {
            Ok(db
                .execute(
                    "UPDATE BR SET f = 2 FROM BRActive \
                     WHERE BR.qid = BRActive.qid AND BRActive.grew = 1 AND BR.f = 0",
                )?
                .rows_affected)
        }

        fn expand_and_merge(&mut self, db: &mut Database, _k: u64) -> Result<u64> {
            let n = db
                .execute(
                    "MERGE INTO BR AS target USING ( \
                       SELECT DISTINCT q.qid AS qid, e.tid AS nid FROM BR q, TEdges e \
                       WHERE q.nid = e.fid AND q.f = 2 \
                     ) AS source (qid, nid) \
                     ON source.qid = target.qid AND source.nid = target.nid \
                     WHEN NOT MATCHED THEN INSERT (qid, nid, f) VALUES (source.qid, source.nid, 0)",
                )?
                .rows_affected;
            db.execute("UPDATE BR SET f = 1 WHERE f = 2")?;
            Ok(n)
        }

        fn active_queries(&mut self, db: &mut Database, _k: u64) -> Result<u64> {
            // A qid stays active while its last expansion discovered nodes.
            db.execute("UPDATE BRActive SET grew = 0")?;
            db.execute(
                "UPDATE BRActive SET grew = 1 \
                 FROM (SELECT qid, COUNT(*) AS c FROM BR WHERE f = 0 GROUP BY qid) src \
                 WHERE BRActive.qid = src.qid AND src.c > 0",
            )?;
            db.query("SELECT COUNT(*) FROM BRActive WHERE grew = 1")?
                .scalar_i64()
                .map(|n| n as u64)
                .ok_or_else(|| fempath_sql::SqlError::Eval("COUNT returned no row".into()))
        }
    }

    #[test]
    fn batch_fem_bfs_reaches_each_component() {
        let g = fempath_graph::Graph::from_undirected_edges(
            7,
            vec![(0, 1, 1), (1, 2, 1), (2, 3, 1), (4, 5, 1)],
        );
        let mut db = Database::in_memory(128);
        fempath_graph::load_graph(&mut db, &g, &fempath_graph::LoadOptions::default()).unwrap();
        // Three searches in one batch: the big component, the 4–5 pair, and
        // the isolated node 6.
        let mut search = BatchReach {
            sources: vec![0, 4, 6],
        };
        run_batch_fem(&mut db, &mut search).unwrap();
        let per_qid = db
            .query("SELECT qid, COUNT(*) FROM BR GROUP BY qid ORDER BY qid")
            .unwrap();
        let counts: Vec<i64> = per_qid
            .rows
            .iter()
            .map(|r| r[1].as_i64().unwrap())
            .collect();
        assert_eq!(counts, vec![4, 2, 1]);
    }
}
