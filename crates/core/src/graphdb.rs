//! [`GraphDb`]: a relational database instance holding one graph.
//!
//! Owns the `fempath_sql::Database`, loads `TNodes`/`TEdges` with the
//! configured index strategy, and manages the per-query working tables
//! (`TVisited`, `TExp`) and the SegTable index (`TOutSegs`/`TInSegs`).

use crate::landmarks::{LandmarkSelection, LandmarkStats};
use crate::segtable::SegTableStats;
use fempath_graph::{load_graph, load_graph_bulk, BulkLoadOptions, Graph, IndexKind, LoadOptions};
use fempath_sql::{Database, DbSnapshot, Dialect, Result, SqlError};

/// The "infinity" distance constant (the paper's `Max` in Listing 4(2)).
/// Large enough that `INF + any path length` never overflows `i64`.
pub const INF: i64 = 4_000_000_000_000_000;

/// Sentinel for "no predecessor/successor".
pub const NO_NODE: i64 = -1;

/// Row-tier edge insert template ([`GraphDb::insert_edge`]). Module-level
/// const so the femcheck corpus ([`GraphDb::analyze_all_statements`])
/// analyzes exactly the statement the mutation path executes.
pub(crate) const INSERT_EDGE_SQL: &str = "INSERT INTO TEdges (fid, tid, cost) VALUES (?, ?, ?)";

/// Row-tier edge delete template ([`GraphDb::delete_edge`]): removes every
/// parallel `(fid, tid)` edge in one direction.
pub(crate) const DELETE_EDGE_SQL: &str = "DELETE FROM TEdges WHERE fid = ? AND tid = ?";

/// Configuration for a [`GraphDb`].
#[derive(Debug, Clone)]
pub struct GraphDbOptions {
    /// Buffer-pool capacity in 8 KiB pages.
    pub buffer_pages: usize,
    /// Store pages in a temporary file (disk-resident, the experiments'
    /// default) or in memory.
    pub on_disk: bool,
    /// SQL dialect (DBMS-x or PostgreSQL).
    pub dialect: Dialect,
    /// Index strategy for `TEdges(fid)` (and the SegTable) — Fig 8(c).
    pub edges_index: IndexKind,
    /// Index strategy for `TVisited(nid)` — Fig 8(c).
    pub visited_index: IndexKind,
    /// Load `TNodes`/`TEdges` through the bottom-up bulk loaders instead of
    /// per-row SQL INSERT (DESIGN.md §14). Same catalog end-state, so plans
    /// and query results are identical; only the build path changes.
    pub bulk_load: bool,
    /// Store `TEdges` as delta-compressed adjacency segments instead of
    /// heap/clustered rows (DESIGN.md §14). Implies `bulk_load` (segments
    /// can only be bulk-built) and makes `TEdges` read-only; `edges_index`
    /// is ignored for the edge table because the segment tree *is* the
    /// fid access path.
    pub segmented_edges: bool,
}

impl Default for GraphDbOptions {
    fn default() -> Self {
        GraphDbOptions {
            buffer_pages: 4096, // 32 MiB
            on_disk: false,
            dialect: Dialect::DBMS_X,
            edges_index: IndexKind::Clustered,
            visited_index: IndexKind::Secondary,
            bulk_load: false,
            segmented_edges: false,
        }
    }
}

/// Info about a built SegTable.
#[derive(Debug, Clone, Copy)]
pub struct SegTableInfo {
    /// Index threshold `lthd` (§4.2).
    pub lthd: i64,
    /// Number of rows in `TOutSegs` (the paper's "encoding number").
    pub segments: u64,
}

/// Info about a built landmark distance index (DESIGN.md §12).
#[derive(Debug, Clone, Copy)]
pub struct LandmarkInfo {
    /// Number of landmarks whose trees are stored.
    pub k: usize,
    /// `(lm, nid)` rows in `TLandmarks`.
    pub pairs: u64,
}

/// A relational database with one graph loaded.
pub struct GraphDb {
    pub db: Database,
    num_nodes: usize,
    num_arcs: usize,
    min_weight: u32,
    visited_index: IndexKind,
    edges_index: IndexKind,
    segtable: Option<SegTableInfo>,
    landmarks: Option<LandmarkInfo>,
    /// A landmark index disabled by an edge mutation (stale bounds would
    /// break admissibility — DESIGN.md §16). Remembered so
    /// [`GraphDb::rebuild_landmarks`] knows the previous `k`.
    stale_landmarks: Option<LandmarkInfo>,
}

impl GraphDb {
    /// Builds a database with `opts` and loads `graph`.
    pub fn new(graph: &Graph, opts: &GraphDbOptions) -> Result<GraphDb> {
        let db = if opts.on_disk {
            Database::on_temp_file(opts.buffer_pages)?
        } else {
            Database::in_memory(opts.buffer_pages)
        };
        let mut db = db.with_dialect(opts.dialect);
        if opts.bulk_load || opts.segmented_edges {
            load_graph_bulk(
                &mut db,
                graph,
                &BulkLoadOptions {
                    edges_index: opts.edges_index,
                    with_nodes: true,
                    segmented: opts.segmented_edges,
                },
            )?;
        } else {
            load_graph(
                &mut db,
                graph,
                &LoadOptions {
                    edges_index: opts.edges_index,
                    with_nodes: true,
                    batch_size: 256,
                },
            )?;
        }
        Ok(GraphDb {
            db,
            num_nodes: graph.num_nodes(),
            num_arcs: graph.num_arcs(),
            min_weight: graph.min_weight(),
            visited_index: opts.visited_index,
            edges_index: opts.edges_index,
            segtable: None,
            landmarks: None,
            stale_landmarks: None,
        })
    }

    /// In-memory database with default options.
    pub fn in_memory(graph: &Graph) -> Result<GraphDb> {
        GraphDb::new(graph, &GraphDbOptions::default())
    }

    /// Disk-resident database with the given buffer budget.
    pub fn on_temp_file(graph: &Graph, buffer_pages: usize) -> Result<GraphDb> {
        GraphDb::new(
            graph,
            &GraphDbOptions {
                buffer_pages,
                on_disk: true,
                ..Default::default()
            },
        )
    }

    /// Number of nodes in the loaded graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed arcs in the loaded graph.
    pub fn num_arcs(&self) -> usize {
        self.num_arcs
    }

    /// Minimal edge weight `w_min` (bounds in Theorems 2/3).
    pub fn min_weight(&self) -> u32 {
        self.min_weight
    }

    /// Index strategy used for `TEdges` / SegTable.
    pub fn edges_index(&self) -> IndexKind {
        self.edges_index
    }

    /// The SegTable built for this database, if any.
    pub fn segtable(&self) -> Option<SegTableInfo> {
        self.segtable
    }

    pub(crate) fn set_segtable(&mut self, info: SegTableInfo) {
        self.segtable = Some(info);
    }

    /// Builds (or rebuilds) the SegTable index with threshold `lthd` —
    /// delegates to [`crate::segtable::build_segtable`].
    pub fn build_segtable(&mut self, lthd: i64) -> Result<SegTableStats> {
        crate::segtable::build_segtable(self, lthd)
    }

    /// The landmark index built for this database, if any.
    pub fn landmarks(&self) -> Option<LandmarkInfo> {
        self.landmarks
    }

    pub(crate) fn set_landmarks(&mut self, info: LandmarkInfo) {
        self.landmarks = Some(info);
        self.stale_landmarks = None;
    }

    /// Builds (or rebuilds) a `k`-landmark distance index with the default
    /// degree-and-coverage selection — delegates to
    /// [`crate::landmarks::build_landmark_index`]. Once built, the DJ/BDJ
    /// family seeds its Theorem-1 pruning bound from the index and
    /// [`crate::landmarks::exact_path`] answers covered pairs without FEM;
    /// build it before [`GraphDb::freeze`] to serve it concurrently.
    pub fn build_landmarks(&mut self, k: usize) -> Result<LandmarkStats> {
        crate::landmarks::build_landmark_index(self, k, LandmarkSelection::default())
    }

    /// [`GraphDb::build_landmarks`] with an explicit selection policy.
    pub fn build_landmarks_with(
        &mut self,
        k: usize,
        selection: LandmarkSelection,
    ) -> Result<LandmarkStats> {
        crate::landmarks::build_landmark_index(self, k, selection)
    }

    /// Monotone graph-content version. Starts at 0 and is bumped by every
    /// [`GraphDb::insert_edge`] / [`GraphDb::delete_edge`]; frozen into
    /// [`GraphSnapshot::graph_version`]. Result caches key on it so a
    /// mutation invalidates exactly the entries computed before it
    /// (DESIGN.md §16). Prepared plans are *not* invalidated — the schema
    /// never changes, only row content.
    pub fn graph_version(&self) -> u64 {
        self.db.data_version()
    }

    /// True when `TEdges` lives in the segment-compressed tier, where
    /// mutations go through the row-store delta overlay.
    fn edges_segmented(&self) -> bool {
        self.db
            .catalog()
            .table("TEdges")
            .is_ok_and(|t| t.is_segmented())
    }

    /// Disables the landmark index after a mutation: its distances
    /// describe the pre-mutation graph, and an edge *delete* can increase
    /// true distances, so Theorem-1 "upper" bounds and
    /// [`crate::landmarks::exact_path`] answers could both understate —
    /// admissibility would be violated. Disabled, not rebuilt: the gate
    /// is O(1) and [`GraphDb::rebuild_landmarks`] restores the fast path
    /// when the caller chooses to pay for it.
    fn invalidate_landmarks(&mut self) {
        if let Some(info) = self.landmarks.take() {
            self.stale_landmarks = Some(info);
        }
    }

    /// Rebuilds the landmark index disabled by an edge mutation (same `k`
    /// as before), re-enabling the landmark fast path and Theorem-1 bound
    /// seeding. Errors when no landmark index was ever built. Intended
    /// for the primary [`GraphDb`] (it issues DDL internally, which
    /// frozen-snapshot sessions should never do).
    pub fn rebuild_landmarks(&mut self) -> Result<LandmarkStats> {
        let info = self
            .landmarks
            .or(self.stale_landmarks)
            .ok_or_else(|| SqlError::Eval("no landmark index to rebuild".into()))?;
        let stats = self.build_landmarks(info.k)?;
        self.stale_landmarks = None;
        Ok(stats)
    }

    /// Inserts an undirected edge `{u, v}` with weight `w`, storing both
    /// directed arcs (one when `u == v`) to match the paper's symmetric
    /// `TEdges` layout. Works on both storage tiers: row-tier tables take
    /// the SQL INSERT directly, segmented tables route it into their
    /// delta overlay. Bumps [`GraphDb::graph_version`] and disables any
    /// landmark index (see [`GraphDb::rebuild_landmarks`]). Returns the
    /// number of arcs added.
    pub fn insert_edge(&mut self, u: i64, v: i64, w: i64) -> Result<u64> {
        use fempath_storage::Value;
        self.check_node(u)?;
        self.check_node(v)?;
        if w <= 0 {
            return Err(SqlError::Eval(format!(
                "edge weight must be positive, got {w}"
            )));
        }
        let mut added = self
            .db
            .execute_params(
                INSERT_EDGE_SQL,
                &[Value::Int(u), Value::Int(v), Value::Int(w)],
            )?
            .rows_affected;
        if u != v {
            added += self
                .db
                .execute_params(
                    INSERT_EDGE_SQL,
                    &[Value::Int(v), Value::Int(u), Value::Int(w)],
                )?
                .rows_affected;
        }
        self.num_arcs += added as usize;
        self.min_weight = self.min_weight.min(w as u32);
        self.db.bump_data_version();
        self.invalidate_landmarks();
        Ok(added)
    }

    /// Deletes the undirected edge `{u, v}`: every parallel arc in both
    /// directions (row tier via SQL DELETE, segmented tier via the delta
    /// overlay's tombstones). Bumps [`GraphDb::graph_version`] and
    /// disables any landmark index even when nothing matched `w_min` —
    /// `min_weight` is left alone, which is conservative and keeps the
    /// Theorem 2/3 bounds sound (the true minimum can only grow).
    /// Returns the number of arcs removed (0 when the edge was absent).
    pub fn delete_edge(&mut self, u: i64, v: i64) -> Result<u64> {
        use fempath_storage::Value;
        self.check_node(u)?;
        self.check_node(v)?;
        let removed = if self.edges_segmented() {
            let mut n = self.db.delta_delete_edge("TEdges", u, v)?;
            if u != v {
                n += self.db.delta_delete_edge("TEdges", v, u)?;
            }
            n
        } else {
            let mut n = self
                .db
                .execute_params(DELETE_EDGE_SQL, &[Value::Int(u), Value::Int(v)])?
                .rows_affected;
            if u != v {
                n += self
                    .db
                    .execute_params(DELETE_EDGE_SQL, &[Value::Int(v), Value::Int(u)])?
                    .rows_affected;
            }
            n
        };
        self.num_arcs -= removed as usize;
        self.db.bump_data_version();
        self.invalidate_landmarks();
        Ok(removed)
    }

    /// Validates a node id.
    pub fn check_node(&self, v: i64) -> Result<()> {
        if v < 0 || v as usize >= self.num_nodes {
            return Err(SqlError::Eval(format!(
                "node {v} out of range (graph has {} nodes)",
                self.num_nodes
            )));
        }
        Ok(())
    }

    /// (Re)creates the `TVisited` working table with the configured index
    /// strategy. Called at the start of every path query.
    ///
    /// When the table already exists (any query after the first) it is
    /// TRUNCATEd instead of dropped and re-created: TRUNCATE is not DDL,
    /// so the catalog version — and with it every cached physical plan —
    /// stays valid across queries (DESIGN.md §9).
    pub fn reset_visited(&mut self) -> Result<()> {
        if self.db.has_table("TVisited") {
            self.db.execute("TRUNCATE TABLE TVisited")?;
            return Ok(());
        }
        self.db.execute(
            "CREATE TABLE TVisited (nid INT, d2s INT, p2s INT, f INT, d2t INT, p2t INT, b INT)",
        )?;
        match self.visited_index {
            IndexKind::NoIndex => {}
            IndexKind::Secondary => {
                self.db
                    .execute("CREATE UNIQUE INDEX idx_tvisited_nid ON TVisited(nid)")?;
            }
            IndexKind::Clustered => {
                self.db
                    .execute("CREATE UNIQUE CLUSTERED INDEX idx_tvisited_nid ON TVisited(nid)")?;
            }
        }
        Ok(())
    }

    /// (Re)creates the `TExp` temp table used by the TSQL / no-MERGE
    /// expansion paths (TRUNCATE when it already exists, like
    /// [`GraphDb::reset_visited`]).
    pub fn reset_exp(&mut self) -> Result<()> {
        if self.db.has_table("TExp") {
            self.db.execute("TRUNCATE TABLE TExp")?;
            return Ok(());
        }
        self.db
            .execute("CREATE TABLE TExp (nid INT, p2s INT, cost INT)")?;
        Ok(())
    }

    /// (Re)creates the batched working tables `TBVisited` and `TBounds`
    /// (DESIGN.md §8). `TBVisited` is the per-query visited-node table with
    /// a leading `qid` column; `TBounds` carries one row of client scalars
    /// (`lf`, `lb`, `nf`, `nb`, `minCost`, `bound`, `done`) per in-flight
    /// query — `bound` is the landmark-seeded Theorem-1 upper bound
    /// (DESIGN.md §12), kept apart from the discovered `mincost` that the
    /// fused stats statement overwrites every iteration.
    /// Called at the start of every batch query.
    /// Like [`GraphDb::reset_visited`], an existing pair of batch tables
    /// is TRUNCATEd so cached plans survive across batches.
    pub fn reset_batch_tables(&mut self) -> Result<()> {
        if self.db.has_table("TBVisited") && self.db.has_table("TBounds") {
            self.db.execute("TRUNCATE TABLE TBVisited")?;
            self.db.execute("TRUNCATE TABLE TBounds")?;
            return Ok(());
        }
        self.db.execute("DROP TABLE IF EXISTS TBVisited")?;
        self.db.execute("DROP TABLE IF EXISTS TBounds")?;
        self.db.execute(
            "CREATE TABLE TBVisited (qid INT, nid INT, d2s INT, p2s INT, f INT, \
             d2t INT, p2t INT, b INT)",
        )?;
        match self.visited_index {
            IndexKind::NoIndex => {}
            IndexKind::Secondary => {
                self.db
                    .execute("CREATE UNIQUE INDEX idx_tbvisited ON TBVisited(qid, nid)")?;
            }
            IndexKind::Clustered => {
                self.db.execute(
                    "CREATE UNIQUE CLUSTERED INDEX idx_tbvisited ON TBVisited(qid, nid)",
                )?;
            }
        }
        self.db.execute(
            "CREATE TABLE TBounds (qid INT, s INT, t INT, lf INT, lb INT, \
             nf INT, nb INT, mincost INT, bound INT, done INT)",
        )?;
        self.db
            .execute("CREATE UNIQUE CLUSTERED INDEX idx_tbounds ON TBounds(qid)")?;
        Ok(())
    }

    /// (Re)creates the `TBExp` temp table used by the batched TSQL /
    /// no-MERGE expansion paths (the qid-carrying analogue of `TExp`).
    pub fn reset_batch_exp(&mut self) -> Result<()> {
        if self.db.has_table("TBExp") {
            self.db.execute("TRUNCATE TABLE TBExp")?;
            return Ok(());
        }
        self.db
            .execute("CREATE TABLE TBExp (qid INT, nid INT, p2s INT, cost INT)")?;
        Ok(())
    }

    /// True when the expansion must avoid MERGE (PostgreSQL dialect).
    pub fn merge_supported(&self) -> bool {
        self.db.dialect().supports_merge
    }

    /// The steady-state reset statements (every table already exists after
    /// the first query, so resets are TRUNCATEs — DESIGN.md §9).
    fn reset_statement_corpus(&self) -> Vec<crate::sqlgen::AnnotatedSql> {
        use crate::sqlgen::AnnotatedSql;
        vec![
            AnnotatedSql::cold("rst/truncate_visited", "TRUNCATE TABLE TVisited"),
            AnnotatedSql::cold("rst/truncate_exp", "TRUNCATE TABLE TExp"),
            AnnotatedSql::cold("rst/truncate_tbvisited", "TRUNCATE TABLE TBVisited"),
            AnnotatedSql::cold("rst/truncate_tbounds", "TRUNCATE TABLE TBounds"),
            AnnotatedSql::cold("rst/truncate_tbexp", "TRUNCATE TABLE TBExp"),
        ]
    }

    /// The edge-mutation statements ([`GraphDb::insert_edge`] /
    /// [`GraphDb::delete_edge`], row tier) — same consts the mutation
    /// path executes, so femcheck pins exactly what runs.
    fn mutation_statement_corpus(&self) -> Vec<crate::sqlgen::AnnotatedSql> {
        use crate::sqlgen::AnnotatedSql;
        let mut out = vec![AnnotatedSql::cold("mut/insert_edge", INSERT_EDGE_SQL)];
        if !self.edges_segmented() {
            // The segmented tier deletes through the delta overlay, not
            // SQL (DELETE is rejected on segment-compressed storage).
            out.push(AnnotatedSql::cold("mut/delete_edge", DELETE_EDGE_SQL));
        }
        out
    }

    /// Statically analyzes every statement the finders (DJ/BDJ/BSDJ/BBFS/
    /// BSEG and the batched variants), the landmark index, the SegTable
    /// build, and the working-table resets can issue — under **both**
    /// supported dialects — and returns one `(name, report)` pair per
    /// statement. Names are `"<dialect>::<corpus path>"`, e.g.
    /// `"DBMS-X::fwd/edges/nsql/merge_from_exp"`.
    ///
    /// Working tables are (re)created first through the idempotent resets.
    /// Corpora that reference optional structures are gated on their
    /// tables existing: the SegTable-sourced finder statements and the
    /// build corpus need `TOutSegs`/`TInSegs`, the landmark corpus needs
    /// `TLandmarks`. The build's own `TSegV`/`TSegExp` (dropped after a
    /// real build) are resurrected for the duration of the walk.
    ///
    /// This is the femcheck corpus gate: `tests/analyze_corpus.rs` pins
    /// every returned report to zero diagnostics.
    pub fn analyze_all_statements(&mut self) -> Result<Vec<(String, fempath_sql::Report)>> {
        use crate::sqlgen::{AnnotatedSql, BatchSqlGen, Dir, EdgeSource, SqlGen};
        use crate::stats::SqlStyle;

        self.reset_visited()?;
        self.reset_exp()?;
        self.reset_batch_tables()?;
        self.reset_batch_exp()?;
        let has_segs = self.db.has_table("TOutSegs") && self.db.has_table("TInSegs");
        let has_lms = self.db.has_table("TLandmarks");
        let temp_segv = has_segs && !self.db.has_table("TSegV");
        if temp_segv {
            crate::segtable::create_working_tables(&mut self.db)?;
        }

        let mut out = Vec::new();
        for dialect in [Dialect::DBMS_X, Dialect::POSTGRES] {
            let merge = dialect.supports_merge;
            let mut corpus: Vec<AnnotatedSql> = self.reset_statement_corpus();
            corpus.extend(self.mutation_statement_corpus());
            for dir in [Dir::Fwd, Dir::Bwd] {
                for style in [SqlStyle::New, SqlStyle::Traditional] {
                    corpus
                        .extend(SqlGen::new(dir, EdgeSource::Edges, style).annotated_corpus(merge));
                    if has_segs {
                        corpus.extend(
                            SqlGen::new(dir, EdgeSource::SegTable, style).annotated_corpus(merge),
                        );
                    }
                    for prune in [false, true] {
                        corpus.extend(
                            BatchSqlGen::new(dir, EdgeSource::Edges, style, prune)
                                .annotated_corpus(merge),
                        );
                        if has_segs {
                            corpus.extend(
                                BatchSqlGen::new(dir, EdgeSource::SegTable, style, prune)
                                    .annotated_corpus(merge),
                            );
                        }
                    }
                }
            }
            corpus.extend(crate::sqlgen::free_statement_corpus(has_lms));
            if has_lms {
                corpus.extend(crate::landmarks::statement_corpus());
            }
            if has_segs {
                corpus.extend(crate::segtable::build_statement_corpus(
                    SqlStyle::New,
                    merge,
                ));
                corpus.extend(crate::segtable::build_statement_corpus(
                    SqlStyle::Traditional,
                    false,
                ));
            }
            for a in corpus {
                let opts = fempath_sql::AnalyzeOptions {
                    hot_path: a.hot_path,
                };
                let report =
                    fempath_sql::analyze::analyze_sql(self.db.catalog(), dialect, &a.sql, &opts)?;
                out.push((format!("{}::{}", dialect.name, a.name), report));
            }
        }

        if temp_segv {
            self.db.execute("DROP TABLE TSegV")?;
            self.db.execute("DROP TABLE TSegExp")?;
        }
        Ok(out)
    }

    /// Switches the SQL engine between the vectorized (default) and the
    /// row-at-a-time plan executor — the experiments use this to record
    /// before/after numbers on identical plans (DESIGN.md §11).
    pub fn set_exec_mode(&mut self, mode: fempath_sql::ExecMode) {
        self.db.set_exec_mode(mode);
    }

    /// Freezes this database into an immutable [`GraphSnapshot`] that many
    /// worker sessions can share (DESIGN.md §10).
    ///
    /// Every working table ([`GraphDb::reset_visited`] and friends) is
    /// created *before* the freeze, so sessions never issue DDL: the
    /// catalog version is identical across sessions and one shared plan
    /// cache serves all of them. Build optional static structures — the
    /// SegTable, landmark tables — before calling this so they land in
    /// the shared read-only image.
    pub fn freeze(mut self) -> Result<GraphSnapshot> {
        self.reset_visited()?;
        self.reset_exp()?;
        self.reset_batch_tables()?;
        self.reset_batch_exp()?;
        Ok(GraphSnapshot {
            num_nodes: self.num_nodes,
            num_arcs: self.num_arcs,
            min_weight: self.min_weight,
            visited_index: self.visited_index,
            edges_index: self.edges_index,
            segtable: self.segtable,
            landmarks: self.landmarks,
            snap: self.db.freeze()?,
        })
    }
}

/// An immutable, `Arc`-shareable image of a [`GraphDb`]: the frozen page
/// image holding `TNodes`/`TEdges` (and any SegTable / landmark tables),
/// the catalog template, and a plan cache shared by every session.
///
/// [`GraphSnapshot::session`] stamps out independent [`GraphDb`] sessions:
/// reads hit the shared pages, writes (the per-query working tables
/// `TVisited`/`TExp`/`TBVisited`/`TBounds`/`TBExp`) land in each session's
/// private copy-on-write overlay. `Send + Sync`, so sessions can be
/// created from any thread — [`crate::PathService`] builds its worker
/// pool on exactly this.
pub struct GraphSnapshot {
    snap: DbSnapshot,
    num_nodes: usize,
    num_arcs: usize,
    min_weight: u32,
    visited_index: IndexKind,
    edges_index: IndexKind,
    segtable: Option<SegTableInfo>,
    landmarks: Option<LandmarkInfo>,
}

impl GraphSnapshot {
    /// A new private session over the shared graph image.
    pub fn session(&self) -> GraphDb {
        GraphDb {
            db: self.snap.session(),
            num_nodes: self.num_nodes,
            num_arcs: self.num_arcs,
            min_weight: self.min_weight,
            visited_index: self.visited_index,
            edges_index: self.edges_index,
            segtable: self.segtable,
            landmarks: self.landmarks,
            stale_landmarks: None,
        }
    }

    /// The graph-content version frozen into this snapshot (see
    /// [`GraphDb::graph_version`]). Sessions start from it; a session
    /// that replays later mutations advances its private copy in step.
    pub fn graph_version(&self) -> u64 {
        self.snap.data_version()
    }

    /// Number of nodes in the frozen graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed arcs in the frozen graph.
    pub fn num_arcs(&self) -> usize {
        self.num_arcs
    }

    /// Pages in the shared read-only image.
    pub fn base_pages(&self) -> u64 {
        self.snap.base_pages()
    }

    /// The SegTable frozen into the image, if one was built.
    pub fn segtable(&self) -> Option<SegTableInfo> {
        self.segtable
    }

    /// The landmark index frozen into the image, if one was built.
    pub fn landmarks(&self) -> Option<LandmarkInfo> {
        self.landmarks
    }

    /// Plans currently in the cross-session shared cache (diagnostics).
    pub fn shared_plan_count(&self) -> usize {
        self.snap.shared_plan_count()
    }

    /// Consult/publish counters of the cross-session shared plan cache
    /// (DESIGN.md §13) — `publishes` converges on the distinct statement
    /// count however many workers warm up concurrently.
    pub fn shared_plan_stats(&self) -> fempath_sql::SharedPlanCacheStats {
        self.snap.shared_plan_stats()
    }
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<GraphSnapshot>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use fempath_graph::generate;

    #[test]
    fn loads_graph_tables() {
        let g = generate::grid(4, 4, 1..=10, 1);
        let gdb = GraphDb::in_memory(&g).unwrap();
        assert_eq!(gdb.num_nodes(), 16);
        assert_eq!(gdb.db.table_len("TEdges").unwrap(), g.num_arcs() as u64);
        assert_eq!(gdb.db.table_len("TNodes").unwrap(), 16);
    }

    #[test]
    fn reset_visited_is_idempotent() {
        let g = generate::grid(3, 3, 1..=10, 1);
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        gdb.reset_visited().unwrap();
        gdb.db
            .execute("INSERT INTO TVisited VALUES (0, 0, 0, 0, 0, 0, 0)")
            .unwrap();
        gdb.reset_visited().unwrap();
        assert_eq!(gdb.db.table_len("TVisited").unwrap(), 0);
    }

    #[test]
    fn reset_batch_tables_is_idempotent() {
        let g = generate::grid(3, 3, 1..=10, 1);
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        gdb.reset_batch_tables().unwrap();
        gdb.db
            .execute("INSERT INTO TBVisited VALUES (0, 1, 0, -1, 0, 0, -1, 0)")
            .unwrap();
        gdb.db
            .execute("INSERT INTO TBounds VALUES (0, 1, 2, 0, 0, 1, 1, 0, 0, 0)")
            .unwrap();
        gdb.reset_batch_tables().unwrap();
        assert_eq!(gdb.db.table_len("TBVisited").unwrap(), 0);
        assert_eq!(gdb.db.table_len("TBounds").unwrap(), 0);
    }

    #[test]
    fn edge_mutations_bump_version_and_gate_landmarks() {
        let g = generate::grid(4, 4, 1..=10, 1);
        for segmented in [false, true] {
            let mut gdb = GraphDb::new(
                &g,
                &GraphDbOptions {
                    segmented_edges: segmented,
                    ..Default::default()
                },
            )
            .unwrap();
            gdb.build_landmarks(2).unwrap();
            assert!(gdb.landmarks().is_some());
            let arcs = gdb.num_arcs();
            let v0 = gdb.graph_version();

            // Insert: two arcs (symmetric), version bump, landmarks off.
            assert_eq!(gdb.insert_edge(0, 15, 3).unwrap(), 2);
            assert_eq!(gdb.num_arcs(), arcs + 2);
            assert_eq!(gdb.graph_version(), v0 + 1);
            assert!(gdb.landmarks().is_none(), "stale landmarks must be off");
            let rs = gdb
                .db
                .query("SELECT cost FROM TEdges WHERE fid = 0 AND tid = 15")
                .unwrap();
            assert_eq!(rs.len(), 1);

            // Delete removes both arcs and bumps again.
            assert_eq!(gdb.delete_edge(15, 0).unwrap(), 2);
            assert_eq!(gdb.num_arcs(), arcs);
            assert_eq!(gdb.graph_version(), v0 + 2);
            // Deleting an absent edge still bumps (cheap, conservative).
            assert_eq!(gdb.delete_edge(0, 15).unwrap(), 0);

            // Rebuild restores the fast path.
            gdb.rebuild_landmarks().unwrap();
            assert!(gdb.landmarks().is_some());

            // Bad arguments are rejected.
            assert!(gdb.insert_edge(0, 99, 1).is_err());
            assert!(gdb.insert_edge(0, 1, 0).is_err());

            // The version survives freeze.
            let snap = gdb.freeze().unwrap();
            assert_eq!(snap.graph_version(), v0 + 3);
            let mut session = snap.session();
            assert_eq!(session.graph_version(), v0 + 3);
            // Sessions can replay mutations into their private overlay.
            session.insert_edge(1, 2, 7).unwrap();
            assert_eq!(session.graph_version(), v0 + 4);
        }
    }

    #[test]
    fn check_node_bounds() {
        let g = generate::grid(2, 2, 1..=10, 1);
        let gdb = GraphDb::in_memory(&g).unwrap();
        assert!(gdb.check_node(0).is_ok());
        assert!(gdb.check_node(3).is_ok());
        assert!(gdb.check_node(4).is_err());
        assert!(gdb.check_node(-1).is_err());
    }

    #[test]
    fn visited_index_strategies() {
        let g = generate::grid(3, 3, 1..=10, 1);
        for kind in [
            IndexKind::NoIndex,
            IndexKind::Secondary,
            IndexKind::Clustered,
        ] {
            let mut gdb = GraphDb::new(
                &g,
                &GraphDbOptions {
                    visited_index: kind,
                    ..Default::default()
                },
            )
            .unwrap();
            gdb.reset_visited().unwrap();
            gdb.db
                .execute("INSERT INTO TVisited VALUES (5, 0, -1, 0, 0, -1, 0)")
                .unwrap();
            let rs = gdb
                .db
                .query("SELECT d2s FROM TVisited WHERE nid = 5")
                .unwrap();
            assert_eq!(rs.len(), 1);
        }
    }
}
