//! Sharded, version-keyed shortest-path result cache (DESIGN.md §16).
//!
//! The serving tier's answer to skewed traffic: real path workloads
//! concentrate on a small set of hot `(s, t)` pairs, so [`PathService`]
//! consults a [`ResultCache`] before the landmark fast path and the FEM
//! finders. Entries are keyed by `(s, t)` and stamped with the
//! [`GraphDb::graph_version`] they were computed at — the same
//! version-epoch trick the plan cache plays with the catalog version
//! (DESIGN.md §9): an edge mutation bumps the graph version, and every
//! older entry becomes unreachable *by construction* rather than by an
//! eager invalidation sweep. `Option<Path>` is stored, so "unreachable"
//! verdicts are cached too (the negative cache) — a miss on an
//! unreachable hot pair would otherwise pay the full bidirectional
//! search every time, the most expensive query shape there is.
//!
//! Structure mirrors DESIGN.md §13's `SharedPlanCache`: N shards picked
//! by key hash, each protected by its own mutex so concurrent clients
//! rarely contend (the crate forbids `unsafe`, so shards use plain
//! mutexes rather than RCU pointers; the critical sections are a map
//! probe or a small LRU update). Each shard owns a byte budget; inserts
//! evict least-recently-used entries until the new entry fits.
//!
//! [`PathService`]: crate::service::PathService
//! [`GraphDb::graph_version`]: crate::graphdb::GraphDb::graph_version

use crate::algo::Path;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independent shards. Like `SharedPlanCache`, a small
/// power of two: enough to keep worker threads off each other's locks,
/// small enough that per-shard budgets stay meaningful.
const SHARDS: usize = 16;

/// Fixed per-entry overhead charged against the byte budget on top of
/// the path's node storage: key, version stamp, LRU tick, map slot.
const ENTRY_OVERHEAD: usize = 96;

/// One cached verdict: the path (or `None` for "unreachable") computed
/// at `version`.
struct Entry {
    version: u64,
    path: Option<Path>,
    /// Budget charge, computed once at insert.
    bytes: usize,
    /// Shard-local LRU clock value at last touch.
    last_used: u64,
}

/// One shard: a keyed map plus its byte accounting and LRU clock.
#[derive(Default)]
struct Shard {
    map: HashMap<(i64, i64), Entry>,
    bytes: usize,
    tick: u64,
}

/// Counters of one [`ResultCache`] (cumulative since creation),
/// surfaced through `ServiceStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache at the current graph version.
    pub hits: u64,
    /// Lookups that found nothing usable (includes stale hits).
    pub misses: u64,
    /// Entries written.
    pub inserts: u64,
    /// Entries evicted by the byte budget.
    pub evictions: u64,
    /// Lookups that found an entry from an older graph version (counted
    /// within `misses`; the stale entry is dropped on sight).
    pub stale: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Bytes currently charged against the budget.
    pub bytes: u64,
}

/// Sharded LRU cache of `(s, t) → Option<Path>` verdicts keyed by graph
/// version. See the module docs for the design; `lookup` and `insert`
/// are safe to call from many threads at once.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    budget_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    stale: AtomicU64,
}

impl ResultCache {
    /// A cache bounded to roughly `budget_bytes` of path data across all
    /// shards (each shard gets an even slice; a zero budget still admits
    /// nothing because every entry charges `ENTRY_OVERHEAD`).
    pub fn new(budget_bytes: usize) -> ResultCache {
        ResultCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            budget_per_shard: budget_bytes / SHARDS,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            stale: AtomicU64::new(0),
        }
    }

    fn shard(&self, s: i64, t: i64) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        (s, t).hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Approximate budget charge of one entry.
    fn entry_bytes(path: &Option<Path>) -> usize {
        ENTRY_OVERHEAD
            + path
                .as_ref()
                .map_or(0, |p| p.nodes.len() * std::mem::size_of::<i64>())
    }

    /// The cached verdict for `(s, t)` computed at graph version
    /// `version`, or `None` on a miss. `Some(None)` is a *hit* on a
    /// cached "unreachable" verdict — the negative cache. An entry
    /// stamped with a different version is dropped on sight and counts
    /// as both `stale` and a miss: post-mutation queries can never see
    /// pre-mutation results, including negative ones.
    pub fn lookup(&self, s: i64, t: i64, version: u64) -> Option<Option<Path>> {
        let mut shard = self.shard(s, t).lock().unwrap_or_else(|e| e.into_inner());
        shard.tick += 1;
        let tick = shard.tick;
        let stale = match shard.map.get_mut(&(s, t)) {
            Some(e) if e.version == version => {
                e.last_used = tick;
                let out = e.path.clone();
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(out);
            }
            Some(_) => true,
            None => false,
        };
        if stale {
            if let Some(e) = shard.map.remove(&(s, t)) {
                shard.bytes -= e.bytes;
            }
            drop(shard);
            self.stale.fetch_add(1, Ordering::Relaxed);
        } else {
            drop(shard);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Publishes the verdict for `(s, t)` computed at `version`,
    /// evicting least-recently-used entries until it fits the shard's
    /// byte budget. An entry larger than the whole shard budget is not
    /// admitted. A concurrent entry at a *newer* version is never
    /// overwritten by an older one (two workers racing across a
    /// mutation), so the cache converges on the newest verdict.
    pub fn insert(&self, s: i64, t: i64, version: u64, path: Option<Path>) {
        let bytes = Self::entry_bytes(&path);
        if bytes > self.budget_per_shard {
            return;
        }
        let mut evicted = 0u64;
        {
            let mut shard = self.shard(s, t).lock().unwrap_or_else(|e| e.into_inner());
            if shard.map.get(&(s, t)).is_some_and(|e| e.version > version) {
                return;
            }
            if let Some(old) = shard.map.remove(&(s, t)) {
                shard.bytes -= old.bytes;
            }
            while shard.bytes + bytes > self.budget_per_shard {
                // O(n) LRU victim scan: shards stay small (a few hundred
                // entries at most under realistic budgets), so a scan
                // beats maintaining an intrusive list under the lock.
                let victim = shard
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(&k, _)| k);
                let Some(victim) = victim else {
                    break;
                };
                if let Some(e) = shard.map.remove(&victim) {
                    shard.bytes -= e.bytes;
                    evicted += 1;
                }
            }
            shard.tick += 1;
            let tick = shard.tick;
            shard.bytes += bytes;
            shard.map.insert(
                (s, t),
                Entry {
                    version,
                    path,
                    bytes,
                    last_used: tick,
                },
            );
        }
        self.inserts.fetch_add(1, Ordering::Relaxed);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Cumulative counters plus current residency.
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0u64;
        let mut bytes = 0u64;
        for shard in &self.shards {
            let s = shard.lock().unwrap_or_else(|e| e.into_inner());
            entries += s.map.len() as u64;
            bytes += s.bytes as u64;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(len: usize) -> Option<Path> {
        Some(Path {
            nodes: (0..len as i64).collect(),
            length: len as i64,
        })
    }

    #[test]
    fn hit_miss_and_negative_cache() {
        let c = ResultCache::new(1 << 20);
        assert_eq!(c.lookup(1, 2, 0), None);
        c.insert(1, 2, 0, path(3));
        assert_eq!(c.lookup(1, 2, 0), Some(path(3)));
        // Negative verdicts are first-class entries.
        c.insert(5, 6, 0, None);
        assert_eq!(c.lookup(5, 6, 0), Some(None));
        let st = c.stats();
        assert_eq!(st.hits, 2);
        assert_eq!(st.misses, 1);
        assert_eq!(st.inserts, 2);
        assert_eq!(st.entries, 2);
    }

    #[test]
    fn version_mismatch_is_a_stale_miss() {
        let c = ResultCache::new(1 << 20);
        c.insert(1, 2, 0, path(3));
        c.insert(3, 4, 0, None);
        // Post-mutation lookups drop pre-mutation entries, even negative
        // ones.
        assert_eq!(c.lookup(1, 2, 1), None);
        assert_eq!(c.lookup(3, 4, 1), None);
        let st = c.stats();
        assert_eq!(st.stale, 2);
        assert_eq!(st.misses, 2);
        assert_eq!(st.entries, 0, "stale entries are dropped on sight");
        // Re-publish at the new version works.
        c.insert(1, 2, 1, path(4));
        assert_eq!(c.lookup(1, 2, 1), Some(path(4)));
    }

    #[test]
    fn newer_version_wins_the_insert_race() {
        let c = ResultCache::new(1 << 20);
        c.insert(1, 2, 5, path(3));
        // A straggler worker finishing a pre-mutation computation cannot
        // clobber the fresher verdict.
        c.insert(1, 2, 4, path(9));
        assert_eq!(c.lookup(1, 2, 5), Some(path(3)));
    }

    #[test]
    fn byte_budget_evicts_lru() {
        // One shard's budget fits only a handful of entries; hammer one
        // shard-colliding key set via identical (s, t) reuse.
        let c = ResultCache::new(SHARDS * (ENTRY_OVERHEAD + 64));
        for i in 0..64 {
            c.insert(i, i, 0, path(4));
        }
        let st = c.stats();
        assert!(st.evictions > 0, "budget must force evictions");
        assert!(
            st.bytes <= (SHARDS * (ENTRY_OVERHEAD + 64)) as u64,
            "residency exceeds budget"
        );
        // Recently-touched entries survive preferentially: touch the
        // newest and insert another colliding entry.
        let survivors: Vec<i64> = (0..64).filter(|&i| c.lookup(i, i, 0).is_some()).collect();
        assert!(!survivors.is_empty());
    }

    #[test]
    fn zero_budget_admits_nothing() {
        let c = ResultCache::new(0);
        c.insert(1, 2, 0, path(2));
        assert_eq!(c.lookup(1, 2, 0), None);
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn oversized_path_is_not_admitted() {
        let c = ResultCache::new(SHARDS * 256);
        c.insert(1, 2, 0, path(10_000));
        assert_eq!(c.stats().entries, 0);
    }
}
