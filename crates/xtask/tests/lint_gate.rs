//! Tier-1 gate: the workspace source auditor must be clean.
//!
//! Failing here means a source change introduced an undocumented `unsafe`
//! block, an uncommented atomic ordering in the concurrency hot spots, a
//! `todo!`/`dbg!` left behind, or an unwrap-budget drift in either
//! direction (see `crates/xtask/unwrap-allowlist.txt`).

#[test]
fn workspace_sources_pass_the_auditor() {
    let root = xtask::workspace_root();
    let violations = xtask::lint(&root).expect("lint walks the workspace");
    assert!(
        violations.is_empty(),
        "xtask lint found {} violation(s):\n{}",
        violations.len(),
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
