//! femcheck layer 2 — the workspace *source* auditor (DESIGN.md §15).
//!
//! Where the SQL analyzer (`fempath_sql::analyze`) checks the statements
//! the engine generates, this crate checks the engine's own source. Four
//! plain-text, line-level rules, no dependencies, no proc macros:
//!
//! 1. **safety-comment** — every `unsafe` occurrence needs a `SAFETY:`
//!    comment on the same line or within the preceding lines.
//! 2. **ordering-comment** — every `Ordering::Relaxed`/`Acquire`/
//!    `Release`/`AcqRel` in the two lock-free hot spots (`engine.rs`,
//!    `dispatch.rs`) needs an `ORDERING:` comment justifying why that
//!    ordering suffices. (`SeqCst` is exempt: it is the conservative
//!    default, not a claim that needs defending.)
//! 3. **unwrap-ratchet** — library code (`src/`, outside `#[cfg(test)]`
//!    regions) must not call `.unwrap()` / `.expect("…")` except where
//!    `unwrap-allowlist.txt` says so — and the allowlist must match
//!    reality *exactly*, so fixing an unwrap without tightening the
//!    allowlist also fails. The ratchet only goes down.
//! 4. **no-debug-macros** — `todo!(` and `dbg!(` appear nowhere, tests
//!    included.
//!
//! The rule needles are assembled at runtime from fragments so this
//! crate's own source never contains them verbatim (the auditor audits
//! itself too).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One rule violation at a file:line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line, or 0 for whole-file findings (allowlist mismatches).
    pub line: usize,
    /// Stable rule identifier, e.g. `unwrap-ratchet`.
    pub rule: &'static str,
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.file, self.rule, self.msg)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file, self.line, self.rule, self.msg
            )
        }
    }
}

/// How many lines above an `unsafe` occurrence the `SAFETY:` comment may
/// sit. Wide enough for a multi-line justification above a pair of
/// `unsafe impl`s.
const SAFETY_WINDOW: usize = 8;
/// Same for `ORDERING:` above an atomic access — wide enough for one
/// comment to cover a counter-snapshot struct literal.
const ORDERING_WINDOW: usize = 8;

/// The needles, built from fragments so they never appear verbatim in
/// this crate's own (audited) source.
struct Needles {
    unsafe_kw: String,
    safety_tag: String,
    ordering_prefixes: Vec<String>,
    ordering_tag: String,
    unwrap_call: String,
    expect_call: String,
    todo_macro: String,
    dbg_macro: String,
    cfg_test: String,
}

impl Needles {
    fn new() -> Needles {
        let bang = "!(";
        Needles {
            unsafe_kw: ["uns", "afe"].concat(),
            safety_tag: ["SAF", "ETY:"].concat(),
            ordering_prefixes: ["Relaxed", "Acquire", "Release", "AcqRel"]
                .iter()
                .map(|o| format!("{}::{o}", ["Ord", "ering"].concat()))
                .collect(),
            ordering_tag: ["ORD", "ERING:"].concat(),
            unwrap_call: [".unw", "rap()"].concat(),
            expect_call: [".exp", "ect(\""].concat(),
            todo_macro: format!("{}{bang}", ["to", "do"].concat()),
            dbg_macro: format!("{}{bang}", ["d", "bg"].concat()),
            cfg_test: format!("#[cfg({}]", ["te", "st)"].concat()),
        }
    }
}

/// `needle` occurs in `hay` delimited by non-identifier characters.
fn contains_word(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = !hay[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = after;
    }
    false
}

/// The code part of a line: everything before the first `//`. Good enough
/// for this codebase — no string literal here contains a double slash.
fn code_part(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// True when any of `lines[from.saturating_sub(window)..=from]` mentions
/// `tag` (typically inside a comment).
fn tagged_nearby(lines: &[&str], from: usize, window: usize, tag: &str) -> bool {
    let lo = from.saturating_sub(window);
    lines[lo..=from].iter().any(|l| l.contains(tag))
}

/// Parses `unwrap-allowlist.txt`: one `path count` pair per line, `#`
/// comments and blank lines ignored.
fn parse_allowlist(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let mut map = BTreeMap::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(path), Some(count), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!("allowlist line {}: expected `path count`", i + 1));
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("allowlist line {}: bad count {count}", i + 1))?;
        if map.insert(path.to_string(), count).is_some() {
            return Err(format!("allowlist line {}: duplicate entry {path}", i + 1));
        }
    }
    Ok(map)
}

fn is_rs(path: &Path) -> bool {
    path.extension().is_some_and(|e| e == "rs")
}

/// Collects every `.rs` file under `crates/`, sorted for stable output.
fn collect_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.join("crates")];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            if entry.file_type()?.is_dir() {
                // `target/` never appears under crates/, but guard anyway.
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if is_rs(&path) {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Runs every rule over the workspace at `root` (the directory holding
/// the top-level `Cargo.toml`). Returns all violations, sorted by file.
pub fn lint(root: &Path) -> io::Result<Vec<Violation>> {
    let needles = Needles::new();
    let allowlist_path = root.join("crates/xtask/unwrap-allowlist.txt");
    let allowlist = match fs::read_to_string(&allowlist_path) {
        Ok(text) => parse_allowlist(&text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(BTreeMap::new()),
        Err(e) => return Err(e),
    };
    let mut violations = Vec::new();
    let allowlist = match allowlist {
        Ok(map) => map,
        Err(msg) => {
            violations.push(Violation {
                file: "crates/xtask/unwrap-allowlist.txt".into(),
                line: 0,
                rule: "unwrap-ratchet",
                msg,
            });
            BTreeMap::new()
        }
    };

    let mut unwrap_counts: BTreeMap<String, usize> = BTreeMap::new();
    for path in collect_sources(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = fs::read_to_string(&path)?;
        let lines: Vec<&str> = text.lines().collect();
        let is_library_src = rel.contains("/src/");
        let wants_ordering = rel.ends_with("/engine.rs") || rel.ends_with("/dispatch.rs");
        let mut in_test_region = false;

        for (i, &line) in lines.iter().enumerate() {
            if line.contains(&needles.cfg_test) {
                // Test modules sit at the bottom of each file; treat the
                // rest of the file as test code for the ratchet rules.
                in_test_region = true;
            }
            let code = code_part(line);
            let lineno = i + 1;

            // Rule 4: debug macros, everywhere (tests included).
            for (needle, what) in [
                (&needles.todo_macro, "unfinished-code marker"),
                (&needles.dbg_macro, "debug print"),
            ] {
                if code.contains(needle.as_str()) {
                    violations.push(Violation {
                        file: rel.clone(),
                        line: lineno,
                        rule: "no-debug-macros",
                        msg: format!("{what} `{needle}` must not be committed"),
                    });
                }
            }

            // Rule 1: unsafe needs a SAFETY: comment nearby. Test regions
            // are exempt (test fixtures may spell the keyword in strings).
            if !in_test_region
                && contains_word(code, &needles.unsafe_kw)
                && !tagged_nearby(&lines, i, SAFETY_WINDOW, &needles.safety_tag)
            {
                violations.push(Violation {
                    file: rel.clone(),
                    line: lineno,
                    rule: "safety-comment",
                    msg: format!(
                        "`{}` without a `{}` comment within {} lines",
                        needles.unsafe_kw, needles.safety_tag, SAFETY_WINDOW
                    ),
                });
            }

            // Rule 2: subtle atomic orderings need an ORDERING: comment.
            if wants_ordering
                && !in_test_region
                && needles
                    .ordering_prefixes
                    .iter()
                    .any(|p| code.contains(p.as_str()))
                && !tagged_nearby(&lines, i, ORDERING_WINDOW, &needles.ordering_tag)
            {
                violations.push(Violation {
                    file: rel.clone(),
                    line: lineno,
                    rule: "ordering-comment",
                    msg: format!(
                        "relaxed/acquire/release atomic without a `{}` comment within {} lines",
                        needles.ordering_tag, ORDERING_WINDOW
                    ),
                });
            }

            // Rule 3 (counting pass): unwraps in library code.
            if is_library_src
                && !in_test_region
                && (code.contains(needles.unwrap_call.as_str())
                    || code.contains(needles.expect_call.as_str()))
            {
                *unwrap_counts.entry(rel.clone()).or_insert(0) += 1;
            }
        }
    }

    // Rule 3 (ratchet pass): counts must match the allowlist exactly.
    for (file, &count) in &unwrap_counts {
        let allowed = allowlist.get(file).copied().unwrap_or(0);
        if count > allowed {
            violations.push(Violation {
                file: file.clone(),
                line: 0,
                rule: "unwrap-ratchet",
                msg: format!(
                    "{count} unwrap/expect call(s) in library code, allowlist permits {allowed} \
                     — return a typed error instead"
                ),
            });
        }
    }
    for (file, &allowed) in &allowlist {
        let actual = unwrap_counts.get(file).copied().unwrap_or(0);
        if actual < allowed {
            violations.push(Violation {
                file: file.clone(),
                line: 0,
                rule: "unwrap-ratchet",
                msg: format!(
                    "allowlist permits {allowed} unwrap/expect call(s) but only {actual} remain \
                     — tighten crates/xtask/unwrap-allowlist.txt (the ratchet only goes down)"
                ),
            });
        }
    }

    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(violations)
}

/// The workspace root, from this crate's own manifest directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_boundaries() {
        assert!(contains_word("unsafe { x }", "unsafe"));
        assert!(contains_word("unsafe impl Send for T {}", "unsafe"));
        assert!(!contains_word("deny(unsafe_op_in_unsafe_fn)", "unsafe"));
        assert!(!contains_word("forbid(unsafe_code)", "unsafe"));
    }

    #[test]
    fn comment_part_is_ignored() {
        assert_eq!(code_part("let x = 1; // .unwr"), "let x = 1; ");
        assert_eq!(code_part("plain code"), "plain code");
    }

    #[test]
    fn allowlist_parses_and_rejects() {
        let map = parse_allowlist("# hi\ncrates/a/src/x.rs 3\n\ncrates/b/src/y.rs 1\n").unwrap();
        assert_eq!(map.get("crates/a/src/x.rs"), Some(&3));
        assert_eq!(map.len(), 2);
        assert!(parse_allowlist("too many words here 3").is_err());
        assert!(parse_allowlist("crates/a.rs NaN").is_err());
        assert!(parse_allowlist("crates/a.rs 1\ncrates/a.rs 2").is_err());
    }
}
