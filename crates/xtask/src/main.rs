//! `cargo run -p xtask -- lint` — the femcheck source auditor CLI.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        Some(other) => {
            eprintln!("unknown subcommand `{other}`; available: lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::FAILURE
        }
    }
}

fn run_lint() -> ExitCode {
    let root = xtask::workspace_root();
    match xtask::lint(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("xtask lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask lint: io error: {e}");
            ExitCode::FAILURE
        }
    }
}
