//! Offline shim for the subset of the `proptest` API used by this
//! workspace's property tests.
//!
//! The build environment has no crates.io access, so this path crate stands
//! in for the real dependency. It keeps proptest's *shape* — the
//! [`proptest!`] macro, [`Strategy`](strategy::Strategy) combinators,
//! `prop::collection`/`prop::sample`/`prop::option`/`prop::bool` modules,
//! regex-ish string strategies, `prop_assert*` — but with a simpler engine:
//! cases are generated from a deterministic per-test seed and failures are
//! reported with the case number and seed instead of being shrunk.
//!
//! Determinism: the case stream for a test function depends only on its
//! `module_path!()` + name, so failures reproduce across runs and machines.

pub mod strategy;

#[doc(hidden)]
pub mod __rt {
    // The proptest! macro expansion needs the RNG without requiring the
    // user crate to depend on `rand` itself.
    pub use rand;
}

pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config` (aliased `ProptestConfig`
    /// in the prelude). Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    /// FNV-1a, used to derive a per-test seed from its full path.
    pub fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Strategies for `bool` (`prop::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use rand::{rngs::StdRng, Rng};

    #[derive(Debug, Clone, Copy)]
    pub struct BoolStrategy;

    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }
}

/// Collection strategies (`prop::collection::{vec, btree_map, btree_set}`).
pub mod collection {
    use crate::strategy::Strategy;
    use rand::{rngs::StdRng, Rng};
    use std::collections::{BTreeMap, BTreeSet};

    /// Size specification: a fixed length or a half-open range, mirroring
    /// `proptest::collection::SizeRange`'s common constructors.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.lo..self.hi)
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut map = BTreeMap::new();
            // Duplicate keys collapse; retry a bounded number of times to
            // approach the requested size, as real proptest does.
            let mut attempts = 0;
            while map.len() < n && attempts < n * 8 + 8 {
                attempts += 1;
                map.insert(self.key.generate(rng), self.value.generate(rng));
            }
            map
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < n && attempts < n * 8 + 8 {
                attempts += 1;
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// `prop::sample::select` — uniform choice from a fixed list.
pub mod sample {
    use crate::strategy::Strategy;
    use rand::{rngs::StdRng, Rng};

    pub struct Select<T> {
        choices: Vec<T>,
    }

    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select() needs at least one choice");
        Select { choices }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.choices[rng.gen_range(0..self.choices.len())].clone()
        }
    }
}

/// `prop::option::of` — `None` 25% of the time, like real proptest's default.
pub mod option {
    use crate::strategy::Strategy;
    use rand::{rngs::StdRng, Rng};

    pub struct OptionStrategy<S> {
        inner: S,
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            if rng.gen_bool(0.75) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use rand::{rngs::StdRng, Rng};
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Everything a test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Module-structure re-export so `prop::collection::vec(...)` etc. work
    /// after a glob import, as in real proptest.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The property-test macro: expands each `fn name(pat in strategy, ...)`
/// into a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let base = $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases as u64 {
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    let mut __rng = <$crate::__rt::rand::rngs::StdRng as $crate::__rt::rand::SeedableRng>::seed_from_u64(
                        base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest shim: {} failed at case {case}/{} (base seed {base:#x})",
                        stringify!($name),
                        cfg.cases,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}
