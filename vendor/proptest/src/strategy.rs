//! The [`Strategy`] trait and combinators, plus the regex-lite string
//! strategy that backs `"pattern"`-style strategies.

use rand::{rngs::StdRng, Rng};

/// A generator of values, mirroring `proptest::strategy::Strategy` without
/// the shrinking machinery (`generate` plays the role of `new_tree` +
/// `current`).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Type-erased strategy (object-safe because `generate` takes `&self`).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed strategies — the engine behind `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

// ---- numeric range strategies -------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

// ---- tuple strategies ----------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($S:ident => $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0 => 0);
impl_tuple_strategy!(S0 => 0, S1 => 1);
impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2);
impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3);
impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4);

// ---- regex-lite string strategy -----------------------------------------

/// `&str` as a strategy: the pattern is interpreted as the regex subset the
/// workspace's tests use — literal characters, `.`, character classes
/// `[a-z0-9 ]` (ranges + literals), and `{m}` / `{m,n}` repetition of the
/// preceding atom. Anything else is treated as a literal character.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (atom, lo, hi) in &atoms {
            let n = if lo == hi {
                *lo
            } else {
                rng.gen_range(*lo..=*hi)
            };
            for _ in 0..n {
                atom.emit(rng, &mut out);
            }
        }
        out
    }
}

enum Atom {
    Literal(char),
    /// `.` — any char: mostly printable ASCII, occasionally exotic.
    Dot,
    Class(Vec<(char, char)>),
}

impl Atom {
    fn emit(&self, rng: &mut StdRng, out: &mut String) {
        match self {
            Atom::Literal(c) => out.push(*c),
            Atom::Dot => {
                let c = match rng.gen_range(0..10u32) {
                    // Printable ASCII dominates so parsers reach deep states.
                    0..=7 => rng.gen_range(0x20u32..0x7F) as u8 as char,
                    8 => rng.gen_range(0x01u32..0x20) as u8 as char,
                    _ => char::from_u32(rng.gen_range(0xA0u32..0x2FFF)).unwrap_or('¿'),
                };
                out.push(c);
            }
            Atom::Class(ranges) => {
                let total: u32 = ranges.iter().map(|(a, b)| *b as u32 - *a as u32 + 1).sum();
                let mut pick = rng.gen_range(0..total);
                for (a, b) in ranges {
                    let span = *b as u32 - *a as u32 + 1;
                    if pick < span {
                        out.push(char::from_u32(*a as u32 + pick).unwrap());
                        break;
                    }
                    pick -= span;
                }
            }
        }
    }
}

/// Parses the pattern into `(atom, min_reps, max_reps)` triples.
fn parse_pattern(pat: &str) -> Vec<(Atom, usize, usize)> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Dot
            }
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((chars[i], chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((chars[i], chars[i]));
                        i += 1;
                    }
                }
                i += 1; // consume ']'
                assert!(!ranges.is_empty(), "empty character class in {pat:?}");
                Atom::Class(ranges)
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                Atom::Literal(chars[i - 1])
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional {m} / {m,n} repetition.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| p + i)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pat:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad {m,n}"),
                    hi.trim().parse().expect("bad {m,n}"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad {m}");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push((atom, lo, hi));
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn regex_lite_respects_shape() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "c_[a-z]{1,6}".generate(&mut r);
            assert!(s.starts_with("c_"), "{s:?}");
            let tail = &s[2..];
            assert!((1..=6).contains(&tail.len()), "{s:?}");
            assert!(tail.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
        for _ in 0..200 {
            let s = "[a-zA-Z0-9 ]{0,12}".generate(&mut r);
            assert!(s.len() <= 12);
            assert!(
                s.chars().all(|c| c.is_ascii_alphanumeric() || c == ' '),
                "{s:?}"
            );
        }
        for _ in 0..50 {
            let s = ".{0,200}".generate(&mut r);
            assert!(s.chars().count() <= 200);
        }
    }

    #[test]
    fn oneof_union_covers_all_arms() {
        let u = crate::prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut r = rng();
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut r) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn collections_hit_requested_sizes() {
        let mut r = rng();
        let v = crate::collection::vec(0u32..10, 3..6).generate(&mut r);
        assert!((3..6).contains(&v.len()));
        let exact = crate::collection::vec(0u32..10, 4).generate(&mut r);
        assert_eq!(exact.len(), 4);
        let m = crate::collection::btree_map(0u32..100, 0u32..5, 5..8).generate(&mut r);
        assert!(m.len() <= 8);
    }
}
