//! Offline shim for the subset of the `rand` 0.8 API used by this
//! workspace: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool, gen}`.
//!
//! The build environment has no crates.io access, so this path crate stands
//! in for the real dependency. The generator is xoshiro256++ seeded through
//! SplitMix64 — high-quality, deterministic, and fully reproducible, though
//! its streams intentionally do not match upstream `StdRng` (ChaCha12);
//! nothing in the workspace depends on the exact stream, only on
//! determinism per seed.

/// Uniform sampling from a range type, mirroring `rand::distributions::uniform`.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Minimal object-safe core trait: a source of random `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Extension methods every RNG gets, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Uniform draw from `low..high` or `low..=high`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        to_unit_f64(self.next_u64()) < p
    }

    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types drawable uniformly over their whole domain (the `Standard`
/// distribution of real rand).
pub trait Standard: Sized {
    fn sample(rng: &mut impl RngCore) -> Self;
}

/// Seedable RNGs, mirroring `rand::SeedableRng` (only `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

fn to_unit_f64(x: u64) -> f64 {
    // 53 high bits → [0, 1).
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn to_unit_f32(x: u64) -> f32 {
    // 24 high bits → [0, 1); f32 can represent every multiple of 2^-24
    // exactly, so the upper bound stays exclusive (a 53-bit value cast to
    // f32 could round up to 1.0).
    (x >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

macro_rules! impl_int_sampling {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(rng: &mut impl RngCore) -> Self {
                rng.next_u64() as $t
            }
        }

        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = bounded(rng, span as u64);
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-domain draw
                }
                let v = bounded(rng, span as u64);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_sampling!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased bounded draw via Lemire-style rejection.
fn bounded(rng: &mut dyn RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

impl Standard for bool {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(rng: &mut impl RngCore) -> Self {
        to_unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample(rng: &mut impl RngCore) -> Self {
        to_unit_f32(rng.next_u64())
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty float range in gen_range");
        self.start + to_unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample(self, rng: &mut dyn RngCore) -> f32 {
        assert!(self.start < self.end, "empty float range in gen_range");
        self.start + to_unit_f32(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty float range in gen_range");
        lo + to_unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleRange<f32> for std::ops::RangeInclusive<f32> {
    fn sample(self, rng: &mut dyn RngCore) -> f32 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty float range in gen_range");
        lo + to_unit_f32(rng.next_u64()) * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u32> = (0..16).map(|_| a.gen_range(0..1_000_000)).collect();
        let ys: Vec<u32> = (0..16).map(|_| c.gen_range(0..1_000_000)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(5..=10u32);
            assert!((5..=10).contains(&v));
            let w = r.gen_range(-3..3i64);
            assert!((-3..3).contains(&w));
            let f = r.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut r = StdRng::seed_from_u64(2);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4500..5500).contains(&heads), "{heads}");
    }
}
