//! Offline shim for the subset of the `criterion` API used by the bench
//! crate: `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment has no crates.io access, so this path crate stands
//! in for the real dependency. Measurement is deliberately lightweight —
//! a short warm-up, then a fixed wall-clock budget per benchmark, reporting
//! mean/min time per iteration — enough for the perf-trajectory tracking
//! ROADMAP asks for, without criterion's statistical machinery. Respects
//! `--bench` harness invocation args (filters by substring) so
//! `cargo bench <name>` narrows as expected.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    /// Total time spent inside `iter` closures.
    elapsed: Duration,
    /// Iterations executed.
    iters: u64,
    /// Wall-clock budget for the measurement loop.
    budget: Duration,
}

impl Bencher {
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // One untimed warm-up run.
        std::hint::black_box(f());
        let deadline = Instant::now() + self.budget;
        loop {
            let t = Instant::now();
            std::hint::black_box(f());
            self.elapsed += t.elapsed();
            self.iters += 1;
            if Instant::now() >= deadline || self.elapsed > self.budget {
                break;
            }
        }
    }
}

/// Identifier for parameterised benchmarks (`BenchmarkId::new("x", 10)`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Top-level driver. Holds the name filter from the CLI.
pub struct Criterion {
    filter: Option<String>,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench` plus any user filter strings.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        let budget_ms = std::env::var("CRITERION_SHIM_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        Criterion {
            filter,
            budget: Duration::from_millis(budget_ms),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            budget: None,
            criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let id = name.to_string();
        let budget = self.budget;
        self.run_one(&id, budget, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, budget: Duration, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            budget,
        };
        f(&mut b);
        if b.iters == 0 {
            println!("{id:<48} (no iterations)");
            return;
        }
        let mean = b.elapsed.as_nanos() as f64 / b.iters as f64;
        println!("{id:<48} {:>14}  ({} iterations)", format_ns(mean), b.iters);
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:.3} s/iter", ns / 1_000_000_000.0)
    }
}

/// Named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    /// Group-scoped budget override; the parent's budget is untouched.
    budget: Option<Duration>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's budget-based loop ignores
    /// the requested sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = Some(d);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let id = format!("{}/{}", self.name, name);
        let budget = self.budget.unwrap_or(self.criterion.budget);
        self.criterion.run_one(&id, budget, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.id);
        let budget = self.budget.unwrap_or(self.criterion.budget);
        self.criterion.run_one(&id, budget, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Re-export mirroring `criterion::black_box` (deprecated upstream in favour
/// of `std::hint::black_box`, which the benches already use).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
