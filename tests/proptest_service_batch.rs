//! Property test for [`PathService::query_batch`] partitioning
//! (DESIGN.md §13): however a batch is tiled across the worker pool —
//! arbitrary batch sizes against arbitrary worker counts, duplicate
//! pairs, unreachable pairs, `s == t` pairs — the merged result must
//! come back **in input order** and agree pair-for-pair with looping
//! [`PathService::query`] over the same service (which itself is pinned
//! to in-memory Dijkstra by the stress and interleaving suites).
//!
//! This is the regression net for the tiling bug class: the old
//! `div_ceil` tiling could fold 9 pairs on 8 workers into 5 tiles, and
//! an off-by-one in the offset merge would silently swap answers between
//! adjacent pairs — exactly what comparing per-index against the looped
//! oracle catches.

use fempath::core::{PathService, PathServiceOptions};
use fempath::graph::Graph;
use proptest::prelude::*;

/// Budget: CI sets `PROPTEST_CASES=512`; the local default keeps plain
/// `cargo test` quick. `ProptestConfig::with_cases` overrides the
/// environment, so honour the variable explicitly.
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A random graph (duplicates and disconnected components allowed) plus
/// a random batch of in-range query pairs and a worker count.
#[allow(clippy::type_complexity)]
fn arb_case() -> impl Strategy<Value = (Graph, Vec<(i64, i64)>, usize)> {
    (
        6usize..24,
        prop::collection::vec((0u32..24, 0u32..24, 1u32..20), 3..48),
        prop::collection::vec((0u32..24, 0u32..24), 0..33),
        1usize..=8,
    )
        .prop_map(|(n, edges, raw_pairs, workers)| {
            let n = n.max(
                edges
                    .iter()
                    .map(|(u, v, _)| (*u).max(*v) as usize + 1)
                    .max()
                    .unwrap_or(1),
            );
            let g = Graph::from_undirected_edges(n, edges);
            // Clamp pairs into range; s == t and duplicates are kept on
            // purpose — both are partition edge cases.
            let pairs: Vec<(i64, i64)> = raw_pairs
                .into_iter()
                .map(|(s, t)| ((s as usize % n) as i64, (t as usize % n) as i64))
                .collect();
            (g, pairs, workers)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(24)))]

    #[test]
    fn batch_matches_looped_single_queries((g, pairs, workers) in arb_case()) {
        // Cache off: this property pins the *dispatch* layer — every
        // pair must really be tiled, executed and merged, so the result
        // cache (whose dedup would legitimately skip repeat pairs) is
        // disabled. The cache-on batch behaviour is covered by
        // tests/service_cache.rs.
        let svc = PathService::with_options(&g, &PathServiceOptions {
            workers,
            cache_bytes: 0,
            ..Default::default()
        }).unwrap();
        let batch = svc.query_batch(&pairs).unwrap();
        prop_assert_eq!(batch.len(), pairs.len(), "one answer per input pair");

        for (i, &(s, t)) in pairs.iter().enumerate() {
            let single = svc.query(s, t).unwrap().path;
            match (&batch[i], &single) {
                (Some(b), Some(o)) => {
                    prop_assert_eq!(
                        b.length, o.length,
                        "pair {} ({}->{}) answered with a different distance \
                         in the batch ({} workers)",
                        i, s, t, workers
                    );
                    // The batch path is a real s→t walk of that length,
                    // not just any number: endpoints and edge existence.
                    prop_assert_eq!(b.nodes.first(), Some(&s));
                    prop_assert_eq!(b.nodes.last(), Some(&t));
                    let mut len = 0i64;
                    for w in b.nodes.windows(2) {
                        let arc = g.out_arcs(w[0] as u32).iter()
                            .filter(|a| a.to == w[1] as u32)
                            .map(|a| a.weight).min();
                        prop_assert!(
                            arc.is_some(),
                            "batch path for pair {} uses missing edge {}->{}",
                            i, w[0], w[1]
                        );
                        len += arc.unwrap() as i64;
                    }
                    prop_assert_eq!(len, b.length, "pair {}: walk length mismatch", i);
                }
                (None, None) => {}
                (got, want) => prop_assert!(
                    false,
                    "pair {} ({}->{}): batch says {:?}, single query says {:?} \
                     ({} workers, {} pairs)",
                    i, s, t,
                    got.as_ref().map(|p| p.length),
                    want.as_ref().map(|p| p.length),
                    workers, pairs.len()
                ),
            }
        }

        // Partitioning accounting: a batch of k pairs on w workers must
        // dispatch exactly min(k, w) tiles, all of which executed.
        if !pairs.is_empty() {
            let tiles = pairs.len().min(workers) as u64;
            let stats = svc.stats();
            let batch_jobs = stats.total_executed() - pairs.len() as u64; // singles above
            prop_assert_eq!(
                batch_jobs, tiles,
                "{} pairs on {} workers must dispatch {} tiles",
                pairs.len(), workers, tiles
            );
        }
    }
}
