//! Deterministic-interleaving concurrency suite (DESIGN.md §13).
//!
//! Plain stress tests leave thread interleavings to the OS scheduler, so
//! a race that needs a specific ordering can hide for thousands of runs.
//! This suite removes the nondeterminism: every scenario runs its
//! threads under a token-passing [`Scheduler`] that serializes execution
//! step by step and picks *which* thread runs each step from a seeded
//! PRNG. One seed = one exact interleaving; sweeping seeds explores many
//! distinct orders, and any failure names the seed that reproduces it:
//!
//! ```text
//! CONCURRENCY_SEED=17 cargo test --test concurrency_interleavings
//! ```
//!
//! `CONCURRENCY_SEEDS=N` widens the sweep (CI runs 256); the default is
//! modest so plain `cargo test` stays quick.
//!
//! Scenarios cover the shared-snapshot architecture's racy edges:
//! shared-plan-cache publish/consult from warming sessions, session
//! creation and working-table isolation over one page image, and the
//! landmark fast-path vs FEM dispatch inside a live [`PathService`].

use fempath::core::{BdjFinder, GraphDb, PathService, ServiceAlgorithm, ShortestPathFinder};
use fempath::graph::generate;
use fempath::inmem::dijkstra;
use std::panic::AssertUnwindSafe;
use std::sync::{Condvar, Mutex};

// ---------------------------------------------------------------------
// Token-passing scheduler
// ---------------------------------------------------------------------

const NOBODY: usize = usize::MAX;

struct SchedState {
    rng: u64,
    active: Vec<bool>,
    turn: usize,
    failed: Option<String>,
}

impl SchedState {
    fn next_rand(&mut self) -> u64 {
        // xorshift64*: deterministic, seedable, no external deps.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Seeded choice among still-active threads.
    fn pick(&mut self) -> usize {
        let alive: Vec<usize> = (0..self.active.len()).filter(|&i| self.active[i]).collect();
        if alive.is_empty() {
            return NOBODY;
        }
        alive[(self.next_rand() % alive.len() as u64) as usize]
    }
}

/// Serializes N threads: exactly one holds the token and runs; at every
/// [`Scheduler::point`] it hands the token to a seeded-random active
/// thread (possibly itself). Only the token holder touches the PRNG, so
/// the full interleaving is a pure function of the seed.
struct Scheduler {
    m: Mutex<SchedState>,
    cv: Condvar,
}

impl Scheduler {
    fn new(threads: usize, seed: u64) -> Scheduler {
        let mut st = SchedState {
            rng: seed | 1, // xorshift must not start at 0
            active: vec![true; threads],
            turn: 0,
            failed: None,
        };
        st.turn = st.pick();
        Scheduler {
            m: Mutex::new(st),
            cv: Condvar::new(),
        }
    }

    /// Blocks until this thread is granted its first token.
    fn start(&self, me: usize) {
        let mut st = self.m.lock().unwrap();
        while st.turn != me {
            st = self.cv.wait(st).unwrap();
        }
    }

    /// A preemption opportunity between two operations: offer the token
    /// to a seeded-random active thread and wait to get it back.
    fn point(&self, me: usize) {
        let mut st = self.m.lock().unwrap();
        assert_eq!(st.turn, me, "only the token holder may reach a point");
        st.turn = st.pick();
        self.cv.notify_all();
        while st.turn != me {
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Retires this thread (recording `err` if its body panicked) and
    /// passes the token on so the rest of the schedule keeps running.
    fn finish(&self, me: usize, err: Option<String>) {
        let mut st = self.m.lock().unwrap();
        st.active[me] = false;
        if st.failed.is_none() {
            st.failed = err;
        }
        st.turn = st.pick();
        self.cv.notify_all();
    }

    fn failure(&self) -> Option<String> {
        self.m.lock().unwrap().failed.clone()
    }
}

/// Runs `body(thread_index, &scheduler)` on `threads` threads under one
/// seeded schedule. Panics (assertion failures) inside a body are caught
/// and surfaced to the caller instead of deadlocking the token ring.
fn run_interleaved<F>(threads: usize, seed: u64, body: F) -> Option<String>
where
    F: Fn(usize, &Scheduler) + Sync,
{
    let sched = Scheduler::new(threads, seed);
    std::thread::scope(|scope| {
        for me in 0..threads {
            let sched = &sched;
            let body = &body;
            scope.spawn(move || {
                sched.start(me);
                let r = std::panic::catch_unwind(AssertUnwindSafe(|| body(me, sched)));
                let err = r.err().map(|p| {
                    p.downcast_ref::<String>()
                        .cloned()
                        .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "opaque panic".into())
                });
                sched.finish(me, err);
            });
        }
    });
    sched.failure()
}

/// Sweeps `scenario` over the configured seed range; any failure panics
/// with the reproducing seed in the message.
fn sweep(name: &str, scenario: impl Fn(u64) -> Option<String>) {
    if let Some(seed) = single_seed() {
        if let Some(msg) = scenario(seed) {
            panic!("{name} failed at seed {seed}: {msg}");
        }
        return;
    }
    for seed in 1..=seed_count() {
        if let Some(msg) = scenario(seed) {
            panic!(
                "{name} failed at seed {seed}: {msg}\n\
                 reproduce with: CONCURRENCY_SEED={seed} cargo test --test \
                 concurrency_interleavings {name}"
            );
        }
    }
}

fn seed_count() -> u64 {
    if let Ok(v) = std::env::var("CONCURRENCY_SEEDS") {
        return v.parse().expect("CONCURRENCY_SEEDS must be an integer");
    }
    // Debug builds pay ~10x per query; keep plain `cargo test` quick.
    if cfg!(debug_assertions) {
        12
    } else {
        64
    }
}

fn single_seed() -> Option<u64> {
    std::env::var("CONCURRENCY_SEED")
        .ok()
        .map(|v| v.parse().expect("CONCURRENCY_SEED must be an integer"))
}

// ---------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------

/// Shared-plan-cache publish/consult: three sessions warm up over one
/// snapshot with their `prepare → consult shared → compile → publish`
/// steps interleaved every possible way. Whatever the order, every
/// session must answer correctly and the cache must keep its
/// publish-once property: the publish count equals the distinct
/// statement count a single serial session produces — concurrent warmup
/// never publishes a statement twice.
#[test]
fn plan_cache_publish_consult_interleavings() {
    let g = generate::grid(4, 4, 1..=10, 11);
    let want = dijkstra::shortest_path(&g, 0, 15).expect("grid is connected");

    // Serial baseline: how many distinct statements one warmup publishes.
    let snap = GraphDb::in_memory(&g).unwrap().freeze().unwrap();
    let mut session = snap.session();
    BdjFinder::default().find_path(&mut session, 0, 15).unwrap();
    let serial_publishes = snap.shared_plan_stats().publishes;
    assert!(serial_publishes > 0, "warmup must publish plans");

    sweep("plan_cache_publish_consult_interleavings", |seed| {
        let snap = GraphDb::in_memory(&g).unwrap().freeze().unwrap();
        let failed = run_interleaved(3, seed, |me, sched| {
            let finder = BdjFinder::default();
            let mut session = snap.session();
            sched.point(me);
            // First query: cold local cache, racing publishes.
            let out = finder.find_path(&mut session, 0, 15).unwrap();
            assert_eq!(out.path.unwrap().length as u64, want.distance);
            sched.point(me);
            // Second query: must be served by now-shared plans.
            let out = finder.find_path(&mut session, 15, 0).unwrap();
            assert_eq!(out.path.unwrap().length as u64, want.distance);
        });
        if failed.is_some() {
            return failed;
        }
        let stats = snap.shared_plan_stats();
        if stats.publishes != serial_publishes {
            return Some(format!(
                "publish-once violated: {} publishes from 3 racing sessions, \
                 {serial_publishes} from a serial one",
                stats.publishes
            ));
        }
        None
    });
}

/// Session creation and copy-on-write isolation: threads create sessions
/// at interleaved points and scribble into their private working tables.
/// No ordering may let one session observe another's rows or damage the
/// shared base image.
#[test]
fn snapshot_session_isolation_interleavings() {
    let g = generate::grid(4, 4, 1..=10, 23);
    sweep("snapshot_session_isolation_interleavings", |seed| {
        let snap = GraphDb::in_memory(&g).unwrap().freeze().unwrap();
        run_interleaved(3, seed, |me, sched| {
            let rows = (me + 1) as u64 * 2;
            let mut session = snap.session();
            sched.point(me);
            for r in 0..rows {
                let nid = me as u64 * 100 + r;
                session
                    .db
                    .execute(&format!(
                        "INSERT INTO TVisited VALUES ({nid}, 1, -1, 0, 0, -1, 0)"
                    ))
                    .unwrap();
                sched.point(me);
            }
            // Only this session's rows are visible, however the writes
            // interleaved.
            assert_eq!(session.db.table_len("TVisited").unwrap(), rows);
            sched.point(me);
            session.reset_visited().unwrap();
            sched.point(me);
            assert_eq!(session.db.table_len("TVisited").unwrap(), 0);
            // The shared edge relation is untouched by any overlay write.
            assert_eq!(session.db.table_len("TEdges").unwrap(), g.num_arcs() as u64);
        })
    });
}

/// Landmark fast-path vs FEM dispatch: clients interleave queries that a
/// landmark tree answers directly with queries that must fall through to
/// the relational finder, against a live worker pool. Both paths go
/// through one [`PathService`]; every answer is checked against
/// in-memory Dijkstra.
#[test]
fn landmark_fastpath_vs_fem_interleavings() {
    let g = generate::grid(5, 5, 1..=10, 31);
    let n = 25i64;
    let pairs: Vec<(i64, i64)> = vec![(0, 24), (24, 0), (12, 12), (3, 21), (7, 18), (22, 1)];
    let oracle: Vec<Option<u64>> = pairs
        .iter()
        .map(|&(s, t)| dijkstra::shortest_path(&g, s as u32, t as u32).map(|p| p.distance))
        .collect();

    sweep("landmark_fastpath_vs_fem_interleavings", |seed| {
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        // Two landmarks cover some pairs exactly (fast path) and only
        // bound the rest (FEM path) — the mix is the point.
        gdb.build_landmarks(2).unwrap();
        let snap = std::sync::Arc::new(gdb.freeze().unwrap());
        let svc = PathService::from_snapshot(snap, 2, ServiceAlgorithm::Bdj);
        run_interleaved(3, seed, |me, sched| {
            for k in 0..pairs.len() {
                let i = (k + me * 2) % pairs.len();
                let (s, t) = pairs[i];
                sched.point(me);
                let out = svc.query(s, t).unwrap();
                match (out.path, oracle[i]) {
                    (Some(p), Some(d)) => {
                        assert_eq!(p.length as u64, d, "distance mismatch on {s}->{t}");
                        assert_eq!(p.nodes.first(), Some(&s));
                        assert_eq!(p.nodes.last(), Some(&t));
                        for w in p.nodes.windows(2) {
                            assert!(
                                w[0] >= 0 && w[0] < n && w[1] >= 0 && w[1] < n,
                                "path leaves the graph"
                            );
                        }
                    }
                    (None, None) => {}
                    (got, want) => panic!(
                        "reachability mismatch on {s}->{t}: got {:?}, want {want:?}",
                        got.map(|p| p.length)
                    ),
                }
            }
        })
    });
}

/// The scheduler itself is deterministic: the same seed must produce the
/// same interleaving (observed as the exact sequence of (thread, step)
/// grants), and different seeds must produce different ones somewhere in
/// a small sweep — otherwise the suite would be re-running one order N
/// times and calling it coverage.
#[test]
fn scheduler_is_seed_deterministic() {
    let trace = |seed: u64| -> Vec<(usize, usize)> {
        let log = Mutex::new(Vec::new());
        let failed = run_interleaved(3, seed, |me, sched| {
            for step in 0..4 {
                log.lock().unwrap().push((me, step));
                sched.point(me);
            }
        });
        assert_eq!(failed, None);
        log.into_inner().unwrap()
    };
    let mut distinct = std::collections::HashSet::new();
    for seed in 1..=8 {
        let a = trace(seed);
        let b = trace(seed);
        assert_eq!(a, b, "seed {seed} replayed a different interleaving");
        assert_eq!(a.len(), 12, "every thread must complete all steps");
        distinct.insert(a);
    }
    assert!(
        distinct.len() > 4,
        "8 seeds produced only {} distinct interleavings",
        distinct.len()
    );
}

/// A failing interleaving reports, not deadlocks: a body that panics
/// mid-schedule must surface its message through `run_interleaved` while
/// the remaining threads finish their schedule.
#[test]
fn scheduler_surfaces_body_panics() {
    let g = generate::grid(3, 3, 1..=10, 7);
    let snap = GraphDb::in_memory(&g).unwrap().freeze().unwrap();
    let failed = run_interleaved(3, 5, |me, sched| {
        let session = snap.session();
        sched.point(me);
        assert!(session.db.has_table("TVisited"));
        if me == 1 {
            panic!("deliberate scenario failure");
        }
        sched.point(me);
    });
    let msg = failed.expect("the panicking thread must be reported");
    assert!(
        msg.contains("deliberate scenario failure"),
        "panic message lost: {msg}"
    );
}
