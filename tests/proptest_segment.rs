//! Property-based tests of the adjacency-segment codec (DESIGN.md §14):
//! encode/decode round-trips over arbitrary edge multisets — duplicates,
//! weight extremes, single-edge and empty segments — plus the
//! [`SegmentWriter`] splitting invariants (size caps, global order, and
//! lossless reassembly).
//!
//! Run with `PROPTEST_CASES=512` (the CI setting) for the heavyweight
//! sweep; the local default keeps `cargo test` fast.

use fempath::storage::{
    decode_edge_segment, decode_edge_segment_into_chunk, encode_edge_segment, segment_edge_count,
    Chunk, SegmentWriter, SEG_MAX_BYTES, SEG_MAX_EDGES,
};
use proptest::prelude::*;

/// Honour `PROPTEST_CASES` explicitly so CI can raise the sweep without a
/// code change (`ProptestConfig::with_cases` overrides the environment).
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Edges with every interesting magnitude: small dense ids, duplicates
/// (forced by tiny domains), and extreme weights up to `i64::MAX`.
fn arb_edges(max_len: usize) -> impl Strategy<Value = Vec<(i64, i64, i64)>> {
    let edge = prop_oneof![
        // Dense small ids — adjacent deltas, duplicate-prone.
        (0i64..50, 0i64..50, 1i64..100),
        // Sparse ids and extreme weights — worst-case varints.
        (
            prop_oneof![Just(0i64), 0i64..1_000_000_000, Just(i64::MAX / 2)],
            prop_oneof![Just(0i64), 0i64..1_000_000_000, Just(i64::MAX / 2)],
            prop_oneof![
                Just(0i64),
                Just(1i64),
                Just(i64::MAX),
                Just(i64::MIN),
                any::<i64>()
            ],
        ),
    ];
    prop::collection::vec(edge, 0..=max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(64)))]

    /// encode → decode is the identity on the sorted edge multiset.
    #[test]
    fn roundtrip_arbitrary_edges(mut edges in arb_edges(SEG_MAX_EDGES)) {
        let blob = encode_edge_segment(&edges);
        let decoded = decode_edge_segment(&blob).unwrap();
        edges.sort_unstable();
        prop_assert_eq!(decoded, edges);
    }

    /// The stored edge count is readable without a full decode.
    #[test]
    fn edge_count_header(edges in arb_edges(SEG_MAX_EDGES)) {
        let blob = encode_edge_segment(&edges);
        prop_assert_eq!(segment_edge_count(&blob).unwrap(), edges.len());
    }

    /// Columnar decode matches the row decode exactly (the FEM expansion
    /// join consumes segments through this path).
    #[test]
    fn chunk_decode_matches_row_decode(edges in arb_edges(SEG_MAX_EDGES)) {
        let blob = encode_edge_segment(&edges);
        let rows = decode_edge_segment(&blob).unwrap();
        let mut chunk = Chunk::new();
        chunk.set_width(3);
        let n = decode_edge_segment_into_chunk(&blob, &mut chunk).unwrap();
        prop_assert_eq!(n, rows.len());
        prop_assert_eq!(chunk.len(), rows.len());
        for (r, &(f, t, c)) in rows.iter().enumerate() {
            prop_assert_eq!(chunk.get(0, r).as_i64(), Some(f));
            prop_assert_eq!(chunk.get(1, r).as_i64(), Some(t));
            prop_assert_eq!(chunk.get(2, r).as_i64(), Some(c));
        }
    }

    /// A sorted stream pushed through the writer reassembles losslessly,
    /// every blob respects the size caps, and the segments partition the
    /// stream in order (first fids never decrease).
    #[test]
    fn writer_splits_respect_caps_and_order(mut edges in arb_edges(4 * SEG_MAX_EDGES)) {
        edges.sort_unstable();
        let mut segs: Vec<(i64, i64, Vec<u8>)> = Vec::new();
        let mut w = SegmentWriter::new(|first, last, blob| {
            segs.push((first, last, blob));
            Ok(())
        });
        for &(f, t, c) in &edges {
            w.push(f, t, c).unwrap();
        }
        w.flush().unwrap();
        let mut reassembled = Vec::new();
        let mut prev_first = i64::MIN;
        for (first, last, blob) in &segs {
            let dec = decode_edge_segment(blob).unwrap();
            prop_assert!(!dec.is_empty(), "writer must not emit empty segments");
            prop_assert!(dec.len() <= SEG_MAX_EDGES);
            prop_assert!(blob.len() <= SEG_MAX_BYTES, "blob {} bytes", blob.len());
            prop_assert_eq!(dec.first().unwrap().0, *first);
            prop_assert_eq!(dec.last().unwrap().0, *last);
            prop_assert!(*first >= prev_first, "segment first fids must not decrease");
            prev_first = *first;
            reassembled.extend(dec);
        }
        prop_assert_eq!(reassembled, edges);
    }

    /// Single-edge segments — the smallest non-empty case.
    #[test]
    fn single_edge_roundtrip(f in any::<i64>(), t in any::<i64>(), c in any::<i64>()) {
        let blob = encode_edge_segment(&[(f, t, c)]);
        prop_assert_eq!(decode_edge_segment(&blob).unwrap(), vec![(f, t, c)]);
    }
}

/// The degenerate empty segment encodes and decodes cleanly.
#[test]
fn empty_segment_roundtrip() {
    let blob = encode_edge_segment(&[]);
    assert_eq!(segment_edge_count(&blob).unwrap(), 0);
    assert!(decode_edge_segment(&blob).unwrap().is_empty());
}

/// Trailing garbage after a valid segment is an error, not silently
/// ignored — a truncation/corruption guard.
#[test]
fn trailing_bytes_rejected() {
    let mut blob = encode_edge_segment(&[(1, 2, 3)]);
    blob.push(0x7f);
    assert!(decode_edge_segment(&blob).is_err());
}
