//! Cross-crate integration: the full pipeline from generator to SQL-driven
//! path discovery, exercising the facade crate's public API exactly as the
//! examples and benches do.

use fempath::core::{
    prim_mst, BsdjFinder, BsegFinder, DjFinder, GraphDb, GraphDbOptions, ShortestPathFinder,
    SqlStyle,
};
use fempath::graph::{generate, io, IndexKind};
use fempath::inmem::{dijkstra, mst};
use fempath::sql::Dialect;

#[test]
fn full_pipeline_generate_load_index_query() {
    let g = generate::dblp_like(400, 1..=100, 3);
    let mut gdb = GraphDb::in_memory(&g).unwrap();
    let seg = gdb.build_segtable(8).unwrap();
    assert!(
        seg.segments >= g.num_arcs() as u64 / 2,
        "SegTable covers the graph"
    );

    let finder = BsegFinder::default();
    let mut reachable = 0;
    for i in 0..8i64 {
        let (s, t) = ((i * 37) % 400, (i * 59 + 200) % 400);
        let out = finder.find_path(&mut gdb, s, t).unwrap();
        let oracle = dijkstra::shortest_path(&g, s as u32, t as u32);
        match (out.path, oracle) {
            (Some(p), Some(o)) => {
                assert_eq!(p.length as u64, o.distance);
                reachable += 1;
            }
            (None, None) => {}
            _ => panic!("reachability mismatch"),
        }
    }
    assert!(
        reachable > 0,
        "some pairs must connect in a DBLP-like graph"
    );
}

#[test]
fn graph_file_roundtrip_through_database() {
    let g = generate::power_law(200, 3, 1..=50, 5);
    let mut path = std::env::temp_dir();
    path.push(format!("fempath-e2e-{}.txt", std::process::id()));
    io::write_arcs(&g, &path).unwrap();
    let g2 = io::read_arcs(&path).unwrap();
    std::fs::remove_file(&path).unwrap();

    let mut a = GraphDb::in_memory(&g).unwrap();
    let mut b = GraphDb::in_memory(&g2).unwrap();
    let f = BsdjFinder::default();
    for (s, t) in [(0i64, 150i64), (7, 90)] {
        let pa = f.find_path(&mut a, s, t).unwrap().path;
        let pb = f.find_path(&mut b, s, t).unwrap().path;
        assert_eq!(pa.map(|p| p.length), pb.map(|p| p.length));
    }
}

#[test]
fn every_dialect_and_style_agrees_on_distances() {
    let g = generate::grid(8, 8, 1..=20, 9);
    let expect = dijkstra::shortest_path(&g, 0, 63).unwrap().distance as i64;
    for dialect in [Dialect::DBMS_X, Dialect::POSTGRES] {
        for style in [SqlStyle::New, SqlStyle::Traditional] {
            let mut gdb = GraphDb::new(
                &g,
                &GraphDbOptions {
                    dialect,
                    ..Default::default()
                },
            )
            .unwrap();
            let finder = BsdjFinder {
                style,
                ..Default::default()
            };
            let out = finder.find_path(&mut gdb, 0, 63).unwrap();
            assert_eq!(
                out.path.unwrap().length,
                expect,
                "dialect {dialect:?}, style {style:?}"
            );
        }
    }
}

#[test]
fn dj_runs_on_tiny_graph_all_dialects() {
    let g = generate::grid(4, 4, 1..=10, 13);
    for dialect in [Dialect::DBMS_X, Dialect::POSTGRES] {
        let mut gdb = GraphDb::new(
            &g,
            &GraphDbOptions {
                dialect,
                ..Default::default()
            },
        )
        .unwrap();
        let out = DjFinder::default().find_path(&mut gdb, 0, 15).unwrap();
        let oracle = dijkstra::shortest_path(&g, 0, 15).unwrap();
        assert_eq!(out.path.unwrap().length as u64, oracle.distance);
    }
}

#[test]
fn mst_pipeline() {
    let g = generate::random_graph(150, 4, 1..=30, 17);
    let mut gdb = GraphDb::in_memory(&g).unwrap();
    let rel = prim_mst(&mut gdb, 0).unwrap();
    let (edges, total) = mst::prim(&g);
    assert_eq!(rel.total_weight as u64, total);
    assert_eq!(rel.edges.len(), edges.len());
    assert_eq!(rel.iterations as usize, edges.len() + 1);
}

#[test]
fn disk_resident_pipeline_with_tiny_buffer() {
    let g = generate::power_law(300, 3, 1..=50, 21);
    let mut gdb = GraphDb::new(
        &g,
        &GraphDbOptions {
            buffer_pages: 24,
            on_disk: true,
            edges_index: IndexKind::Clustered,
            ..Default::default()
        },
    )
    .unwrap();
    gdb.build_segtable(10).unwrap();
    let out = BsegFinder::default().find_path(&mut gdb, 0, 250).unwrap();
    let oracle = dijkstra::shortest_path(&g, 0, 250);
    assert_eq!(
        out.path.map(|p| p.length as u64),
        oracle.map(|o| o.distance)
    );
    let io = gdb.db.io_stats();
    assert!(
        io.disk_reads > 0 && io.disk_writes > 0,
        "must really hit the disk"
    );
}
