//! Concurrency stress tests for [`PathService`] (DESIGN.md §10): many
//! client threads hammer one service over a shared graph snapshot, and
//! every answer is cross-checked against in-memory Dijkstra. A wrong
//! answer under concurrency would mean sessions are leaking state into
//! each other through the shared page image.

use fempath::core::{GraphDb, PathService, PathServiceOptions, ServiceAlgorithm};
use fempath::graph::{generate, Graph};
use fempath::inmem::dijkstra;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Deterministic pseudo-random pairs spread over the node range.
fn stress_pairs(n: usize, count: usize) -> Vec<(i64, i64)> {
    (0..count)
        .map(|i| {
            let s = (i * 7919 + 31) % n;
            let t = (i * 104_729 + 7) % n;
            (s as i64, t as i64) // s == t pairs are kept: trivial path
        })
        .collect()
}

/// Oracle distances for every pair (None = unreachable).
fn oracle(g: &Graph, pairs: &[(i64, i64)]) -> Vec<Option<u64>> {
    pairs
        .iter()
        .map(|&(s, t)| dijkstra::shortest_path(g, s as u32, t as u32).map(|p| p.distance))
        .collect()
}

/// `threads` clients drain one shared work list through `svc`, checking
/// every single-pair answer against the oracle.
fn hammer(svc: &PathService, pairs: &[(i64, i64)], expected: &[Option<u64>], threads: usize) {
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(s, t)) = pairs.get(i) else { break };
                let out = svc.query(s, t).unwrap();
                match (out.path, expected[i]) {
                    (Some(p), Some(d)) => {
                        assert_eq!(
                            p.length as u64, d,
                            "distance mismatch on {s}->{t} under concurrency"
                        );
                        assert_eq!(p.nodes.first(), Some(&s));
                        assert_eq!(p.nodes.last(), Some(&t));
                    }
                    (None, None) => {}
                    (got, want) => panic!(
                        "reachability mismatch on {s}->{t}: got {:?}, want {want:?}",
                        got.map(|p| p.length)
                    ),
                }
            });
        }
    });
}

#[test]
fn eight_threads_power_law_cross_checked() {
    let g = generate::power_law(300, 3, 1..=100, 11);
    let pairs = stress_pairs(300, 96);
    let expected = oracle(&g, &pairs);
    let svc = PathService::new(&g, 8).unwrap();
    hammer(&svc, &pairs, &expected, 8);
}

#[test]
fn more_clients_than_workers_grid() {
    // Clients > workers: jobs queue up and workers serve them in turn.
    let g = generate::grid(8, 8, 1..=10, 5);
    let pairs = stress_pairs(64, 48);
    let expected = oracle(&g, &pairs);
    let svc = PathService::new(&g, 2).unwrap();
    hammer(&svc, &pairs, &expected, 6);
}

#[test]
fn batch_and_single_queries_interleaved() {
    let g = generate::power_law(200, 3, 1..=100, 23);
    let pairs = stress_pairs(200, 60);
    let expected = oracle(&g, &pairs);
    let svc = Arc::new(PathService::new(&g, 4).unwrap());

    std::thread::scope(|scope| {
        // Half the clients issue batches, half issue singles, concurrently.
        for chunk in 0..2 {
            let svc = svc.clone();
            let pairs = &pairs;
            let expected = &expected;
            scope.spawn(move || {
                let lo = chunk * 30;
                let batch = &pairs[lo..lo + 30];
                let paths = svc.query_batch(batch).unwrap();
                for (i, p) in paths.iter().enumerate() {
                    assert_eq!(
                        p.as_ref().map(|p| p.length as u64),
                        expected[lo + i],
                        "batch answer mismatch for {:?}",
                        batch[i]
                    );
                }
            });
        }
        for _ in 0..2 {
            let svc = svc.clone();
            let pairs = &pairs;
            let expected = &expected;
            scope.spawn(move || {
                for (i, &(s, t)) in pairs.iter().enumerate() {
                    let out = svc.query(s, t).unwrap();
                    assert_eq!(out.path.map(|p| p.length as u64), expected[i]);
                }
            });
        }
    });
}

#[test]
fn unreachable_and_invalid_under_concurrency() {
    // Two disconnected components + out-of-range endpoints.
    let g = Graph::from_undirected_edges(8, vec![(0, 1, 3), (1, 2, 4), (5, 6, 2), (6, 7, 1)]);
    let svc = PathService::new(&g, 3).unwrap();
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let svc = &svc;
            scope.spawn(move || {
                for _ in 0..10 {
                    assert!(svc.query(0, 7).unwrap().path.is_none(), "cross-component");
                    assert_eq!(svc.query(0, 2).unwrap().path.unwrap().length, 7);
                    assert!(svc.query(0, 64).is_err(), "out of range must error");
                    assert_eq!(svc.query(4, 4).unwrap().path.unwrap().length, 0);
                }
            });
        }
    });
}

#[test]
fn bsdj_service_matches_oracle() {
    let g = generate::grid(6, 6, 1..=10, 2);
    let pairs = stress_pairs(36, 24);
    let expected = oracle(&g, &pairs);
    let svc = PathService::with_options(
        &g,
        &PathServiceOptions {
            workers: 4,
            algorithm: ServiceAlgorithm::Bsdj,
            ..Default::default()
        },
    )
    .unwrap();
    hammer(&svc, &pairs, &expected, 4);
}

#[test]
fn snapshot_sessions_are_isolated() {
    // Direct snapshot use: two sessions mutate their working tables
    // independently; the shared base image stays intact.
    let g = generate::grid(4, 4, 1..=10, 1);
    let snap = Arc::new(GraphDb::in_memory(&g).unwrap().freeze().unwrap());
    let mut a = snap.session();
    let mut b = snap.session();
    a.db.execute("INSERT INTO TVisited VALUES (1, 0, -1, 0, 0, -1, 0)")
        .unwrap();
    assert_eq!(a.db.table_len("TVisited").unwrap(), 1);
    assert_eq!(b.db.table_len("TVisited").unwrap(), 0, "sessions isolated");
    b.db.execute("DELETE FROM TEdges WHERE cost >= 0").unwrap();
    assert_eq!(b.db.table_len("TEdges").unwrap(), 0);
    assert_eq!(
        a.db.table_len("TEdges").unwrap(),
        g.num_arcs() as u64,
        "base image must be copy-on-write"
    );
    // A third, fresh session still sees the pristine graph.
    let c = snap.session();
    assert_eq!(c.db.table_len("TEdges").unwrap(), g.num_arcs() as u64);
}

#[test]
fn landmark_fast_path_under_the_hammer() {
    // Eight clients share one frozen landmark index (DESIGN.md §12):
    // covered pairs ride the fast path, uncovered pairs fall back to FEM,
    // batches interleave with both — all cross-checked against Dijkstra.
    let g = generate::power_law(300, 3, 1..=100, 11);
    let mut gdb = GraphDb::in_memory(&g).unwrap();
    let stats = gdb.build_landmarks(8).unwrap();
    let snap = Arc::new(gdb.freeze().unwrap());
    assert!(
        snap.landmarks().is_some(),
        "landmark index must survive the freeze"
    );

    // Guaranteed-covered pairs: any node against a landmark shares that
    // landmark's tree, so its bounds are tight.
    let mut pairs = stress_pairs(300, 64);
    for (i, &lm) in stats.landmarks.iter().enumerate() {
        pairs.push(((i as i64 * 37) % 300, lm));
    }
    let expected = oracle(&g, &pairs);

    let svc = Arc::new(PathService::from_snapshot(
        snap.clone(),
        8,
        ServiceAlgorithm::default(),
    ));
    std::thread::scope(|scope| {
        // Six single-pair hammer threads...
        for _ in 0..6 {
            let svc = svc.clone();
            let pairs = &pairs;
            let expected = &expected;
            scope.spawn(move || {
                for (i, &(s, t)) in pairs.iter().enumerate() {
                    let out = svc.query(s, t).unwrap();
                    match (out.path, expected[i]) {
                        (Some(p), Some(d)) => {
                            assert_eq!(p.length as u64, d, "{s}->{t} under concurrency");
                            assert_eq!(p.nodes.first(), Some(&s));
                            assert_eq!(p.nodes.last(), Some(&t));
                        }
                        (None, None) => {}
                        (got, want) => panic!(
                            "{s}->{t}: reachability mismatch (got {:?}, want {want:?})",
                            got.map(|p| p.length)
                        ),
                    }
                }
            });
        }
        // ...two batch threads over the same endpoints, concurrently.
        for _ in 0..2 {
            let svc = svc.clone();
            let pairs = &pairs;
            let expected = &expected;
            scope.spawn(move || {
                let paths = svc.query_batch(pairs).unwrap();
                for (i, p) in paths.iter().enumerate() {
                    assert_eq!(
                        p.as_ref().map(|p| p.length as u64),
                        expected[i],
                        "batch mismatch for {:?}",
                        pairs[i]
                    );
                }
            });
        }
    });

    // The fast path answers covered pairs straight from the index: a
    // fresh session's FEM tables stay untouched after an exact answer.
    let mut probe = snap.session();
    let lm = stats.landmarks[0];
    let before = probe.db.table_len("TVisited").unwrap();
    let fast = fempath::core::landmarks::exact_path(&mut probe, lm, lm).unwrap();
    assert_eq!(fast.map(|p| p.length), Some(0));
    let covered = pairs
        .iter()
        .filter(|&&(s, t)| {
            matches!(
                fempath::core::landmarks::exact_path(&mut probe, s, t),
                Ok(Some(_))
            )
        })
        .count();
    assert!(
        covered >= stats.landmarks.len(),
        "every (x, landmark) probe pair is covered by construction"
    );
    assert_eq!(
        probe.db.table_len("TVisited").unwrap(),
        before,
        "fast path must not write FEM tables"
    );
}

#[test]
fn service_options_build_the_landmark_index() {
    let g = generate::grid(6, 6, 1..=10, 2);
    let pairs = stress_pairs(36, 24);
    let expected = oracle(&g, &pairs);
    let svc = PathService::with_options(
        &g,
        &PathServiceOptions {
            workers: 4,
            landmarks: 4,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        svc.snapshot().landmarks().is_some(),
        "PathServiceOptions::landmarks must build the index before freezing"
    );
    hammer(&svc, &pairs, &expected, 4);
}
