//! Differential test for the segment-compressed storage tier (DESIGN.md §14):
//! every finder must return exactly the same answers whether `TEdges` is
//! stored as heap/clustered rows or as delta-compressed adjacency segments —
//! across both SQL dialects and both plan executors — and both must match
//! in-memory Dijkstra.

use fempath::core::{
    BatchBdjFinder, BatchShortestPathFinder, BbfsFinder, BdjFinder, BsdjFinder, DjFinder, GraphDb,
    GraphDbOptions, ShortestPathFinder,
};
use fempath::graph::{generate, Graph};
use fempath::inmem::dijkstra;
use fempath::sql::{Dialect, ExecMode};

fn query_pairs(n: usize, count: usize) -> Vec<(i64, i64)> {
    (0..count)
        .map(|i| {
            let s = (i * 7919 + 13) % n;
            let mut t = (i * 104_729 + n / 2) % n;
            if t == s {
                t = (t + 1) % n;
            }
            (s as i64, t as i64)
        })
        .collect()
}

fn build(g: &Graph, dialect: Dialect, exec_mode: ExecMode, segmented: bool) -> GraphDb {
    let mut gdb = GraphDb::new(
        g,
        &GraphDbOptions {
            dialect,
            segmented_edges: segmented,
            bulk_load: segmented,
            ..Default::default()
        },
    )
    .unwrap();
    gdb.set_exec_mode(exec_mode);
    gdb
}

/// Single-pair finders: segmented and row-stored databases must agree with
/// each other and with the in-memory oracle on distance and reachability,
/// for every dialect × exec-mode combination.
#[test]
fn finders_identical_on_segmented_and_row_storage() {
    // dblp_like leaves isolated nodes, so unreachable pairs are exercised.
    let g = generate::dblp_like(140, 1..=100, 19);
    let pairs = query_pairs(140, 6);
    for dialect in [Dialect::DBMS_X, Dialect::POSTGRES] {
        for exec_mode in [ExecMode::Vectorized, ExecMode::RowAtATime] {
            let mut rows = build(&g, dialect, exec_mode, false);
            let mut segs = build(&g, dialect, exec_mode, true);
            let finders: Vec<Box<dyn ShortestPathFinder>> = vec![
                Box::new(DjFinder::default()),
                Box::new(BdjFinder::default()),
                Box::new(BsdjFinder::default()),
                Box::new(BbfsFinder::default()),
            ];
            for &(s, t) in &pairs {
                let oracle =
                    dijkstra::shortest_path(&g, s as u32, t as u32).map(|o| o.distance as i64);
                for f in &finders {
                    let ctx = format!("{} {s}->{t} ({dialect:?}, {exec_mode:?})", f.name());
                    let a = f.find_path(&mut rows, s, t).unwrap();
                    let b = f.find_path(&mut segs, s, t).unwrap();
                    let a_len = a.path.as_ref().map(|p| p.length);
                    let b_len = b.path.as_ref().map(|p| p.length);
                    assert_eq!(a_len, oracle, "{ctx}: row storage vs Dijkstra");
                    assert_eq!(b_len, oracle, "{ctx}: segmented storage vs Dijkstra");
                    assert_eq!(
                        a.path.as_ref().map(|p| &p.nodes),
                        b.path.as_ref().map(|p| &p.nodes),
                        "{ctx}: segmented and row storage must walk identical paths \
                         (same plans, same tie-breaking)"
                    );
                }
            }
        }
    }
}

/// The batched finder over segment-compressed edges, per dialect.
#[test]
fn batched_finder_identical_on_segmented_storage() {
    let g = generate::power_law(160, 3, 1..=100, 23);
    let pairs = query_pairs(160, 8);
    for dialect in [Dialect::DBMS_X, Dialect::POSTGRES] {
        let mut rows = build(&g, dialect, ExecMode::Vectorized, false);
        let mut segs = build(&g, dialect, ExecMode::Vectorized, true);
        let f = BatchBdjFinder::default();
        let a = f.find_paths(&mut rows, &pairs).unwrap();
        let b = f.find_paths(&mut segs, &pairs).unwrap();
        for (i, &(s, t)) in pairs.iter().enumerate() {
            let oracle = dijkstra::shortest_path(&g, s as u32, t as u32).map(|o| o.distance as i64);
            let ctx = format!("BatchBDJ {s}->{t} ({dialect:?})");
            assert_eq!(
                a.paths[i].as_ref().map(|p| p.length),
                oracle,
                "{ctx}: row storage vs Dijkstra"
            );
            assert_eq!(
                b.paths[i].as_ref().map(|p| p.length),
                oracle,
                "{ctx}: segmented storage vs Dijkstra"
            );
        }
    }
}

/// Full-scan SQL over the segmented table must agree with the row tables:
/// aggregates, ordering, and ad-hoc predicates that bypass the fid access
/// path all decode through the segment cursor.
#[test]
fn segment_scans_match_row_scans() {
    let g = generate::power_law(200, 3, 1..=100, 5);
    let mut rows = build(&g, Dialect::DBMS_X, ExecMode::Vectorized, false);
    let mut segs = build(&g, Dialect::DBMS_X, ExecMode::Vectorized, true);
    for sql in [
        "SELECT COUNT(*), SUM(cost), MIN(cost), MAX(cost) FROM TEdges",
        "SELECT COUNT(*) FROM TEdges WHERE cost > 50",
        "SELECT fid, COUNT(*) FROM TEdges GROUP BY fid ORDER BY fid",
        "SELECT tid FROM TEdges WHERE fid = 0 ORDER BY tid",
        "SELECT COUNT(*) FROM TEdges e1, TEdges e2 \
         WHERE e1.tid = e2.fid AND e1.fid = 3",
    ] {
        let a = rows.db.query(sql).unwrap();
        let b = segs.db.query(sql).unwrap();
        assert_eq!(a.rows, b.rows, "query diverged on segmented storage: {sql}");
    }
    // INSERT routes to the delta overlay (DESIGN.md §16) and is visible
    // to the same scan paths immediately; both tiers stay in agreement.
    rows.db
        .execute("INSERT INTO TEdges VALUES (1, 2, 3)")
        .unwrap();
    let n = segs
        .db
        .execute("INSERT INTO TEdges VALUES (1, 2, 3)")
        .unwrap();
    assert_eq!(n.rows_affected, 1);
    let count_sql = "SELECT COUNT(*), SUM(cost) FROM TEdges";
    assert_eq!(
        rows.db.query(count_sql).unwrap().rows,
        segs.db.query(count_sql).unwrap().rows,
        "post-insert aggregates diverged on segmented storage"
    );
    // UPDATE/DELETE against compressed base rows are still refused, not
    // silently dropped.
    let err = segs
        .db
        .execute("UPDATE TEdges SET cost = 1 WHERE fid = 1")
        .unwrap_err();
    assert!(
        err.to_string().contains("segment"),
        "unexpected error: {err}"
    );
}
