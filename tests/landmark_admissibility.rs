//! Machine-checked admissibility of the landmark distance index
//! (DESIGN.md §12): over random grid, random-edge (duplicates included)
//! and deliberately disconnected graphs, for **every** (s, t) pair —
//! including s == t — the triangle-inequality upper bound never
//! undershoots the true Dijkstra distance, the lower bound never
//! overshoots it, and a tight bound (upper == lower) means the fast path
//! answers with the exact distance and a real walk, without touching the
//! FEM working tables.
//!
//! Run with `PROPTEST_CASES=512` (the CI setting) for the heavyweight
//! sweep; the in-repo default keeps `cargo test` quick.

use fempath::core::landmarks;
use fempath::core::{BsdjFinder, GraphDb, ShortestPathFinder};
use fempath::graph::Graph;
use fempath::inmem::dijkstra;
use proptest::prelude::*;

/// `ProptestConfig::with_cases` overrides the environment, so honour
/// `PROPTEST_CASES` explicitly to let CI raise the sweep without a code
/// change.
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// All-pairs admissibility sweep over one graph with a freshly built
/// landmark index of `k` landmarks.
fn check_all_pairs(g: &Graph, n: usize, k: usize) {
    let mut gdb = GraphDb::in_memory(g).unwrap();
    gdb.build_landmarks(k).unwrap();
    check_all_pairs_on(&mut gdb, g, n);
}

/// The sweep itself, over a database whose edge content matches the
/// oracle graph `g` — callers may have mutated and rebuilt the index.
fn check_all_pairs_on(gdb: &mut GraphDb, g: &Graph, n: usize) {
    let fem_rows = gdb.db.table_len("TVisited").unwrap();
    for s in 0..n as i64 {
        for t in 0..n as i64 {
            let truth = dijkstra::shortest_path(g, s as u32, t as u32).map(|p| p.distance as i64);
            let bounds = landmarks::estimate_distance(gdb, s, t).unwrap();
            match (bounds, truth) {
                (Some(b), Some(d)) => {
                    assert!(
                        b.lower <= d && d <= b.upper,
                        "{s}->{t}: bounds [{}, {}] miss true distance {d}",
                        b.lower,
                        b.upper
                    );
                    let exact = landmarks::exact_path(gdb, s, t).unwrap();
                    if b.lower == b.upper {
                        // Tight bounds define a covered pair: the fast
                        // path must answer it exactly.
                        let p = exact.as_ref();
                        assert!(p.is_some(), "{s}->{t}: tight bound {d} but no fast path");
                        let p = p.unwrap();
                        assert_eq!(p.length, d, "{}->{}: fast-path length", s, t);
                        assert_eq!(p.nodes.first(), Some(&s));
                        assert_eq!(p.nodes.last(), Some(&t));
                        // ... with a real walk of exactly that cost.
                        let mut len = 0i64;
                        for w in p.nodes.windows(2) {
                            let arc = g
                                .out_arcs(w[0] as u32)
                                .iter()
                                .filter(|a| a.to == w[1] as u32)
                                .map(|a| a.weight)
                                .min();
                            assert!(arc.is_some(), "{s}->{t}: missing edge {}->{}", w[0], w[1]);
                            len += arc.unwrap() as i64;
                        }
                        assert_eq!(len, d, "{}->{}: fast-path walk cost", s, t);
                    } else if let Some(p) = exact {
                        // A loose-bounds answer is only legal if still exact.
                        assert_eq!(p.length, d, "{}->{}: non-tight fast path", s, t);
                    }
                }
                (Some(b), None) => {
                    panic!(
                        "{s}->{t}: unreachable pair got bounds [{}, {}]",
                        b.lower, b.upper
                    );
                }
                (None, _) => {
                    // No common landmark: legal for any pair (the index
                    // may simply not cover it), but then the fast path
                    // must decline too.
                    let exact = landmarks::exact_path(gdb, s, t).unwrap();
                    assert!(exact.is_none(), "{s}->{t}: fast path without bounds");
                }
            }
        }
    }
    // The whole sweep ran off the index: no FEM table was ever written.
    assert_eq!(
        gdb.db.table_len("TVisited").unwrap(),
        fem_rows,
        "fast path must not write FEM tables"
    );
}

/// Undirected edge list of `g` (one entry per edge, not per arc) — the
/// base for rebuilding an oracle graph after mutations.
fn edge_model(g: &Graph) -> Vec<(u32, u32, u32)> {
    let mut edges = Vec::new();
    for u in 0..g.num_nodes() as u32 {
        for a in g.out_arcs(u) {
            if u <= a.to {
                edges.push((u, a.to, a.weight));
            }
        }
    }
    edges
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(12)))]

    /// Post-mutation queries never use pre-mutation landmark bounds
    /// (DESIGN.md §16): an edge insert flips the index to stale, every
    /// gated probe (`upper_bound`, `exact_path`) declines every pair,
    /// FEM queries stay exact against the *mutated* graph while the
    /// index is down, and `rebuild_landmarks` restores full
    /// admissibility over the new edge set.
    #[test]
    fn mutations_gate_stale_bounds_until_rebuild(
        w in 2usize..4,
        h in 2usize..4,
        seed in 0u64..500,
        k in 1usize..5,
        pick in 0usize..1000,
        wt in 1i64..15,
    ) {
        let g = fempath::graph::generate::grid(w, h, 1..=10, seed);
        let n = w * h;
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        gdb.build_landmarks(k).unwrap();
        prop_assert!(gdb.landmarks().is_some());
        let before = gdb.graph_version();
        // A shortcut between two distinct nodes (offset never wraps to 0
        // mod n, so u != v by construction).
        let u = (pick % n) as i64;
        let v = (u + 1 + ((pick / n) % (n - 1)) as i64) % n as i64;
        gdb.insert_edge(u, v, wt).unwrap();
        prop_assert!(gdb.graph_version() > before, "insert must bump the version");
        prop_assert!(
            gdb.landmarks().is_none(),
            "a mutation must take the stale index out of service"
        );
        for s in 0..n as i64 {
            for t in 0..n as i64 {
                prop_assert!(
                    landmarks::upper_bound(&mut gdb, s, t).unwrap().is_none(),
                    "{s}->{t}: stale upper bound served after mutation"
                );
                prop_assert!(
                    landmarks::exact_path(&mut gdb, s, t).unwrap().is_none(),
                    "{s}->{t}: stale fast path served after mutation"
                );
            }
        }
        // FEM queries keep answering exactly while the index is down.
        let mut model = edge_model(&g);
        model.push((u as u32, v as u32, wt as u32));
        let mg = Graph::from_undirected_edges(n, model);
        let finder = BsdjFinder::default();
        for t in 0..n as i64 {
            let truth = dijkstra::shortest_path(&mg, 0, t as u32).map(|p| p.distance as i64);
            let out = finder.find_path(&mut gdb, 0, t).unwrap();
            prop_assert_eq!(
                out.path.as_ref().map(|p| p.length), truth,
                "0->{}: FEM answer diverged on the mutated graph", t
            );
        }
        // Rebuild indexes the mutated edge set: fully admissible again.
        gdb.rebuild_landmarks().unwrap();
        prop_assert!(gdb.landmarks().is_some());
        check_all_pairs_on(&mut gdb, &mg, n);
    }
}

/// The delete side of the same property, deterministically: removing an
/// edge stales the index, and the rebuilt index is admissible over the
/// shrunken graph (where the removed edge must not be walkable).
#[test]
fn delete_stales_bounds_and_rebuild_reflects_the_removal() {
    let g = fempath::graph::generate::grid(3, 3, 1..=10, 31);
    let mut gdb = GraphDb::in_memory(&g).unwrap();
    gdb.build_landmarks(3).unwrap();
    let removed = gdb.delete_edge(0, 1).unwrap();
    assert!(removed > 0, "grid neighbours 0 and 1 share an edge");
    assert!(gdb.landmarks().is_none(), "delete must stale the index");
    assert!(landmarks::upper_bound(&mut gdb, 0, 1).unwrap().is_none());
    assert!(landmarks::exact_path(&mut gdb, 0, 1).unwrap().is_none());
    gdb.rebuild_landmarks().unwrap();
    let mut model = edge_model(&g);
    model.retain(|&(a, b, _)| (a, b) != (0, 1) && (a, b) != (1, 0));
    let mg = Graph::from_undirected_edges(9, model);
    check_all_pairs_on(&mut gdb, &mg, 9);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(48)))]

    /// Connected grids: every pair reachable, duplicate-free edges.
    #[test]
    fn grids_are_admissible(
        w in 2usize..5,
        h in 2usize..5,
        seed in 0u64..1000,
        k in 1usize..6,
    ) {
        let g = fempath::graph::generate::grid(w, h, 1..=10, seed);
        check_all_pairs(&g, w * h, k);
    }

    /// Random multigraphs: parallel edges with different weights and
    /// self-loops are all legal inputs; the bound must still bracket the
    /// true distance.
    #[test]
    fn random_multigraphs_are_admissible(
        n in 2usize..14,
        edges in prop::collection::vec((0u32..14, 0u32..14, 1u32..30), 1..40),
        k in 1usize..6,
    ) {
        let n = n.max(
            edges.iter().map(|(u, v, _)| (*u).max(*v) as usize + 1).max().unwrap_or(1),
        );
        let g = Graph::from_undirected_edges(n, edges);
        if g.num_arcs() == 0 {
            return; // no edges: nothing to index
        }
        check_all_pairs(&g, n, k);
    }

    /// Two islands plus an isolated node: cross-component pairs must get
    /// no bounds at all (a bound would be a false reachability claim).
    #[test]
    fn disconnected_graphs_are_admissible(
        left in prop::collection::vec((0u32..6, 0u32..6, 1u32..20), 1..12),
        right in prop::collection::vec((6u32..12, 6u32..12, 1u32..20), 1..12),
        k in 2usize..8,
    ) {
        let n = 13; // node 12 stays isolated
        let edges: Vec<(u32, u32, u32)> =
            left.into_iter().chain(right).collect();
        let g = Graph::from_undirected_edges(n, edges);
        if g.num_arcs() == 0 {
            return; // all edges were self-loops: nothing to index
        }
        check_all_pairs(&g, n, k);
    }
}
