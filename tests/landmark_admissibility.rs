//! Machine-checked admissibility of the landmark distance index
//! (DESIGN.md §12): over random grid, random-edge (duplicates included)
//! and deliberately disconnected graphs, for **every** (s, t) pair —
//! including s == t — the triangle-inequality upper bound never
//! undershoots the true Dijkstra distance, the lower bound never
//! overshoots it, and a tight bound (upper == lower) means the fast path
//! answers with the exact distance and a real walk, without touching the
//! FEM working tables.
//!
//! Run with `PROPTEST_CASES=512` (the CI setting) for the heavyweight
//! sweep; the in-repo default keeps `cargo test` quick.

use fempath::core::landmarks;
use fempath::core::GraphDb;
use fempath::graph::Graph;
use fempath::inmem::dijkstra;
use proptest::prelude::*;

/// `ProptestConfig::with_cases` overrides the environment, so honour
/// `PROPTEST_CASES` explicitly to let CI raise the sweep without a code
/// change.
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// All-pairs admissibility sweep over one graph with a freshly built
/// landmark index of `k` landmarks.
fn check_all_pairs(g: &Graph, n: usize, k: usize) {
    let mut gdb = GraphDb::in_memory(g).unwrap();
    gdb.build_landmarks(k).unwrap();
    let fem_rows = gdb.db.table_len("TVisited").unwrap();
    for s in 0..n as i64 {
        for t in 0..n as i64 {
            let truth = dijkstra::shortest_path(g, s as u32, t as u32).map(|p| p.distance as i64);
            let bounds = landmarks::estimate_distance(&mut gdb, s, t).unwrap();
            match (bounds, truth) {
                (Some(b), Some(d)) => {
                    assert!(
                        b.lower <= d && d <= b.upper,
                        "{s}->{t}: bounds [{}, {}] miss true distance {d}",
                        b.lower,
                        b.upper
                    );
                    let exact = landmarks::exact_path(&mut gdb, s, t).unwrap();
                    if b.lower == b.upper {
                        // Tight bounds define a covered pair: the fast
                        // path must answer it exactly.
                        let p = exact.as_ref();
                        assert!(p.is_some(), "{s}->{t}: tight bound {d} but no fast path");
                        let p = p.unwrap();
                        assert_eq!(p.length, d, "{}->{}: fast-path length", s, t);
                        assert_eq!(p.nodes.first(), Some(&s));
                        assert_eq!(p.nodes.last(), Some(&t));
                        // ... with a real walk of exactly that cost.
                        let mut len = 0i64;
                        for w in p.nodes.windows(2) {
                            let arc = g
                                .out_arcs(w[0] as u32)
                                .iter()
                                .filter(|a| a.to == w[1] as u32)
                                .map(|a| a.weight)
                                .min();
                            assert!(arc.is_some(), "{s}->{t}: missing edge {}->{}", w[0], w[1]);
                            len += arc.unwrap() as i64;
                        }
                        assert_eq!(len, d, "{}->{}: fast-path walk cost", s, t);
                    } else if let Some(p) = exact {
                        // A loose-bounds answer is only legal if still exact.
                        assert_eq!(p.length, d, "{}->{}: non-tight fast path", s, t);
                    }
                }
                (Some(b), None) => {
                    panic!(
                        "{s}->{t}: unreachable pair got bounds [{}, {}]",
                        b.lower, b.upper
                    );
                }
                (None, _) => {
                    // No common landmark: legal for any pair (the index
                    // may simply not cover it), but then the fast path
                    // must decline too.
                    let exact = landmarks::exact_path(&mut gdb, s, t).unwrap();
                    assert!(exact.is_none(), "{s}->{t}: fast path without bounds");
                }
            }
        }
    }
    // The whole sweep ran off the index: no FEM table was ever written.
    assert_eq!(
        gdb.db.table_len("TVisited").unwrap(),
        fem_rows,
        "fast path must not write FEM tables"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(48)))]

    /// Connected grids: every pair reachable, duplicate-free edges.
    #[test]
    fn grids_are_admissible(
        w in 2usize..5,
        h in 2usize..5,
        seed in 0u64..1000,
        k in 1usize..6,
    ) {
        let g = fempath::graph::generate::grid(w, h, 1..=10, seed);
        check_all_pairs(&g, w * h, k);
    }

    /// Random multigraphs: parallel edges with different weights and
    /// self-loops are all legal inputs; the bound must still bracket the
    /// true distance.
    #[test]
    fn random_multigraphs_are_admissible(
        n in 2usize..14,
        edges in prop::collection::vec((0u32..14, 0u32..14, 1u32..30), 1..40),
        k in 1usize..6,
    ) {
        let n = n.max(
            edges.iter().map(|(u, v, _)| (*u).max(*v) as usize + 1).max().unwrap_or(1),
        );
        let g = Graph::from_undirected_edges(n, edges);
        if g.num_arcs() == 0 {
            return; // no edges: nothing to index
        }
        check_all_pairs(&g, n, k);
    }

    /// Two islands plus an isolated node: cross-component pairs must get
    /// no bounds at all (a bound would be a false reachability claim).
    #[test]
    fn disconnected_graphs_are_admissible(
        left in prop::collection::vec((0u32..6, 0u32..6, 1u32..20), 1..12),
        right in prop::collection::vec((6u32..12, 6u32..12, 1u32..20), 1..12),
        k in 2usize..8,
    ) {
        let n = 13; // node 12 stays isolated
        let edges: Vec<(u32, u32, u32)> =
            left.into_iter().chain(right).collect();
        let g = Graph::from_undirected_edges(n, edges);
        if g.num_arcs() == 0 {
            return; // all edges were self-loops: nothing to index
        }
        check_all_pairs(&g, n, k);
    }
}
