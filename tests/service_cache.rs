//! Edge cases of [`PathService::query_batch`] routed through the
//! version-keyed result cache (DESIGN.md §16): empty inputs, duplicate
//! pairs inside one batch, s == t self-queries, stale misses after a
//! mutation and negative-cache hits for unreachable pairs. The
//! companion differential test (tests/mutation_differential.rs) covers
//! correctness under interleaving; this file pins the *accounting* —
//! which pairs run a finder and which are answered from the cache.

use fempath::core::{PathService, PathServiceOptions};
use fempath::graph::{generate, Graph};

fn grid_service(workers: usize) -> PathService {
    let g = generate::grid(4, 4, 1..=10, 7);
    PathService::with_options(
        &g,
        &PathServiceOptions {
            workers,
            ..Default::default() // cache ON at the default budget
        },
    )
    .unwrap()
}

/// An empty pair slice is a no-op: no jobs, no cache traffic.
#[test]
fn empty_batch_runs_nothing() {
    let svc = grid_service(2);
    let out = svc.query_batch(&[]).unwrap();
    assert!(out.is_empty());
    let stats = svc.stats();
    assert_eq!(
        stats.total_executed(),
        0,
        "no worker job for an empty batch"
    );
    assert_eq!(stats.cache.hits + stats.cache.misses, 0, "no cache probe");
}

/// Duplicate pairs in one batch are computed once — the misses are
/// deduplicated before dispatch, every caller slot is still filled, and
/// there is no per-duplicate race on insert.
#[test]
fn duplicate_pairs_in_one_batch_are_computed_once() {
    let svc = grid_service(2);
    let pairs = [(0i64, 15i64), (0, 15), (3, 12), (0, 15), (3, 12)];
    let out = svc.query_batch(&pairs).unwrap();
    assert_eq!(out.len(), pairs.len(), "every slot answered");
    for (i, p) in out.iter().enumerate() {
        assert!(p.is_some(), "slot {i}: grid is connected");
    }
    assert_eq!(
        out[0].as_ref().map(|p| p.length),
        out[1].as_ref().map(|p| p.length),
        "duplicate slots must agree"
    );
    let stats = svc.stats();
    // 2 distinct pairs -> at most 2 tiles dispatched (a tile may hold
    // both pairs, so allow 1..=2 — but never one job per duplicate).
    assert!(
        (1..=2).contains(&stats.total_executed()),
        "expected <= 2 tiles for 2 distinct pairs, got {}",
        stats.total_executed()
    );
    // Every slot is probed before dedup, so all 5 count as misses —
    // the saving shows up in dispatched jobs, not in probe counts.
    assert_eq!(stats.cache.misses, pairs.len() as u64);
    // Replaying the same batch is now pure cache: zero new jobs.
    let executed_before = stats.total_executed();
    let again = svc.query_batch(&pairs).unwrap();
    assert_eq!(again.len(), pairs.len());
    let stats = svc.stats();
    assert_eq!(
        stats.total_executed(),
        executed_before,
        "a fully cached batch must not dispatch"
    );
    assert!(
        stats.cache.hits >= pairs.len() as u64,
        "every slot was a hit"
    );
}

/// s == t flows through the cache like any other pair and stays exact.
#[test]
fn self_query_through_the_cache() {
    let svc = grid_service(2);
    for _ in 0..2 {
        let out = svc.query_batch(&[(5, 5)]).unwrap();
        let p = out[0].as_ref().expect("s == t is always reachable");
        assert_eq!(p.length, 0);
        assert_eq!(p.nodes, vec![5]);
        let single = svc.query(5, 5).unwrap();
        assert_eq!(single.path.as_ref().map(|p| p.length), Some(0));
    }
    assert!(svc.stats().cache.hits > 0, "the repeat was served cached");
}

/// A mutation strands every resident entry at the old version: the next
/// probe is a stale miss (counted as such), recomputes, and re-caches at
/// the new version.
#[test]
fn mutation_turns_hits_into_stale_misses() {
    let svc = grid_service(2);
    let want = svc.query(0, 15).unwrap().path.map(|p| p.length);
    svc.query(0, 15).unwrap(); // resident + hit
    let before = svc.stats();
    assert!(before.cache.hits >= 1);
    svc.insert_edge(1, 2, 1).unwrap(); // parallel cheap edge, version bump
    let out = svc.query(0, 15).unwrap(); // stale miss: recompute
    let after = svc.stats();
    assert!(
        after.cache.stale > before.cache.stale,
        "the resident entry must be detected as stale, not silently hit"
    );
    assert_eq!(after.graph_version, before.graph_version + 1);
    // The recomputed answer is cached at the new version: next is a hit.
    let hits_mid = after.cache.hits;
    let again = svc.query(0, 15).unwrap();
    assert!(svc.stats().cache.hits > hits_mid, "re-cache at new version");
    assert_eq!(
        again.path.as_ref().map(|p| p.length),
        out.path.as_ref().map(|p| p.length)
    );
    // The shortcut (1 -> 2 at weight 1) can only shorten or preserve.
    if let (Some(w), Some(n)) = (want, out.path.as_ref().map(|p| p.length)) {
        assert!(n <= w, "a parallel weight-1 edge cannot lengthen paths");
    }
}

/// Unreachable verdicts are cached too (negative cache): the second
/// probe of a disconnected pair is a hit and runs no finder.
#[test]
fn unreachable_pairs_hit_the_negative_cache() {
    // Grid plus one isolated node tacked on the end.
    let core = generate::grid(4, 4, 1..=10, 9);
    let n = core.num_nodes();
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for a in core.out_arcs(u) {
            if u <= a.to {
                edges.push((u, a.to, a.weight));
            }
        }
    }
    let g = Graph::from_undirected_edges(n + 1, edges);
    let svc = PathService::with_options(
        &g,
        &PathServiceOptions {
            workers: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let lonely = n as i64;
    assert!(svc.query(lonely, 0).unwrap().path.is_none());
    let stats = svc.stats();
    let (executed, hits) = (stats.total_executed(), stats.cache.hits);
    assert!(svc.query(lonely, 0).unwrap().path.is_none());
    let stats = svc.stats();
    assert_eq!(
        stats.total_executed(),
        executed,
        "the cached unreachable verdict must not re-run a finder"
    );
    assert!(stats.cache.hits > hits, "negative entry served as a hit");
}
