//! Parser robustness: arbitrary input must never panic — it either parses
//! or returns a structured error — and pretty-printable statements
//! round-trip through the engine.

use fempath::sql::{parse_statement, parse_statements};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Fuzz: any byte soup is rejected gracefully, never panicking.
    #[test]
    fn parser_never_panics_on_arbitrary_input(input in ".{0,200}") {
        let _ = parse_statement(&input);
        let _ = parse_statements(&input);
    }

    /// Fuzz with SQL-ish vocabulary to reach deeper parser states.
    #[test]
    fn parser_never_panics_on_sql_soup(
        words in prop::collection::vec(
            prop::sample::select(vec![
                "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "INSERT", "INTO",
                "VALUES", "UPDATE", "SET", "DELETE", "MERGE", "USING", "ON", "WHEN",
                "MATCHED", "THEN", "CREATE", "TABLE", "INDEX", "VIEW", "AND", "OR",
                "NOT", "NULL", "MIN", "COUNT", "ROW_NUMBER", "OVER", "PARTITION",
                "t", "a", "b", "x", "(", ")", ",", "=", "<", ">", "+", "-", "*",
                "1", "2.5", "'s'", "?", ";", "TOP", "LIMIT", "AS", "IN", "EXISTS",
            ]),
            0..40,
        )
    ) {
        let sql = words.join(" ");
        let _ = parse_statement(&sql);
        let _ = parse_statements(&sql);
    }

    /// Valid single-table queries always parse. Identifiers carry a prefix
    /// so the generator cannot collide with reserved words ("in", "as", …).
    #[test]
    fn well_formed_selects_always_parse(
        cols in prop::collection::vec("c_[a-z]{1,6}", 1..4),
        table in "t_[a-z]{1,8}",
        lit in any::<i32>(),
    ) {
        let sql = format!(
            "SELECT {} FROM {table} WHERE {} > {lit} ORDER BY {} LIMIT 10",
            cols.join(", "),
            cols[0],
            cols[0],
        );
        parse_statement(&sql).unwrap();
    }
}
