//! Property-based tests of the SQL engine: the NSQL and TSQL formulations
//! of the paper's operators must be semantically equivalent on arbitrary
//! data, and MERGE must equal UPDATE-then-INSERT.

use fempath::sql::Database;
use fempath::storage::Value;
use proptest::prelude::*;

fn db_with_tables() -> Database {
    let mut db = Database::in_memory(512);
    db.execute("CREATE TABLE TVisited (nid INT, d2s INT, p2s INT, f INT, PRIMARY KEY(nid))")
        .unwrap();
    db.execute("CREATE TABLE TEdges (fid INT, tid INT, cost INT)")
        .unwrap();
    db.execute("CREATE CLUSTERED INDEX ix_e ON TEdges(fid)")
        .unwrap();
    db
}

const WINDOW_E: &str = "SELECT nid, np, cost FROM ( \
    SELECT e.tid AS nid, e.fid AS np, e.cost + q.d2s AS cost, \
           ROW_NUMBER() OVER (PARTITION BY e.tid ORDER BY e.cost + q.d2s, e.fid) AS rownum \
    FROM TVisited q, TEdges e WHERE q.nid = e.fid AND q.f = 2 \
  ) tmp WHERE rownum = 1 ORDER BY nid";

const AGG_E: &str = "SELECT e2.tid AS nid, MIN(e2.fid) AS np, m.c AS cost \
    FROM TVisited q2, TEdges e2, ( \
      SELECT e.tid AS mtid, MIN(e.cost + q.d2s) AS c \
      FROM TVisited q, TEdges e WHERE q.nid = e.fid AND q.f = 2 GROUP BY e.tid \
    ) m \
    WHERE q2.nid = e2.fid AND q2.f = 2 AND e2.tid = m.mtid AND e2.cost + q2.d2s = m.c \
    GROUP BY e2.tid, m.c ORDER BY nid";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The window-function E-operator and the aggregate-join E-operator
    /// agree on (nid, cost); parents may differ only among equal-cost ties,
    /// which the window query breaks by fid to match MIN(fid).
    #[test]
    fn window_and_aggregate_e_operator_agree(
        edges in prop::collection::vec((0i64..20, 0i64..20, 1i64..50), 1..60),
        visited in prop::collection::btree_map(0i64..20, (0i64..30, prop::bool::ANY), 1..10),
    ) {
        let mut db = db_with_tables();
        for (f, t, c) in &edges {
            if f == t { continue; }
            db.execute_params(
                "INSERT INTO TEdges VALUES (?, ?, ?)",
                &[Value::Int(*f), Value::Int(*t), Value::Int(*c)],
            ).unwrap();
        }
        for (nid, (d2s, frontier)) in &visited {
            db.execute_params(
                "INSERT INTO TVisited VALUES (?, ?, 0, ?)",
                &[Value::Int(*nid), Value::Int(*d2s), Value::Int(if *frontier { 2 } else { 1 })],
            ).unwrap();
        }
        let w = db.query(WINDOW_E).unwrap();
        let a = db.query(AGG_E).unwrap();
        prop_assert_eq!(w.rows.len(), a.rows.len());
        for (rw, ra) in w.rows.iter().zip(a.rows.iter()) {
            prop_assert_eq!(&rw[0], &ra[0], "nid");
            prop_assert_eq!(&rw[2], &ra[2], "cost");
            prop_assert_eq!(&rw[1], &ra[1], "parent (tie-broken by fid)");
        }
    }

    /// MERGE == UPDATE…FROM + INSERT…NOT IN on arbitrary visited/expanded
    /// tables (the paper's M-operator equivalence, §3.3).
    #[test]
    fn merge_equals_update_plus_insert(
        visited in prop::collection::btree_map(0i64..30, 1i64..100, 0..15),
        expanded in prop::collection::btree_map(0i64..30, (0i64..30, 1i64..100), 0..15),
    ) {
        let setup = |db: &mut Database| {
            db.execute("CREATE TABLE ek (nid INT, p2s INT, cost INT)").unwrap();
            for (nid, d2s) in &visited {
                db.execute_params(
                    "INSERT INTO TVisited VALUES (?, ?, -1, 1)",
                    &[Value::Int(*nid), Value::Int(*d2s)],
                ).unwrap();
            }
            for (nid, (p2s, cost)) in &expanded {
                db.execute_params(
                    "INSERT INTO ek VALUES (?, ?, ?)",
                    &[Value::Int(*nid), Value::Int(*p2s), Value::Int(*cost)],
                ).unwrap();
            }
        };
        let mut m = db_with_tables();
        setup(&mut m);
        let merged = m.execute(
            "MERGE INTO TVisited AS target USING ek AS source ON source.nid = target.nid \
             WHEN MATCHED AND target.d2s > source.cost THEN \
               UPDATE SET d2s = source.cost, p2s = source.p2s, f = 0 \
             WHEN NOT MATCHED THEN \
               INSERT (nid, d2s, p2s, f) VALUES (source.nid, source.cost, source.p2s, 0)",
        ).unwrap().rows_affected;

        let mut u = db_with_tables();
        setup(&mut u);
        let upd = u.execute(
            "UPDATE TVisited SET d2s = ek.cost, p2s = ek.p2s, f = 0 FROM ek \
             WHERE TVisited.nid = ek.nid AND TVisited.d2s > ek.cost",
        ).unwrap().rows_affected;
        let ins = u.execute(
            "INSERT INTO TVisited (nid, d2s, p2s, f) \
             SELECT nid, cost, p2s, 0 FROM ek WHERE nid NOT IN (SELECT nid FROM TVisited)",
        ).unwrap().rows_affected;

        prop_assert_eq!(merged, upd + ins, "affected-row counts agree");
        let a = m.query("SELECT nid, d2s, p2s, f FROM TVisited ORDER BY nid").unwrap();
        let b = u.query("SELECT nid, d2s, p2s, f FROM TVisited ORDER BY nid").unwrap();
        prop_assert_eq!(a.rows, b.rows, "final table states agree");
    }

    /// ORDER BY on the engine sorts exactly like the total order on values.
    #[test]
    fn order_by_is_total_order(values in prop::collection::vec(any::<i32>(), 0..50)) {
        let mut db = Database::in_memory(128);
        db.execute("CREATE TABLE t (a INT)").unwrap();
        for v in &values {
            db.execute_params("INSERT INTO t VALUES (?)", &[Value::Int(*v as i64)]).unwrap();
        }
        let rs = db.query("SELECT a FROM t ORDER BY a").unwrap();
        let got: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        let mut want: Vec<i64> = values.iter().map(|v| *v as i64).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Aggregates agree with straight Rust folds.
    #[test]
    fn aggregates_match_reference(values in prop::collection::vec(1i64..1000, 1..60)) {
        let mut db = Database::in_memory(128);
        db.execute("CREATE TABLE t (a INT)").unwrap();
        for v in &values {
            db.execute_params("INSERT INTO t VALUES (?)", &[Value::Int(*v)]).unwrap();
        }
        let rs = db.query("SELECT MIN(a), MAX(a), SUM(a), COUNT(*) FROM t").unwrap();
        let row = &rs.rows[0];
        prop_assert_eq!(row[0].as_i64().unwrap(), *values.iter().min().unwrap());
        prop_assert_eq!(row[1].as_i64().unwrap(), *values.iter().max().unwrap());
        prop_assert_eq!(row[2].as_i64().unwrap(), values.iter().sum::<i64>());
        prop_assert_eq!(row[3].as_i64().unwrap(), values.len() as i64);
    }
}
