//! Differential test for versioned edge mutations served through the
//! result cache (DESIGN.md §16): a random interleaving of
//! `insert_edge` / `delete_edge` / `query` / `query_batch` against a
//! [`PathService`] must agree with a fresh in-memory Dijkstra over a
//! plain edge-list model after **every** step — across both SQL dialects
//! and both storage tiers, with the cache enabled. Every query is issued
//! twice in a row, so the second answer is served from the cache and a
//! stale entry (including a stale *negative* entry) can never hide.

use fempath::core::{GraphDbOptions, PathService, PathServiceOptions};
use fempath::graph::{generate, Graph};
use fempath::inmem::dijkstra;
use fempath::sql::Dialect;
use proptest::prelude::*;

/// Honour `PROPTEST_CASES` (the CI sweep) without a code change.
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One step of the interleaved workload.
#[derive(Debug, Clone, Copy)]
enum Op {
    Query(i64, i64),
    Insert(i64, i64, i64),
    Delete(i64, i64),
}

/// Undirected edge list of `g` (one entry per edge, not per arc), the
/// mutable model the oracle graph is rebuilt from after every mutation.
fn edge_model(g: &Graph) -> Vec<(u32, u32, u32)> {
    let mut edges = Vec::new();
    for u in 0..g.num_nodes() as u32 {
        for a in g.out_arcs(u) {
            if u <= a.to {
                edges.push((u, a.to, a.weight));
            }
        }
    }
    edges
}

/// True shortest-path length on the current model.
fn oracle(n: usize, model: &[(u32, u32, u32)], s: i64, t: i64) -> Option<i64> {
    let g = Graph::from_undirected_edges(n, model.iter().copied());
    dijkstra::shortest_path(&g, s as u32, t as u32).map(|o| o.distance as i64)
}

/// Runs one op script against a service built with `dialect` /
/// `segmented`, checking every query (and its immediate cached replay)
/// against the fresh-Dijkstra oracle.
fn run_script(g: &Graph, ops: &[Op], dialect: Dialect, segmented: bool) {
    let n = g.num_nodes();
    let svc = PathService::with_options(
        g,
        &PathServiceOptions {
            workers: 2,
            graphdb: GraphDbOptions {
                dialect,
                segmented_edges: segmented,
                bulk_load: segmented,
                ..Default::default()
            },
            ..Default::default() // cache ON: that is the layer under test
        },
    )
    .unwrap();
    let mut model = edge_model(g);
    let mut version = svc.graph_version();
    for (step, &op) in ops.iter().enumerate() {
        let ctx = format!("step {step} {op:?} ({dialect:?}, segmented={segmented})");
        match op {
            Op::Query(s, t) => {
                let want = oracle(n, &model, s, t);
                let first = svc.query(s, t).unwrap();
                assert_eq!(
                    first.path.as_ref().map(|p| p.length),
                    want,
                    "{ctx}: fresh answer vs Dijkstra"
                );
                // Replay immediately: this is (usually) a cache hit at
                // the same graph version and must be byte-identical —
                // a stale or negative-stale entry would surface here.
                let again = svc.query(s, t).unwrap();
                assert_eq!(
                    again.path.as_ref().map(|p| p.length),
                    want,
                    "{ctx}: cached answer vs Dijkstra"
                );
                // And through the batch front door too.
                let batch = svc.query_batch(&[(s, t)]).unwrap();
                assert_eq!(
                    batch[0].as_ref().map(|p| p.length),
                    want,
                    "{ctx}: batched answer vs Dijkstra"
                );
            }
            Op::Insert(u, v, w) => {
                svc.insert_edge(u, v, w).unwrap();
                model.push((u as u32, v as u32, w as u32));
                let bumped = svc.graph_version();
                assert!(bumped > version, "{ctx}: insert must bump the version");
                version = bumped;
            }
            Op::Delete(u, v) => {
                svc.delete_edge(u, v).unwrap();
                model.retain(|&(a, b, _)| {
                    (a, b) != (u as u32, v as u32) && (a, b) != (v as u32, u as u32)
                });
                let bumped = svc.graph_version();
                assert!(bumped > version, "{ctx}: delete must bump the version");
                version = bumped;
            }
        }
    }
    // The cache really participated: repeated queries produced hits.
    if ops.iter().any(|o| matches!(o, Op::Query(..))) {
        assert!(
            svc.stats().cache.hits > 0,
            "every query was replayed, yet the cache never hit \
             ({dialect:?}, segmented={segmented})"
        );
    }
}

/// Op mix: queries dominate (4/7, s == t included on purpose), inserts
/// over deletes (2/7 vs 1/7). Mutation self-loops are remapped away
/// rather than filtered so the strategy never rejects.
fn op_strategy(n: i64) -> impl Strategy<Value = Op> {
    (0usize..7, 0..n, 0..n, 1i64..20).prop_map(move |(kind, a, b, w)| {
        let b_ne = if a == b { (b + 1) % n } else { b };
        match kind {
            0..=3 => Op::Query(a, b),
            4 | 5 => Op::Insert(a, b_ne, w),
            _ => Op::Delete(a, b_ne),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(6)))]

    /// The acceptance property: random mutation/query interleavings are
    /// indistinguishable from fresh Dijkstra on the mutated edge list,
    /// for every dialect × storage-tier combination, cache on.
    #[test]
    fn interleaved_mutations_match_fresh_dijkstra(
        seed in 0u64..500,
        ops in prop::collection::vec(op_strategy(16), 1..24),
    ) {
        let g = generate::grid(4, 4, 1..=10, seed);
        for dialect in [Dialect::DBMS_X, Dialect::POSTGRES] {
            for segmented in [false, true] {
                run_script(&g, &ops, dialect, segmented);
            }
        }
    }
}

/// Deterministic negative-cache staleness check: an unreachable verdict
/// is cached, a mutation connects the pair (the cached `None` must not
/// survive), and the reverse mutation disconnects it again (the cached
/// path must not survive either). Node `n` starts isolated.
#[test]
fn negative_cache_entries_go_stale_with_the_version() {
    let core = generate::grid(4, 4, 1..=10, 11);
    let n = core.num_nodes(); // node `n` of the enlarged graph is isolated
    let g = Graph::from_undirected_edges(n + 1, edge_model(&core));
    let lonely = n as i64;
    for dialect in [Dialect::DBMS_X, Dialect::POSTGRES] {
        for segmented in [false, true] {
            let svc = PathService::with_options(
                &g,
                &PathServiceOptions {
                    workers: 2,
                    graphdb: GraphDbOptions {
                        dialect,
                        segmented_edges: segmented,
                        bulk_load: segmented,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            )
            .unwrap();
            let ctx = format!("({dialect:?}, segmented={segmented})");
            // Unreachable, twice: the second answer is a negative hit.
            assert!(svc.query(lonely, 0).unwrap().path.is_none(), "{ctx}");
            let before = svc.stats().cache.hits;
            assert!(svc.query(lonely, 0).unwrap().path.is_none(), "{ctx}");
            assert!(
                svc.stats().cache.hits > before,
                "{ctx}: unreachable verdict was not served from the cache"
            );
            // Connect the lonely node straight to node 5.
            svc.insert_edge(lonely, 5, 3).unwrap();
            let want = oracle(
                n + 1,
                &{
                    let mut m = edge_model(&core);
                    m.push((lonely as u32, 5, 3));
                    m
                },
                lonely,
                0,
            );
            assert!(want.is_some(), "{ctx}: grid is connected, so 5 reaches 0");
            let out = svc.query(lonely, 0).unwrap();
            assert_eq!(
                out.path.as_ref().map(|p| p.length),
                want,
                "{ctx}: stale negative-cache entry survived the mutation"
            );
            // Disconnect again: the cached positive path must die too.
            svc.delete_edge(lonely, 5).unwrap();
            assert!(
                svc.query(lonely, 0).unwrap().path.is_none(),
                "{ctx}: stale positive entry survived the delete"
            );
        }
    }
}

/// Interleaved read/mutate stress: client threads hammer a hot pair set
/// through the cache while the main thread publishes mutations. Every
/// answer must be exact for *some* prefix-consistent graph version —
/// verified post-hoc by checking each observed length against the set of
/// oracle distances the mutation schedule ever made true.
#[test]
fn concurrent_readers_survive_mutations() {
    let g = generate::grid(5, 5, 1..=10, 23);
    let n = g.num_nodes();
    let svc = PathService::with_options(
        &g,
        &PathServiceOptions {
            workers: 3,
            ..Default::default()
        },
    )
    .unwrap();
    let pairs = [(0i64, 24i64), (3, 20), (7, 17), (12, 24)];
    // The mutation schedule toggles one shortcut edge; precompute the
    // oracle answer for both graph states.
    let base = edge_model(&g);
    let with_shortcut = {
        let mut m = base.clone();
        m.push((0, 24, 1));
        m
    };
    let mut legal: Vec<Vec<i64>> = Vec::new();
    for &(s, t) in &pairs {
        legal.push(
            [&base, &with_shortcut]
                .iter()
                .filter_map(|m| oracle(n, m, s, t))
                .collect(),
        );
    }
    std::thread::scope(|scope| {
        for _client in 0..3 {
            scope.spawn(|| {
                for round in 0..60 {
                    let (s, t) = pairs[round % pairs.len()];
                    let out = svc.query(s, t).unwrap();
                    let len = out.path.as_ref().map(|p| p.length).unwrap();
                    let idx = round % pairs.len();
                    assert!(
                        legal[idx].contains(&len),
                        "{s}->{t}: length {len} matches no graph state ever \
                         published (legal: {:?})",
                        legal[idx]
                    );
                }
            });
        }
        // Toggle the shortcut while the clients run.
        for _ in 0..10 {
            svc.insert_edge(0, 24, 1).unwrap();
            svc.delete_edge(0, 24).unwrap();
        }
    });
    // After the dust settles the graph is back to its base state and
    // must answer exactly — including through the now-refilled cache.
    for &(s, t) in &pairs {
        let want = oracle(n, &base, s, t);
        for _ in 0..2 {
            assert_eq!(
                svc.query(s, t).unwrap().path.as_ref().map(|p| p.length),
                want,
                "{s}->{t}: post-stress answer diverged from the base graph"
            );
        }
    }
}
