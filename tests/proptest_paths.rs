//! Property-based end-to-end test: on random graphs, every relational
//! shortest-path algorithm returns exactly the in-memory Dijkstra distance.

use fempath::core::{BbfsFinder, BsdjFinder, BsegFinder, GraphDb, ShortestPathFinder};
use fempath::graph::Graph;
use fempath::inmem::dijkstra;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = (Graph, usize)> {
    (
        5usize..40,
        prop::collection::vec((0u32..40, 0u32..40, 1u32..30), 4..80),
    )
        .prop_map(|(n, edges)| {
            let n = n.max(
                edges
                    .iter()
                    .map(|(u, v, _)| (*u).max(*v) as usize + 1)
                    .max()
                    .unwrap_or(1),
            );
            let g = Graph::from_undirected_edges(n, edges);
            (g, n)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn relational_algorithms_equal_dijkstra((g, n) in arb_graph(), s in 0usize..40, t in 0usize..40) {
        let s = (s % n) as i64;
        let t = (t % n) as i64;
        let oracle = dijkstra::shortest_path(&g, s as u32, t as u32);
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        gdb.build_segtable(10).unwrap();
        let finders: Vec<Box<dyn ShortestPathFinder>> = vec![
            Box::new(BsdjFinder::default()),
            Box::new(BbfsFinder::default()),
            Box::new(BsegFinder::default()),
        ];
        for f in finders {
            let out = f.find_path(&mut gdb, s, t).unwrap();
            match (&out.path, &oracle) {
                (Some(p), Some(o)) => {
                    prop_assert_eq!(p.length as u64, o.distance, "{} on {}->{}", f.name(), s, t);
                    // Path is a real walk through the graph.
                    let mut len = 0u64;
                    for w in p.nodes.windows(2) {
                        let arc = g.out_arcs(w[0] as u32).iter()
                            .filter(|a| a.to == w[1] as u32)
                            .map(|a| a.weight).min();
                        prop_assert!(arc.is_some(), "{}: missing edge {}->{}", f.name(), w[0], w[1]);
                        len += arc.unwrap() as u64;
                    }
                    prop_assert_eq!(len, o.distance, "{}: path length mismatch", f.name());
                }
                (None, None) => {}
                (got, want) => {
                    prop_assert!(
                        false,
                        "{}: reachability mismatch {}->{}: got {:?} want {:?}",
                        f.name(), s, t, got.is_some(), want.is_some()
                    );
                }
            }
        }
    }
}
