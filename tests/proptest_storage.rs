//! Property-based tests of the storage substrate: the B+tree against a
//! `BTreeMap` model, key-encoding order preservation, and row round-trips.

use fempath::storage::{decode_key, decode_row, encode_key, encode_row, BTree, BufferPool, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::ops::Bound;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::Text),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn row_roundtrip(row in prop::collection::vec(arb_value(), 0..8)) {
        let bytes = encode_row(&row);
        let back = decode_row(&bytes).unwrap();
        prop_assert_eq!(back, row);
    }

    /// Order preservation is guaranteed per column *type* (the engine
    /// coerces rows to the schema's types before encoding), so the
    /// property generates a random schema and two tuples conforming to it.
    #[test]
    fn key_encoding_preserves_order(
        schema in prop::collection::vec(0u8..3, 1..4),
        seed_a in prop::collection::vec((any::<i64>(), -1e12f64..1e12, "[a-z]{0,8}"), 4),
        seed_b in prop::collection::vec((any::<i64>(), -1e12f64..1e12, "[a-z]{0,8}"), 4),
    ) {
        let tuple = |seeds: &[(i64, f64, String)]| -> Vec<Value> {
            schema.iter().enumerate().map(|(i, ty)| match ty {
                0 => Value::Int(seeds[i].0),
                1 => Value::Float(seeds[i].1),
                _ => Value::Text(seeds[i].2.clone()),
            }).collect()
        };
        let a = tuple(&seed_a);
        let b = tuple(&seed_b);
        let ea = encode_key(&a).unwrap();
        let eb = encode_key(&b).unwrap();
        let tuple_ord = a.iter()
            .zip(b.iter())
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| !o.is_eq())
            .unwrap_or(std::cmp::Ordering::Equal);
        prop_assert_eq!(ea.cmp(&eb), tuple_ord, "a={:?} b={:?}", a, b);
        // Round-trip always holds (including Null, tested separately).
        prop_assert_eq!(decode_key(&ea).unwrap(), a);
        prop_assert_eq!(decode_key(&eb).unwrap(), b);
    }

    #[test]
    fn btree_matches_btreemap_model(
        ops in prop::collection::vec(
            (any::<u16>(), prop::option::of(any::<u32>())),
            1..300
        ),
        pool_pages in 3usize..32,
    ) {
        let mut pool = BufferPool::in_memory(pool_pages);
        let mut tree = BTree::create(&mut pool).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for (key, maybe_val) in &ops {
            let k = key.to_be_bytes().to_vec();
            match maybe_val {
                Some(v) => {
                    let val = v.to_le_bytes().to_vec();
                    let old = tree.insert(&mut pool, &k, &val).unwrap();
                    let model_old = model.insert(k, val);
                    prop_assert_eq!(old, model_old);
                }
                None => {
                    let old = tree.delete(&mut pool, &k).unwrap();
                    let model_old = model.remove(&k);
                    prop_assert_eq!(old, model_old);
                }
            }
        }
        prop_assert_eq!(tree.len(), model.len() as u64);
        // Point lookups agree.
        for (k, v) in &model {
            let got = tree.get(&mut pool, k).unwrap();
            prop_assert_eq!(got.as_ref(), Some(v));
        }
        // Full scan agrees in order and content.
        let mut scanned = Vec::new();
        tree.scan_range(&mut pool, Bound::Unbounded, Bound::Unbounded, |k, v| {
            scanned.push((k.to_vec(), v.to_vec()));
            true
        }).unwrap();
        let expected: Vec<_> = model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(scanned, expected);
    }

    #[test]
    fn btree_range_scans_match_model(
        keys in prop::collection::btree_set(any::<u16>(), 1..200),
        lo in any::<u16>(),
        hi in any::<u16>(),
    ) {
        let mut pool = BufferPool::in_memory(16);
        let mut tree = BTree::create(&mut pool).unwrap();
        for k in &keys {
            tree.insert(&mut pool, &k.to_be_bytes(), b"x").unwrap();
        }
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let mut got = Vec::new();
        let lo_b = lo.to_be_bytes();
        let hi_b = hi.to_be_bytes();
        tree.scan_range(
            &mut pool,
            Bound::Included(&lo_b[..]),
            Bound::Excluded(&hi_b[..]),
            |k, _| {
                got.push(u16::from_be_bytes(k.try_into().unwrap()));
                true
            },
        ).unwrap();
        let expected: Vec<u16> = keys.iter().copied().filter(|k| *k >= lo && *k < hi).collect();
        prop_assert_eq!(got, expected);
    }
}
