//! Shutdown and failure-injection tests for [`PathService`]
//! (DESIGN.md §13). The dispatch layer makes two promises that only show
//! up under failure: dropping the service under load joins every worker
//! cleanly (queued jobs drain, nothing hangs), and a worker that panics
//! mid-query surfaces `worker_pool_down` to *that* caller only — the
//! worker rebuilds its session and the pool keeps serving everyone else.
//!
//! Every test that could hang on a regression runs under a watchdog:
//! the scenario executes on its own thread and the test fails loudly if
//! it does not signal completion within a generous deadline, instead of
//! wedging the whole test binary.

use fempath::core::{PathService, PathServiceOptions};
use fempath::graph::generate;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Runs `f` on a fresh thread; fails the test if it neither returns nor
/// panics within `secs` seconds (a deadlock in shutdown code would
/// otherwise hang the harness forever).
fn with_watchdog(secs: u64, name: &str, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    let h = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => h.join().unwrap(),
        Err(_) => panic!("{name} hung for {secs}s — shutdown is wedged"),
    }
}

/// Dropping the service right after heavy concurrent load joins every
/// worker and returns; no queued reply is lost and no thread is leaked
/// hanging on a queue.
#[test]
fn drop_after_concurrent_load_joins_cleanly() {
    with_watchdog(120, "drop_after_concurrent_load_joins_cleanly", || {
        let g = generate::grid(5, 5, 1..=10, 17);
        let svc = PathService::new(&g, 4).unwrap();
        let served = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for c in 0..8 {
                let svc = &svc;
                let served = &served;
                scope.spawn(move || {
                    for i in 0..25 {
                        let s = (c * 25 + i) % 25;
                        let t = (i * 7 + c) % 25;
                        svc.query(s as i64, t as i64).unwrap();
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(served.load(Ordering::Relaxed), 200);
        drop(svc); // must join all 4 workers without hanging
    });
}

/// Shutdown races with live clients: the last `Arc` owner to finish
/// triggers the drop while sibling clients may still be mid-reply. Every
/// issued query must still get its answer — close() drains queues, it
/// does not drop them.
#[test]
fn concurrent_owners_drop_under_load_without_losing_replies() {
    with_watchdog(120, "concurrent_owners_drop_under_load", || {
        let g = generate::grid(4, 4, 1..=10, 29);
        let svc = Arc::new(PathService::new(&g, 3).unwrap());
        let mut clients = Vec::new();
        for c in 0..6usize {
            let svc = Arc::clone(&svc);
            clients.push(std::thread::spawn(move || {
                let mut ok = 0usize;
                for i in 0..40 {
                    let (s, t) = ((c + i * 3) % 16, (i * 5 + 1) % 16);
                    if svc.query(s as i64, t as i64).is_ok() {
                        ok += 1;
                    }
                }
                // svc Arc drops here; the last client runs the shutdown.
                ok
            }));
        }
        drop(svc);
        let total: usize = clients.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 240, "no issued query may lose its reply");
    });
}

/// A panicking worker answers its own caller with an error — never a
/// hang — and the pool survives: follow-up singles and batches on every
/// worker still succeed, because the worker rebuilt its session from the
/// snapshot.
#[test]
fn worker_panic_surfaces_error_and_pool_survives() {
    with_watchdog(120, "worker_panic_surfaces_error_and_pool_survives", || {
        let g = generate::grid(4, 4, 1..=10, 41);
        let svc = PathService::new(&g, 2).unwrap();
        // Warm the pool so panics hit sessions with cached plans.
        svc.query(0, 15).unwrap();

        let err = svc
            .debug_inject_panic()
            .expect_err("panic must become an error");
        assert!(
            err.to_string().contains("worker pool"),
            "caller should see the pool-down error, got: {err}"
        );

        // More singles than workers: every worker (including the one
        // that panicked and rebuilt) serves again, with correct answers.
        for i in 0..8 {
            let out = svc.query(i % 16, (i * 7 + 2) % 16).unwrap();
            assert!(out.path.is_some(), "grid is connected");
        }
        // Batches partition across the rebuilt pool too.
        let pairs: Vec<(i64, i64)> = (0..6).map(|i| (i, 15 - i)).collect();
        let paths = svc.query_batch(&pairs).unwrap();
        assert!(paths.iter().all(|p| p.is_some()));
    });
}

/// Repeated panics do not poison the pool: inject more failures than
/// there are workers, interleaved with successful queries from
/// concurrent clients whose answers must be unaffected.
#[test]
fn repeated_panics_do_not_poison_the_pool() {
    with_watchdog(120, "repeated_panics_do_not_poison_the_pool", || {
        let g = generate::grid(4, 4, 1..=10, 53);
        // Cache off: the clients hammer one hot pair on purpose, and
        // every repeat must hit the (possibly rebuilding) worker pool —
        // a cached answer would bypass the machinery under test.
        let svc = PathService::with_options(
            &g,
            &PathServiceOptions {
                workers: 2,
                cache_bytes: 0,
                ..Default::default()
            },
        )
        .unwrap();
        let baseline = svc.query(0, 15).unwrap().path.expect("connected").length;

        std::thread::scope(|scope| {
            // One thread injects a storm of panics...
            let svc_ref = &svc;
            scope.spawn(move || {
                for _ in 0..6 {
                    svc_ref
                        .debug_inject_panic()
                        .expect_err("every injection must error, not hang");
                }
            });
            // ...while clients keep getting correct answers throughout.
            for _ in 0..3 {
                scope.spawn(move || {
                    for _ in 0..10 {
                        let out = svc_ref.query(0, 15).unwrap();
                        assert_eq!(
                            out.path.expect("connected").length,
                            baseline,
                            "a panicked worker's rebuilt session answered wrong"
                        );
                    }
                });
            }
        });

        // The pool's accounting survived the storm: all jobs executed,
        // queues drained.
        let stats = svc.stats();
        assert_eq!(stats.workers.len(), 2);
        assert!(
            stats.total_executed() >= 37,
            "6 panics + 30 queries + warmup"
        );
        for w in &stats.workers {
            assert_eq!(w.queue_depth, 0, "queues must drain after the storm");
        }
    });
}

/// Zero workers is clamped to one and still shuts down cleanly — the
/// degenerate pool must not divide by zero in partitioning or hang on
/// close.
#[test]
fn zero_worker_service_is_clamped_and_functional() {
    with_watchdog(60, "zero_worker_service_is_clamped_and_functional", || {
        let g = generate::grid(3, 3, 1..=10, 61);
        let svc = PathService::new(&g, 0).unwrap();
        assert_eq!(svc.worker_count(), 1);
        assert!(svc.query(0, 8).unwrap().path.is_some());
        let paths = svc.query_batch(&[(0, 8), (8, 0), (4, 4)]).unwrap();
        assert_eq!(paths.len(), 3);
        assert!(paths.iter().all(|p| p.is_some()));
    });
}
