//! Differential test: every relational shortest-path finder (DJ, BDJ, BSDJ,
//! BBFS, BSEG) must return exactly the in-memory Dijkstra distance on each
//! of the paper's graph families, and the path it reports must be a real
//! walk through the graph of that exact weight.

use fempath::core::{
    BbfsFinder, BdjFinder, BsdjFinder, BsegFinder, DjFinder, GraphDb, ShortestPathFinder,
};
use fempath::graph::{generate, Graph};
use fempath::inmem::dijkstra;

/// Deterministic query endpoints spread over the node range.
fn query_pairs(n: usize, count: usize) -> Vec<(i64, i64)> {
    (0..count)
        .map(|i| {
            let s = (i * 7919 + 13) % n;
            let mut t = (i * 104_729 + n / 2) % n;
            if t == s {
                t = (t + 1) % n;
            }
            (s as i64, t as i64)
        })
        .collect()
}

/// Asserts `path` is a genuine walk `s -> t` in `g` whose arc weights sum to
/// `expected` (finders may legitimately return different equal-weight paths).
fn assert_real_walk(g: &Graph, nodes: &[i64], expected: u64, ctx: &str) {
    let mut total = 0u64;
    for w in nodes.windows(2) {
        let arc = g
            .out_arcs(w[0] as u32)
            .iter()
            .filter(|a| a.to == w[1] as u32)
            .map(|a| a.weight)
            .min();
        let weight = arc.unwrap_or_else(|| panic!("{ctx}: edge {}->{} not in graph", w[0], w[1]));
        total += weight as u64;
    }
    assert_eq!(
        total, expected,
        "{ctx}: reported path weight differs from oracle distance"
    );
}

fn check_graph(name: &str, g: &Graph, n: usize, queries: usize) {
    let mut gdb = GraphDb::in_memory(g).unwrap();
    gdb.build_segtable(10).unwrap();
    let finders: Vec<Box<dyn ShortestPathFinder>> = vec![
        Box::new(DjFinder::default()),
        Box::new(BdjFinder::default()),
        Box::new(BsdjFinder::default()),
        Box::new(BbfsFinder::default()),
        Box::new(BsegFinder::default()),
    ];
    for (s, t) in query_pairs(n, queries) {
        let oracle = dijkstra::shortest_path(g, s as u32, t as u32);
        for f in &finders {
            let ctx = format!("{} on {name} {s}->{t}", f.name());
            let out = f.find_path(&mut gdb, s, t).unwrap();
            match (&out.path, &oracle) {
                (Some(p), Some(o)) => {
                    assert_eq!(p.length as u64, o.distance, "{ctx}: distance mismatch");
                    assert_eq!(
                        p.nodes.first(),
                        Some(&s),
                        "{ctx}: path must start at source"
                    );
                    assert_eq!(p.nodes.last(), Some(&t), "{ctx}: path must end at target");
                    assert_real_walk(g, &p.nodes, o.distance, &ctx);
                }
                (None, None) => {}
                (got, want) => panic!(
                    "{ctx}: reachability mismatch (relational={}, in-memory={})",
                    got.is_some(),
                    want.is_some()
                ),
            }
        }
    }
}

#[test]
fn all_finders_match_dijkstra_on_grid() {
    let g = generate::grid(8, 7, 1..=100, 42);
    check_graph("grid(8x7)", &g, 56, 8);
}

#[test]
fn all_finders_match_dijkstra_on_power_law() {
    let g = generate::power_law(150, 3, 1..=100, 7);
    check_graph("power_law(150)", &g, 150, 8);
}

#[test]
fn all_finders_match_dijkstra_on_dblp_like() {
    // dblp_like can leave isolated nodes, exercising the unreachable branch.
    let g = generate::dblp_like(120, 1..=100, 11);
    check_graph("dblp_like(120)", &g, 120, 8);
}

#[test]
fn all_finders_agree_on_unit_weights() {
    // Unit weights force heavy tie-breaking: a good stress of the paper's
    // ROW_NUMBER/MIN parent selection equivalence.
    let g = generate::grid(6, 6, 1..=1, 3);
    check_graph("unit-grid(6x6)", &g, 36, 6);
}
