//! Differential test: every relational shortest-path finder (DJ, BDJ, BSDJ,
//! BBFS, BSEG) must return exactly the in-memory Dijkstra distance on each
//! of the paper's graph families, and the path it reports must be a real
//! walk through the graph of that exact weight.

use fempath::core::{
    BatchBdjFinder, BatchDjFinder, BatchShortestPathFinder, BbfsFinder, BdjFinder, BsdjFinder,
    BsegFinder, DjFinder, GraphDb, ShortestPathFinder,
};
use fempath::graph::{generate, Graph};
use fempath::inmem::dijkstra;

/// Deterministic query endpoints spread over the node range.
fn query_pairs(n: usize, count: usize) -> Vec<(i64, i64)> {
    (0..count)
        .map(|i| {
            let s = (i * 7919 + 13) % n;
            let mut t = (i * 104_729 + n / 2) % n;
            if t == s {
                t = (t + 1) % n;
            }
            (s as i64, t as i64)
        })
        .collect()
}

/// Asserts `path` is a genuine walk `s -> t` in `g` whose arc weights sum to
/// `expected` (finders may legitimately return different equal-weight paths).
fn assert_real_walk(g: &Graph, nodes: &[i64], expected: u64, ctx: &str) {
    let mut total = 0u64;
    for w in nodes.windows(2) {
        let arc = g
            .out_arcs(w[0] as u32)
            .iter()
            .filter(|a| a.to == w[1] as u32)
            .map(|a| a.weight)
            .min();
        let weight = arc.unwrap_or_else(|| panic!("{ctx}: edge {}->{} not in graph", w[0], w[1]));
        total += weight as u64;
    }
    assert_eq!(
        total, expected,
        "{ctx}: reported path weight differs from oracle distance"
    );
}

fn check_graph(name: &str, g: &Graph, n: usize, queries: usize) {
    let mut gdb = GraphDb::in_memory(g).unwrap();
    gdb.build_segtable(10).unwrap();
    let finders: Vec<Box<dyn ShortestPathFinder>> = vec![
        Box::new(DjFinder::default()),
        Box::new(BdjFinder::default()),
        Box::new(BsdjFinder::default()),
        Box::new(BbfsFinder::default()),
        Box::new(BsegFinder::default()),
    ];
    for (s, t) in query_pairs(n, queries) {
        let oracle = dijkstra::shortest_path(g, s as u32, t as u32);
        for f in &finders {
            let ctx = format!("{} on {name} {s}->{t}", f.name());
            let out = f.find_path(&mut gdb, s, t).unwrap();
            match (&out.path, &oracle) {
                (Some(p), Some(o)) => {
                    assert_eq!(p.length as u64, o.distance, "{ctx}: distance mismatch");
                    assert_eq!(
                        p.nodes.first(),
                        Some(&s),
                        "{ctx}: path must start at source"
                    );
                    assert_eq!(p.nodes.last(), Some(&t), "{ctx}: path must end at target");
                    assert_real_walk(g, &p.nodes, o.distance, &ctx);
                }
                (None, None) => {}
                (got, want) => panic!(
                    "{ctx}: reachability mismatch (relational={}, in-memory={})",
                    got.is_some(),
                    want.is_some()
                ),
            }
        }
    }
}

/// Cross-validates every batched finder on one batch of pairs: each answer
/// must match per-pair in-memory Dijkstra (distance, reachability, and a
/// real walk of exactly that weight), and the reported distances must be
/// identical to the single-query relational finder's.
fn check_batch(name: &str, g: &Graph, pairs: &[(i64, i64)]) {
    let mut gdb = GraphDb::in_memory(g).unwrap();
    let oracles: Vec<Option<u64>> = pairs
        .iter()
        .map(|&(s, t)| dijkstra::shortest_path(g, s as u32, t as u32).map(|o| o.distance))
        .collect();
    let single = BsdjFinder::default();
    let single_lengths: Vec<Option<i64>> = pairs
        .iter()
        .map(|&(s, t)| {
            single
                .find_path(&mut gdb, s, t)
                .unwrap()
                .path
                .map(|p| p.length)
        })
        .collect();
    let finders: Vec<Box<dyn BatchShortestPathFinder>> = vec![
        Box::new(BatchDjFinder::default()),
        Box::new(BatchBdjFinder::default()),
        Box::new(BatchBdjFinder {
            prune: false,
            ..Default::default()
        }),
    ];
    for f in &finders {
        let out = f.find_paths(&mut gdb, pairs).unwrap();
        assert_eq!(out.paths.len(), pairs.len());
        for (i, (&(s, t), oracle)) in pairs.iter().zip(&oracles).enumerate() {
            let ctx = format!("{} on {name} {s}->{t} (qid {i})", f.name());
            match (&out.paths[i], oracle) {
                (Some(p), Some(d)) => {
                    assert_eq!(p.length as u64, *d, "{ctx}: distance mismatch");
                    assert_eq!(
                        Some(p.length),
                        single_lengths[i],
                        "{ctx}: batched and single-query distances must be identical"
                    );
                    assert_eq!(
                        p.nodes.first(),
                        Some(&s),
                        "{ctx}: path must start at source"
                    );
                    assert_eq!(p.nodes.last(), Some(&t), "{ctx}: path must end at target");
                    assert_real_walk(g, &p.nodes, *d, &ctx);
                }
                (None, None) => {}
                (got, want) => panic!(
                    "{ctx}: reachability mismatch (batched={}, in-memory={})",
                    got.is_some(),
                    want.is_some()
                ),
            }
        }
    }
}

#[test]
fn all_finders_match_dijkstra_on_grid() {
    let g = generate::grid(8, 7, 1..=100, 42);
    check_graph("grid(8x7)", &g, 56, 8);
}

#[test]
fn all_finders_match_dijkstra_on_power_law() {
    let g = generate::power_law(150, 3, 1..=100, 7);
    check_graph("power_law(150)", &g, 150, 8);
}

#[test]
fn all_finders_match_dijkstra_on_dblp_like() {
    // dblp_like can leave isolated nodes, exercising the unreachable branch.
    let g = generate::dblp_like(120, 1..=100, 11);
    check_graph("dblp_like(120)", &g, 120, 8);
}

#[test]
fn all_finders_agree_on_unit_weights() {
    // Unit weights force heavy tie-breaking: a good stress of the paper's
    // ROW_NUMBER/MIN parent selection equivalence.
    let g = generate::grid(6, 6, 1..=1, 3);
    check_graph("unit-grid(6x6)", &g, 36, 6);
}

#[test]
fn batched_finders_match_dijkstra_on_grid() {
    let g = generate::grid(8, 7, 1..=100, 42);
    let mut pairs = query_pairs(56, 10);
    pairs.push((5, 5)); // trivial pair inside a batch
    pairs.push(pairs[0]); // duplicate pair: independent qids
    check_batch("grid(8x7)", &g, &pairs);
}

#[test]
fn batched_finders_match_dijkstra_on_power_law() {
    let g = generate::power_law(150, 3, 1..=100, 7);
    check_batch("power_law(150)", &g, &query_pairs(150, 10));
}

#[test]
fn batched_finders_match_dijkstra_on_mixed_reachability() {
    // dblp_like leaves isolated nodes, so one batch mixes reachable and
    // unreachable pairs — per-qid termination must not let finished or
    // hopeless queries hold the batch up.
    let g = generate::dblp_like(120, 1..=100, 11);
    let mut pairs = query_pairs(120, 10);
    // Force pairs against the lowest-degree nodes (isolated in dblp_like).
    let isolated: Vec<i64> = (0..120u32)
        .filter(|&v| g.out_arcs(v).is_empty())
        .map(|v| v as i64)
        .collect();
    for (i, &v) in isolated.iter().take(3).enumerate() {
        pairs.push((i as i64, v));
    }
    check_batch("dblp_like(120)", &g, &pairs);
}

#[test]
fn batched_finders_match_on_unit_weights() {
    // Heavy tie-breaking across qids sharing frontier nodes.
    let g = generate::grid(6, 6, 1..=1, 3);
    check_batch("unit-grid(6x6)", &g, &query_pairs(36, 8));
}

#[test]
fn batched_finders_work_without_merge_support() {
    // The PostgreSQL dialect forces the TBExp + UPDATE/INSERT M-operator.
    use fempath::core::GraphDbOptions;
    use fempath::sql::Dialect;
    let g = generate::grid(6, 6, 1..=50, 21);
    let mut gdb = GraphDb::new(
        &g,
        &GraphDbOptions {
            dialect: Dialect::POSTGRES,
            ..Default::default()
        },
    )
    .unwrap();
    let pairs = query_pairs(36, 6);
    for f in [
        Box::new(BatchBdjFinder::default()) as Box<dyn BatchShortestPathFinder>,
        Box::new(BatchDjFinder::default()),
    ] {
        let out = f.find_paths(&mut gdb, &pairs).unwrap();
        for (&(s, t), p) in pairs.iter().zip(&out.paths) {
            let oracle = dijkstra::shortest_path(&g, s as u32, t as u32).unwrap();
            let p = p
                .as_ref()
                .unwrap_or_else(|| panic!("{} (no MERGE): {s}->{t} must be reachable", f.name()));
            assert_eq!(p.length as u64, oracle.distance, "{} (no MERGE)", f.name());
            assert_real_walk(&g, &p.nodes, oracle.distance, "no-MERGE batch");
        }
    }
}

/// Landmark-seeded bounds must be invisible in the answers: every finder
/// with `seed_bounds` on returns exactly the distances of its unseeded
/// twin and of in-memory Dijkstra — including unreachable and s == t
/// pairs — in both SQL dialects and both exec modes. A wrong (too-small)
/// seeded ceiling would prune the optimal path itself, so any divergence
/// here is an inadmissible bound escaping the property suite.
#[test]
fn landmark_seeding_never_changes_any_answer() {
    use fempath::core::GraphDbOptions;
    use fempath::sql::{Dialect, ExecMode};
    // dblp_like leaves isolated nodes: unreachable pairs stress the
    // bounds-say-nothing fallback.
    let g = generate::dblp_like(120, 1..=100, 11);
    let mut pairs = query_pairs(120, 6);
    pairs.push((17, 17)); // trivial
    if let Some(v) = (0..120u32).find(|&v| g.out_arcs(v).is_empty()) {
        pairs.push((0, v as i64)); // unreachable
    }
    for dialect in [Dialect::DBMS_X, Dialect::POSTGRES] {
        for exec_mode in [ExecMode::Vectorized, ExecMode::RowAtATime] {
            let mut gdb = GraphDb::new(
                &g,
                &GraphDbOptions {
                    dialect,
                    ..Default::default()
                },
            )
            .unwrap();
            gdb.set_exec_mode(exec_mode);
            gdb.build_segtable(10).unwrap();
            gdb.build_landmarks(6).unwrap();
            type Twin = (Box<dyn ShortestPathFinder>, Box<dyn ShortestPathFinder>);
            let twins: Vec<Twin> = vec![
                (
                    Box::new(DjFinder::default()),
                    Box::new(DjFinder {
                        seed_bounds: false,
                        ..Default::default()
                    }),
                ),
                (
                    Box::new(BdjFinder::default()),
                    Box::new(BdjFinder {
                        seed_bounds: false,
                        ..Default::default()
                    }),
                ),
                (
                    Box::new(BsdjFinder::default()),
                    Box::new(BsdjFinder {
                        seed_bounds: false,
                        ..Default::default()
                    }),
                ),
                (
                    Box::new(BbfsFinder::default()),
                    Box::new(BbfsFinder {
                        seed_bounds: false,
                        ..Default::default()
                    }),
                ),
                (
                    Box::new(BsegFinder::default()),
                    Box::new(BsegFinder {
                        seed_bounds: false,
                        ..Default::default()
                    }),
                ),
                (
                    Box::new(BdjFinder {
                        style: fempath::core::SqlStyle::Traditional,
                        ..Default::default()
                    }),
                    Box::new(BdjFinder {
                        style: fempath::core::SqlStyle::Traditional,
                        seed_bounds: false,
                        ..Default::default()
                    }),
                ),
            ];
            for &(s, t) in &pairs {
                let oracle =
                    dijkstra::shortest_path(&g, s as u32, t as u32).map(|o| o.distance as i64);
                for (seeded, unseeded) in &twins {
                    let ctx = format!("{} {s}->{t} ({dialect:?}, {exec_mode:?})", seeded.name());
                    let a = seeded.find_path(&mut gdb, s, t).unwrap();
                    let b = unseeded.find_path(&mut gdb, s, t).unwrap();
                    let a_len = a.path.as_ref().map(|p| p.length);
                    assert_eq!(a_len, oracle, "{ctx}: seeded vs Dijkstra");
                    assert_eq!(
                        a_len,
                        b.path.as_ref().map(|p| p.length),
                        "{ctx}: seeded vs unseeded twin"
                    );
                    if let (Some(p), Some(d)) = (&a.path, oracle) {
                        assert_real_walk(&g, &p.nodes, d as u64, &ctx);
                    }
                }
            }
            // The batched finder's seeded run must agree with its unseeded
            // twin pair-for-pair too.
            let seeded = BatchBdjFinder::default()
                .find_paths(&mut gdb, &pairs)
                .unwrap();
            let unseeded = BatchBdjFinder {
                seed_bounds: false,
                ..Default::default()
            }
            .find_paths(&mut gdb, &pairs)
            .unwrap();
            for (i, &(s, t)) in pairs.iter().enumerate() {
                let oracle =
                    dijkstra::shortest_path(&g, s as u32, t as u32).map(|o| o.distance as i64);
                let ctx = format!("BatchBDJ {s}->{t} ({dialect:?}, {exec_mode:?})");
                assert_eq!(
                    seeded.paths[i].as_ref().map(|p| p.length),
                    oracle,
                    "{ctx}: seeded vs Dijkstra"
                );
                assert_eq!(
                    seeded.paths[i].as_ref().map(|p| p.length),
                    unseeded.paths[i].as_ref().map(|p| p.length),
                    "{ctx}: seeded vs unseeded twin"
                );
            }
        }
    }
}
